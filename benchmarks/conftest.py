"""Shared fixtures for the benchmark harness.

Every table and figure of the paper's evaluation has one benchmark module.
The paper's experiments run week-long traces against 16 K - 4 M entry
tables; at pure-Python speed that is hours per figure, so the benchmarks
run proportionally scaled request counts and table sizes by default.  The
ratio that determines every curve's shape -- table capacity versus the
unique-pair population -- is preserved.  Set ``REPRO_SCALE`` (a float,
default 1.0) to scale the request counts up or down.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.blkdev.device import SsdDevice
from repro.core.extent import Extent, ExtentPair
from repro.fim.pairs import exact_pair_counts
from repro.pipeline import PipelineResult, run_pipeline
from repro.workloads.enterprise import WORKLOAD_NAMES, generate_named
from repro.workloads.synthetic import (
    SyntheticKind,
    SyntheticSpec,
    generate_synthetic,
)

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))

#: Requests per enterprise workload at scale 1.0.
ENTERPRISE_REQUESTS = max(2000, int(20000 * SCALE))
#: Synthetic workload duration (seconds of virtual time) at scale 1.0.
SYNTHETIC_DURATION = max(30.0, 120.0 * SCALE)


def scaled(value: int) -> int:
    """Scale an iteration/request count by REPRO_SCALE (min 1)."""
    return max(1, int(value * SCALE))


@pytest.fixture(scope="session")
def enterprise_traces() -> Dict[str, Tuple[list, object]]:
    """All five MSR-like traces, generated once per benchmark session."""
    return {
        name: generate_named(name, requests=ENTERPRISE_REQUESTS, seed=7)
        for name in WORKLOAD_NAMES
    }


@pytest.fixture(scope="session")
def enterprise_pipelines(enterprise_traces) -> Dict[str, PipelineResult]:
    """Each enterprise trace run through the full replay/monitor/analyze
    pipeline with the paper's default configuration (dual online+offline)."""
    results = {}
    for name, (records, _truth) in enterprise_traces.items():
        results[name] = run_pipeline(records, device=SsdDevice(seed=11))
    return results


@pytest.fixture(scope="session")
def enterprise_ground_truth(enterprise_pipelines) -> Dict[str, dict]:
    """Exact offline pair counts over each trace's recorded transactions."""
    return {
        name: exact_pair_counts(result.offline_transactions())
        for name, result in enterprise_pipelines.items()
    }


@pytest.fixture(scope="session")
def synthetic_workloads():
    """The paper's three synthetic workloads with ground truth."""
    out = {}
    for offset, kind in enumerate(SyntheticKind):
        spec = SyntheticSpec(kind=kind, duration=SYNTHETIC_DURATION,
                             seed=42 + offset)
        out[kind.value] = generate_synthetic(spec)
    return out


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def print_row(*columns, widths=(12, 14, 14, 14, 14)) -> None:
    cells = []
    for value, width in zip(columns, widths):
        if isinstance(value, float):
            cells.append(f"{value:>{width}.3f}")
        else:
            cells.append(f"{str(value):>{width}}")
    print("".join(cells))
