"""Ablation benches for the design choices DESIGN.md calls out.

1. Extent vs block correlations (paper III-A): the pair-count blow-up the
   extent representation avoids.
2. Dynamic vs static transaction window (III-B) under a latency regime
   shift.
3. Transaction size cap and dedup (III-D2).
4. The two-tier promote/demote structure vs plain LRU and frequency-only
   tables.
5. The T1:T2 split (IV-C1).
"""

from repro.analysis.accuracy import detection_metrics
from repro.blkdev.device import SsdDevice
from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.core.extent import block_correlations, unique_pairs
from repro.core.lru import LruQueue
from repro.fim.pairs import exact_pair_counts
from repro.monitor.window import DynamicLatencyWindow, StaticWindow
from repro.pipeline import run_pipeline

from conftest import print_header, print_row, scaled


def test_ablation_extent_vs_block(benchmark, enterprise_pipelines):
    """III-A: count block-level vs extent-level correlations per
    transaction on real transactions."""
    transactions = enterprise_pipelines["wdev"].offline_transactions()
    sample = transactions[:scaled(500)]

    def compute():
        extent_pairs = sum(len(unique_pairs(t)) for t in sample)
        block_pairs = sum(len(block_correlations(t)) for t in sample)
        return extent_pairs, block_pairs

    extent_pairs, block_pairs = benchmark.pedantic(compute, rounds=1,
                                                   iterations=1)

    print_header("Ablation III-A: extent vs block correlation counts")
    print_row("granularity", "pairs", "per txn")
    print_row("extent", extent_pairs, extent_pairs / len(sample))
    print_row("block", block_pairs, block_pairs / len(sample))

    # The paper's Fig. 2 example alone is 1 extent pair vs 21 block pairs;
    # across real transactions the blow-up is at least an order of
    # magnitude.
    assert block_pairs > 10 * extent_pairs


def test_ablation_window_policy(benchmark, synthetic_workloads):
    """III-B: a dynamic 2x-latency window adapts to a device change; a
    static window tuned for the old regime fragments or over-merges."""
    records, truth = synthetic_workloads["one-to-one"]

    def run(window):
        result = run_pipeline(records, device=SsdDevice(seed=61),
                              window=window, record_offline=False)
        detected = {p for p, _t in result.frequent_pairs(min_support=5)}
        return sum(1 for pair in truth.pairs if pair in detected)

    def compute():
        return {
            "dynamic 2x": run(DynamicLatencyWindow()),
            "static 1ms": run(StaticWindow(1e-3)),
            "static 1us": run(StaticWindow(1e-6)),
        }

    found = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Ablation III-B: window policy vs planted-pair detection")
    print_row("policy", "planted found (of 4)")
    for policy, count in found.items():
        print_row(policy, count, widths=(14, 10))

    assert found["dynamic 2x"] == 4
    # A window far below the intra-pair gap separates the pair members
    # into different transactions and destroys detection.
    assert found["static 1us"] < 4


def test_ablation_dedup_and_cap(benchmark, enterprise_traces):
    """III-D2: dedup prevents wdev's repeated in-window requests from
    distorting correlation frequencies; the cap bounds work."""
    records, _truth = enterprise_traces["wdev"]
    sample = records[:scaled(8000)]

    def compute():
        out = {}
        for dedup in (True, False):
            result = run_pipeline(sample, device=SsdDevice(seed=63),
                                  dedup=dedup)
            out[dedup] = (
                result.monitor_stats.duplicates_removed,
                result.analyzer.report().pairs_seen,
            )
        capped = run_pipeline(sample, device=SsdDevice(seed=63),
                              max_transaction_size=4)
        out["cap4"] = (capped.monitor_stats.size_splits,
                       capped.analyzer.report().pairs_seen)
        return out

    out = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Ablation III-D2: dedup and transaction cap on wdev")
    print_row("config", "dups/splits", "pairs seen")
    print_row("dedup on", out[True][0], out[True][1])
    print_row("dedup off", out[False][0], out[False][1])
    print_row("cap 4", out["cap4"][0], out["cap4"][1])

    # wdev genuinely repeats requests inside windows...
    assert out[True][0] > 0
    # ...and with dedup off those repeats do not inflate pair counts with
    # self-pairs (the analyzer collapses), but transactions get longer so
    # the monitor-level dedup still reduces total work.
    assert out["cap4"][1] <= out[True][1]


def test_ablation_two_tier_vs_plain_lru(benchmark, enterprise_pipelines,
                                        enterprise_ground_truth):
    """Two-tier promote/demote vs a single LRU of equal total capacity:
    the frequency tier must retain hot pairs that noise floods out of a
    plain LRU."""
    transactions = enterprise_pipelines["hm"].offline_transactions()
    truth = enterprise_ground_truth["hm"]
    capacity = scaled(1024)

    def compute():
        synopsis = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=capacity, correlation_capacity=capacity
        ))
        synopsis.process_stream(transactions)
        synopsis_detected = list(synopsis.pair_frequencies())

        plain = LruQueue(2 * capacity)  # same total entry budget
        for extents in transactions:
            for pair in unique_pairs(extents):
                if pair in plain:
                    plain.touch(pair)
                else:
                    plain.insert(pair)
        plain_detected = [key for key, _t in plain.items()]
        return synopsis_detected, plain_detected

    synopsis_detected, plain_detected = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    synopsis_metrics = detection_metrics(truth, synopsis_detected, 5)
    plain_metrics = detection_metrics(truth, plain_detected, 5)

    print_header("Ablation: two-tier synopsis vs plain LRU (hm, equal budget)")
    print_row("structure", "wght recall", "recall")
    print_row("two-tier", synopsis_metrics.weighted_recall,
              synopsis_metrics.recall)
    print_row("plain LRU", plain_metrics.weighted_recall,
              plain_metrics.recall)

    assert synopsis_metrics.weighted_recall > plain_metrics.weighted_recall


def test_ablation_tier_split(benchmark, enterprise_pipelines,
                             enterprise_ground_truth):
    """IV-C1: sweep the T1:T2 ratio.  The paper found an equal split
    appropriate and warns that starving T1 (favouring T2) hurts, because
    T1 must absorb the noise long enough for hot pairs to earn promotion."""
    transactions = enterprise_pipelines["stg"].offline_transactions()
    truth = enterprise_ground_truth["stg"]
    capacity = scaled(1024)

    def compute():
        out = {}
        for ratio in (0.1, 0.3, 0.5, 0.7, 0.9):
            analyzer = OnlineAnalyzer(AnalyzerConfig(
                item_capacity=capacity, correlation_capacity=capacity,
                t2_ratio=ratio,
            ))
            analyzer.process_stream(transactions)
            metrics = detection_metrics(
                truth, list(analyzer.pair_frequencies()), 5
            )
            out[ratio] = metrics.weighted_recall
        return out

    out = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Ablation IV-C1: T2 share of the table (stg)")
    print_row("t2 ratio", "wght recall")
    for ratio, recall in out.items():
        print_row(ratio, recall, widths=(10, 14))

    # A starved T1 (t2_ratio 0.9) must not beat the balanced split by any
    # meaningful margin, and should typically lose.
    assert out[0.9] <= out[0.5] + 0.02
