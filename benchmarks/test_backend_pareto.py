"""Synopsis backend Pareto sweep: accuracy vs memory vs throughput.

The backend subsystem (:mod:`repro.engine.backends`) makes the synopsis
representation pluggable: the paper's two-tier LRU tables, a nested
Misra-Gries correlated heavy hitters summary (``chh``), and a count-min
pair sketch with a candidate heap (``cms``).  The sketches trade exact
recency-aware pair tables for sublinear summaries, so the question this
benchmark answers is *where each backend sits on the Pareto surface*:
how much top-pair recall does each retain, at what fraction of the
two-tier memory budget, and at what ingest rate?

Two workloads, per the evaluation's synthetic/enterprise split:

* **zipf** -- a skewed stationary pair stream over a pool of ~4x the
  correlation capacity, the textbook regime for frequency sketches; and
* **msr_hm** -- the MSR-like ``hm`` enterprise trace through the full
  replay/monitor pipeline, with burstier and churnier pair arrivals.

Ground truth is exact offline pair counting (:func:`exact_pair_counts`).
Each (workload, backend) cell records top-100 recall against the exact
ranking, support-thresholded weighted recall, native-representation
memory bytes, and events/second; everything lands in
``BENCH_backends.json`` (uploaded as a CI artifact by the bench-smoke
job).

Acceptance claims:

* both sketch backends fit in at most 25% of the two-tier memory at the
  same configured capacity (they are sublinear by construction); and
* on the zipf workload both sketches still recover at least 80% of the
  true top-100 pairs -- the paper's "most of the value is in the heavy
  correlations" framing survives the representation swap.

The enterprise trace has no floor: its churn is exactly what separates
the recency-aware tables from pure-frequency sketches, and the recorded
gap *is* the result.
"""

import json
import pathlib
import random
import time
from dataclasses import replace

from repro.analysis.accuracy import detection_metrics, top_k_recall
from repro.core.config import BACKEND_NAMES, AnalyzerConfig
from repro.core.extent import Extent
from repro.core.memory_model import (
    backend_memory_bytes,
    two_tier_backend_bytes,
)
from repro.engine.backends.host import BackendEngine
from repro.fim.pairs import exact_pair_counts
from repro.telemetry import NULL_REGISTRY

from conftest import SCALE, print_header, print_row, scaled

RESULTS_PATH = pathlib.Path("BENCH_backends.json")

#: Per-tier table capacity for every backend (the sketches derive their
#: dimensions from it; see AnalyzerConfig.chh_dimensions/cms_dimensions).
CAPACITY = 4096
CONFIG = AnalyzerConfig(item_capacity=CAPACITY, correlation_capacity=CAPACITY)
#: Distinct pairs in the zipf pool: ~4x the correlation capacity, so no
#: backend can simply hold everything.
PAIR_POOL = 4 * CAPACITY
#: Zipf skew: over half the stream mass lands on the top-100 pairs.
ZIPF_EXPONENT = 1.4
#: Floored so the hot pairs accumulate enough support to rank stably even
#: at smoke scale.
ZIPF_TRANSACTIONS = max(30_000, scaled(60_000))

RECALL_K = 100
MIN_SUPPORT = 5
#: Sketch backends must fit in a quarter of the exact tables' bytes.
MEMORY_FRACTION_CEILING = 0.25
#: ... and still recover 80% of the true top-100 on the zipf stream.
ZIPF_RECALL_FLOOR = 0.80


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

def _zipf_transactions(seed: int = 13):
    """A stationary Zipf-ranked pair stream: each transaction touches one
    pair from a fixed pool, drawn with probability proportional to
    ``rank**-s``."""
    rng = random.Random(seed)
    pool = []
    seen = set()
    while len(pool) < PAIR_POOL:
        a = rng.randrange(1, 50_000_000)
        b = rng.randrange(1, 50_000_000)
        if a == b or (a, b) in seen:
            continue
        seen.add((a, b))
        pool.append([Extent(a, 8), Extent(b, 8)])
    weights = [1.0 / (rank ** ZIPF_EXPONENT)
               for rank in range(1, PAIR_POOL + 1)]
    picks = rng.choices(range(PAIR_POOL), weights=weights,
                        k=ZIPF_TRANSACTIONS)
    return [pool[index] for index in picks]


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------

def _measure_backend(name, transactions, truth):
    """One Pareto point: ingest the stream through a hosted backend and
    score it against the exact offline counts."""
    config = replace(CONFIG, backend=name)
    engine = BackendEngine(config, shards=1, registry=NULL_REGISTRY)
    events = sum(len(extents) for extents in transactions)

    start = time.perf_counter()
    for extents in transactions:
        engine.process(extents)
    elapsed = time.perf_counter() - start

    ranked = engine.top_pairs(RECALL_K)
    detected = [pair for pair, _count in engine.frequent_pairs(MIN_SUPPORT)]
    metrics = detection_metrics(truth, detected, MIN_SUPPORT)
    memory = backend_memory_bytes(config)
    return {
        "events_per_second": round(events / elapsed, 1),
        "memory_bytes": memory,
        "memory_fraction_of_two_tier": round(
            memory / two_tier_backend_bytes(config), 4),
        "recall_at_100": round(top_k_recall(truth, ranked, RECALL_K), 4),
        "weighted_recall": round(metrics.weighted_recall, 4),
        "precision": round(metrics.precision, 4),
    }


def _sweep(transactions, truth):
    return {
        name: _measure_backend(name, transactions, truth)
        for name in BACKEND_NAMES
    }


def _record(section, sweep, extra):
    merged = {}
    if RESULTS_PATH.exists():
        merged = json.loads(RESULTS_PATH.read_text())
    merged[section] = dict(extra, backends=sweep)
    merged["capacity"] = CAPACITY
    merged["scale"] = SCALE
    RESULTS_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True))
    print(f"wrote {RESULTS_PATH} ({section} section)")


def _print_sweep(title, sweep):
    print_header(title)
    print_row("backend", "recall@100", "wght recall", "mem frac", "events/s")
    for name in BACKEND_NAMES:
        cell = sweep[name]
        print_row(name, cell["recall_at_100"], cell["weighted_recall"],
                  cell["memory_fraction_of_two_tier"],
                  cell["events_per_second"])


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------

def test_backend_pareto_zipf(benchmark):
    transactions = _zipf_transactions()
    truth = exact_pair_counts(transactions)

    sweep = benchmark.pedantic(
        lambda: _sweep(transactions, truth), rounds=1, iterations=1
    )
    _print_sweep("Backend Pareto: zipf pair stream", sweep)
    _record("zipf", sweep, {
        "transactions": len(transactions),
        "pair_pool": PAIR_POOL,
        "zipf_exponent": ZIPF_EXPONENT,
    })

    # The exact tables are the accuracy ceiling on a skewed stationary
    # stream: everything hot stays resident.
    assert sweep["two-tier"]["recall_at_100"] >= 0.95

    for name in ("chh", "cms"):
        cell = sweep[name]
        assert cell["memory_fraction_of_two_tier"] <= \
            MEMORY_FRACTION_CEILING, (
                f"{name} exceeds the sketch memory budget: {cell}")
        assert cell["recall_at_100"] >= ZIPF_RECALL_FLOOR, (
            f"{name} top-100 recall below floor on zipf: {cell}")


def test_backend_pareto_msr(benchmark, enterprise_pipelines,
                            enterprise_ground_truth):
    transactions = enterprise_pipelines["hm"].offline_transactions()
    truth = enterprise_ground_truth["hm"]

    sweep = benchmark.pedantic(
        lambda: _sweep(transactions, truth), rounds=1, iterations=1
    )
    _print_sweep("Backend Pareto: MSR-like hm trace", sweep)
    _record("msr_hm", sweep, {"transactions": len(transactions)})

    # No recall floor for the sketches here -- enterprise churn is the
    # regime where exact recency-aware tables earn their 4x memory -- but
    # the ordering itself is the claim: the reference backend must not be
    # beaten by its sublinear approximations, and the sketches must still
    # capture a nontrivial share of the frequent mass.
    two_tier = sweep["two-tier"]
    for name in ("chh", "cms"):
        cell = sweep[name]
        assert cell["memory_fraction_of_two_tier"] <= MEMORY_FRACTION_CEILING
        assert cell["weighted_recall"] <= two_tier["weighted_recall"] + 0.05
        assert cell["weighted_recall"] >= 0.10, (
            f"{name} captures almost nothing on the enterprise trace: "
            f"{cell}")
