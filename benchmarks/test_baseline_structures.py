"""Baseline-structure comparisons beyond the paper's main ablations.

1. **Two-tier synopsis vs classic ARC** -- the paper's structure is
   "inspired by ARC" but drops the ghost lists for fixed tiers + demotion.
   Both are run as pair synopses at the same resident-entry budget.
2. **C-Miner-style offline mining vs the online framework** -- the primary
   related work (§II-B).  Both must find the frequent correlations; the
   contrast the paper draws is operational: C-Miner needs the stored trace
   (bytes on disk) and an after-the-fact pass, the framework does not.
3. **EWMA-mean vs percentile window** under the SSD's heavy-tailed write
   latency (GC stalls): how the window duration responds.
"""

from repro.analysis.accuracy import detection_metrics
from repro.core.analyzer import OnlineAnalyzer
from repro.core.arc import ArcTable
from repro.core.config import AnalyzerConfig
from repro.core.extent import unique_pairs
from repro.fim.cminer import CMinerConfig, cminer_from_records
from repro.monitor.histogram import PercentileLatencyWindow
from repro.monitor.window import DynamicLatencyWindow
from repro.pipeline import run_pipeline
from repro.trace.io import binary_trace_bytes

from conftest import print_header, print_row, scaled


def test_arc_vs_two_tier(benchmark, enterprise_pipelines,
                         enterprise_ground_truth):
    """Same entry budget, same transaction stream: the paper's fixed
    two-tier table against real ARC as a pair synopsis."""
    transactions = enterprise_pipelines["hm"].offline_transactions()
    truth = enterprise_ground_truth["hm"]
    capacity = scaled(1024)

    def compute():
        synopsis = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=capacity, correlation_capacity=capacity
        ))
        synopsis.process_stream(transactions)

        arc = ArcTable(2 * capacity)  # same resident budget (2C entries)
        for extents in transactions:
            for pair in unique_pairs(extents):
                arc.access(pair)
        return (
            list(synopsis.pair_frequencies()),
            [key for key, _t in arc.resident_items()],
            arc.p,
        )

    synopsis_pairs, arc_pairs, arc_p = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    synopsis_metrics = detection_metrics(truth, synopsis_pairs, 5)
    arc_metrics = detection_metrics(truth, arc_pairs, 5)

    print_header("Two-tier synopsis vs classic ARC (hm, equal budget)")
    print_row("structure", "wght recall", "recall")
    print_row("two-tier", synopsis_metrics.weighted_recall,
              synopsis_metrics.recall)
    print_row("ARC", arc_metrics.weighted_recall, arc_metrics.recall)
    print_row("ARC p", arc_p, "")

    # Both structures must capture the hot correlations well; the paper's
    # simplification must not cost meaningful accuracy versus full ARC.
    assert synopsis_metrics.weighted_recall > 0.85
    assert synopsis_metrics.weighted_recall >= (
        arc_metrics.weighted_recall - 0.05
    )


def test_cminer_vs_online(benchmark, synthetic_workloads):
    """Both approaches find the planted correlations; only the offline one
    needs the trace stored on disk."""

    def compute():
        rows = {}
        for name, (records, truth) in synthetic_workloads.items():
            mined = cminer_from_records(records, CMinerConfig(
                segment_length=50, gap=8, min_support=5, min_confidence=0.3
            ))
            mined_extents = set()
            for a, b in mined.pair_supports:
                mined_extents.add(a)
                mined_extents.add(b)
            offline_found = sum(
                1 for pair in truth.pairs
                if pair.first in mined_extents and pair.second in mined_extents
            )

            online = run_pipeline(records, record_offline=False)
            detected = {p for p, _t in online.frequent_pairs(min_support=5)}
            online_found = sum(1 for pair in truth.pairs if pair in detected)

            rows[name] = (
                offline_found, online_found, len(truth.pairs),
                binary_trace_bytes(len(records)),
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("C-Miner (offline) vs online framework")
    print_row("workload", "offline", "online", "planted", "trace bytes")
    for name, (offline_found, online_found, total, stored) in rows.items():
        print_row(name, offline_found, online_found, total, stored)

    for name, (offline_found, online_found, total, stored) in rows.items():
        assert online_found == total, name
        assert offline_found >= total - 1, name
        # The operational difference: offline analysis had to store the
        # whole trace (tens of KB even for these short runs, linear in
        # trace length); the synopsis is fixed-size regardless of length.
        assert stored > 50_000, name


def test_window_policies_under_gc_tail(benchmark):
    """Feed both window policies the same latency stream: steady reads
    plus occasional multi-millisecond GC stalls."""

    def compute():
        mean_window = DynamicLatencyWindow()
        median_window = PercentileLatencyWindow()
        steady, stall = 100e-6, 20e-3
        trajectory = []
        for i in range(2000):
            latency = stall if i % 100 == 99 else steady
            mean_window.observe_latency(latency)
            median_window.observe_latency(latency)
            if i % 200 == 199:
                trajectory.append(
                    (i + 1, mean_window.duration(), median_window.duration())
                )
        return trajectory

    trajectory = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Window policy under a 1% GC-stall tail (target 200us)")
    print_row("events", "2x EWMA mean", "2x median")
    for events, mean_duration, median_duration in trajectory:
        print_row(events, f"{mean_duration * 1e6:.0f}us",
                  f"{median_duration * 1e6:.0f}us")

    final_mean = trajectory[-1][1]
    final_median = trajectory[-1][2]
    # The median window stays near the 200us ideal; the mean window is
    # inflated by the stalls.
    assert final_median < 350e-6
    assert final_mean > final_median
