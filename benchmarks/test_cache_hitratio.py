"""Cache hit-ratio lift from correlation-driven prefetching (paper §I/§V).

The paper's framework exists so a system can *act* on detected
correlations; this benchmark closes that loop and measures the payoff.
Each (workload, cache size, eviction policy) cell is simulated three
ways:

* **none** -- plain demand caching, the baseline;
* **synopsis** -- the online closed loop: a
  :class:`~repro.cache.prefetcher.SynopsisPrefetcher` querying a
  two-tier synopsis that trains on the same stream, strictly causally
  (each transaction is served before the analyzer sees it);
* **offline** -- a MITHRIL-style lookahead-window miner
  (:class:`~repro.cache.miner.OfflineMiner`), mined over the *whole*
  trace and then replayed against it -- an idealized offline baseline
  with information the online loop never has.

Workloads: a skewed zipf pair stream and two MSR-like enterprise models
(``wdev``, ``hm``); cache sizes a fraction of each trace's block
footprint, so the cache is genuinely contended.  Policies: LRU and the
scan-resistant Clock2Q+.  Everything lands in ``BENCH_cache.json``
(uploaded by the CI bench/cache smoke jobs).

Acceptance claims:

* on at least one enterprise workload model, synopsis-driven prefetching
  lifts hit ratio over the no-prefetch baseline by >= 5 percentage
  points (the ISSUE's floor -- measured lifts are far larger, since hot
  extent pairs arrive back-to-back within bursts);
* online prefetch accuracy stays above 0.5 on every workload under LRU
  (the throttling loop never has to strangle a misfiring prefetcher
  here).  Clock2Q+ cells carry no accuracy floor: its probation FIFO
  deliberately churns speculative fills that are not re-referenced
  fast, so lower measured accuracy there is a policy property, not a
  prefetcher failure;
* the same BENCH file records the offline-miner and Clock2Q+ cells for
  comparison, per the ISSUE.
"""

import json
import pathlib
import random

from repro.cache import (
    OfflineMiner,
    SimulatedBlockCache,
    SynopsisPrefetcher,
    run_closed_loop,
    simulate_cache,
)
from repro.core.analyzer import OnlineAnalyzer
from repro.core.extent import Extent

from conftest import SCALE, print_header, print_row, scaled

RESULTS_PATH = pathlib.Path("BENCH_cache.json")

POLICIES = ("lru", "clock2q")
MODES = ("none", "synopsis", "offline")
#: Cache capacity as a fraction of the workload's unique-block footprint;
#: both points keep the cache contended (well under the hot set).
SIZE_FRACTIONS = (0.125, 0.25)
PREFETCH_BUDGET = 2
MIN_SUPPORT = 2
MINER_LOOKAHEAD = 8

#: Zipf pair stream: transactions drawn from a skewed pair population.
ZIPF_PAIRS = 2048
ZIPF_EXPONENT = 1.2
ZIPF_TRANSACTIONS = max(10_000, scaled(20_000))

LIFT_FLOOR_PP = 0.05  # >= 5 percentage points on an enterprise model


def _zipf_pair_transactions():
    random.seed(1234)
    pairs = [
        (Extent(128 * i, 8), Extent(128 * i + 64, 8))
        for i in range(ZIPF_PAIRS)
    ]
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT
               for rank in range(ZIPF_PAIRS)]
    return [
        list(pair)
        for pair in random.choices(pairs, weights=weights,
                                   k=ZIPF_TRANSACTIONS)
    ]


def _footprint_blocks(accesses):
    blocks = set()
    for extent in accesses:
        blocks.update(extent.blocks())
    return len(blocks)


def _measure(transactions, accesses, size, policy, mode):
    if mode == "none":
        stats = simulate_cache(accesses, size, policy=policy)
    elif mode == "synopsis":
        engine = OnlineAnalyzer()
        cache = SimulatedBlockCache(size, policy=policy)
        stats = run_closed_loop(
            transactions, engine, cache,
            SynopsisPrefetcher(engine, budget=PREFETCH_BUDGET,
                               min_support=MIN_SUPPORT),
        )
    else:  # offline: whole-trace miner replayed on itself (idealized)
        miner = OfflineMiner(
            lookahead=MINER_LOOKAHEAD, min_support=MIN_SUPPORT,
            fanout=PREFETCH_BUDGET,
        ).mine(accesses)
        stats = simulate_cache(accesses, size, policy=policy,
                               prefetcher=miner)
    return {
        "cache_blocks": size,
        "policy": policy,
        "prefetch": mode,
        **stats.as_dict(),
    }


def _sweep(transactions):
    accesses = [extent for extents in transactions for extent in extents]
    footprint = _footprint_blocks(accesses)
    cells = []
    for fraction in SIZE_FRACTIONS:
        size = max(64, int(footprint * fraction))
        for policy in POLICIES:
            for mode in MODES:
                cells.append(_measure(transactions, accesses, size,
                                      policy, mode))
    return {
        "accesses": len(accesses),
        "transactions": len(transactions),
        "footprint_blocks": footprint,
        "budget": PREFETCH_BUDGET,
        "min_support": MIN_SUPPORT,
        "results": cells,
    }


def _record(section, sweep):
    merged = {}
    if RESULTS_PATH.exists():
        merged = json.loads(RESULTS_PATH.read_text())
    merged[section] = sweep
    merged["scale"] = SCALE
    RESULTS_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True))
    print(f"wrote {RESULTS_PATH} ({section} section)")


def _print_sweep(title, sweep):
    print_header(title)
    print_row("size", "policy", "prefetch", "hit_ratio", "accuracy")
    for cell in sweep["results"]:
        print_row(cell["cache_blocks"], cell["policy"], cell["prefetch"],
                  cell["hit_ratio"], cell["prefetch_accuracy"])


def _cell(sweep, size, policy, mode):
    for entry in sweep["results"]:
        if (entry["cache_blocks"] == size and entry["policy"] == policy
                and entry["prefetch"] == mode):
            return entry
    raise KeyError((size, policy, mode))


def _lift(sweep, policy="lru"):
    """Best synopsis-over-none hit-ratio lift across the swept sizes."""
    sizes = sorted({entry["cache_blocks"] for entry in sweep["results"]})
    return max(
        _cell(sweep, size, policy, "synopsis")["hit_ratio"]
        - _cell(sweep, size, policy, "none")["hit_ratio"]
        for size in sizes
    )


def _check_common(sweep):
    for cell in sweep["results"]:
        assert 0.0 <= cell["prefetch_accuracy"] <= 1.0, cell
        if cell["prefetch"] == "synopsis" and cell["policy"] == "lru":
            assert cell["prefetch_accuracy"] > 0.5, (
                "online prefetching misfires on this workload", cell)


def test_cache_hitratio_zipf(benchmark):
    transactions = _zipf_pair_transactions()
    sweep = benchmark.pedantic(
        lambda: _sweep(transactions), rounds=1, iterations=1
    )
    _print_sweep("Cache hit-ratio lift: zipf pair stream", sweep)
    _record("zipf", sweep)
    _check_common(sweep)
    assert _lift(sweep) > 0, "prefetching must help on paired traffic"


def test_cache_hitratio_wdev(benchmark, enterprise_pipelines):
    transactions = enterprise_pipelines["wdev"].offline_transactions()
    sweep = benchmark.pedantic(
        lambda: _sweep(transactions), rounds=1, iterations=1
    )
    _print_sweep("Cache hit-ratio lift: MSR-like wdev trace", sweep)
    _record("msr_wdev", sweep)
    _check_common(sweep)
    assert _lift(sweep) >= LIFT_FLOOR_PP, (
        f"synopsis prefetching lifts wdev by < {LIFT_FLOOR_PP:.0%}"
    )


def test_cache_hitratio_hm(benchmark, enterprise_pipelines):
    transactions = enterprise_pipelines["hm"].offline_transactions()
    sweep = benchmark.pedantic(
        lambda: _sweep(transactions), rounds=1, iterations=1
    )
    _print_sweep("Cache hit-ratio lift: MSR-like hm trace", sweep)
    _record("msr_hm", sweep)
    _check_common(sweep)
    assert _lift(sweep) >= LIFT_FLOOR_PP, (
        f"synopsis prefetching lifts hm by < {LIFT_FLOOR_PP:.0%}"
    )
