"""Engine ingest throughput: per-event vs batched, 1-shard vs N-shard.

The seed hot path fed the monitor one event per call and the analyzer one
transaction per callback.  The engine refactor adds a batch lane through
every layer (``Monitor.on_events`` -> ``submit_many`` ->
``process_batch``) and a hash-partitioned N-shard engine.  This benchmark
measures events/second for each ingest mode over the same pre-generated
event stream and records the results in ``BENCH_engine_throughput.json``
(uploaded as a CI artifact by the bench-smoke job).

The acceptance claim: batched ingest through the engine is measurably
faster than the seed per-event path.
"""

import gc
import json
import pathlib
import statistics
import time

from repro.blkdev.device import SsdDevice
from repro.blkdev.replay import replay_timed
from repro.core.config import AnalyzerConfig
from repro.service import CharacterizationService
from repro.telemetry import NULL_REGISTRY
from repro.workloads.enterprise import generate_named

from conftest import print_header, print_row, scaled

RESULTS_PATH = pathlib.Path("BENCH_engine_throughput.json")

#: Floored so even smoke-scale runs amortize enough work to rank modes.
EVENT_COUNT = max(20_000, scaled(40_000))
CONFIG = AnalyzerConfig(item_capacity=4096, correlation_capacity=4096)
ROUNDS = 5


def _event_stream():
    records, _truth = generate_named("rsrch", requests=EVENT_COUNT, seed=5)
    events = []
    replay_timed(records, SsdDevice(seed=3),
                 listeners=[events.append], collect=False)
    return events


def _service(shards=1, parallel=False, registry=None):
    return CharacterizationService(
        config=CONFIG, min_support=5, snapshot_interval=10**9,
        shards=shards, parallel_shards=parallel, registry=registry,
    )


def _measure(factories, events):
    """Per-mode events/second over N rounds, fresh service state each round.

    Rounds are interleaved across modes (all modes' round 1, then round 2,
    ...) so a load spike on the host machine penalizes every mode equally
    instead of whichever mode happened to be measured during it.  Returns
    ``{name: (rates_per_round, snapshot)}``; comparisons should pair rates
    from the same round, which ran adjacent in time.
    """
    rates = {name: [] for name in factories}
    snapshots = {}
    for round_index in range(ROUNDS + 1):
        for name, factory in factories.items():
            service, ingest = factory()
            # Collect the garbage of the previous run now so its pauses
            # cannot land inside the timed region.
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                ingest(events)
                service.flush()
                elapsed = time.perf_counter() - start
            finally:
                gc.enable()
            if round_index == 0:
                continue  # warmup round: caches, allocator, imports
            rates[name].append(len(events) / elapsed)
            snapshots[name] = service.snapshot()
    return {name: (rates[name], snapshots[name]) for name in factories}


def test_engine_throughput(benchmark):
    events = _event_stream()

    def per_event_mode():
        service = _service()

        def ingest(batch):
            submit = service.submit
            for event in batch:
                submit(event)
        return service, ingest

    def batched_mode(shards=1, parallel=False, registry=None):
        def factory():
            service = _service(shards=shards, parallel=parallel,
                               registry=registry)
            return service, service.submit_many
        return factory

    modes = _measure({
        "per_event_1shard": per_event_mode,
        "batched_1shard": batched_mode(),
        "batched_1shard_null_registry": batched_mode(registry=NULL_REGISTRY),
        "batched_4shard": batched_mode(shards=4),
        "batched_4shard_parallel": batched_mode(shards=4, parallel=True),
    }, events)

    print_header("Engine ingest throughput (events/second, median of "
                 f"{ROUNDS} rounds)")
    print_row("mode", "events/s", "correlations", widths=(26, 14, 14))
    for name, (rates, snapshot) in modes.items():
        print_row(name, int(statistics.median(rates)), snapshot.correlations,
                  widths=(26, 14, 14))

    # Paired per-round ratios: each round's batched and per-event runs are
    # adjacent in time, so host load drift cancels out of the ratio.
    per_event = modes["per_event_1shard"][0]
    batched = modes["batched_1shard"][0]
    speedup = statistics.median(
        b / p for b, p in zip(batched, per_event)
    )
    # Telemetry cost: default (enabled, collector-based) registry vs the
    # null registry, same paired-round treatment.  The enabled path's only
    # per-batch cost is a handful of clock reads, so this should sit in
    # the noise floor; the JSON records it so CI history shows any creep.
    with_telemetry = modes["batched_1shard"][0]
    without_telemetry = modes["batched_1shard_null_registry"][0]
    telemetry_overhead = statistics.median(
        1.0 - enabled / null
        for enabled, null in zip(with_telemetry, without_telemetry)
    )
    results = {
        "events": len(events),
        "rounds": ROUNDS,
        "events_per_second": {
            name: round(statistics.median(rates), 1)
            for name, (rates, _s) in modes.items()
        },
        "batched_speedup_vs_per_event": round(speedup, 3),
        "telemetry_overhead_percent": round(100 * telemetry_overhead, 2),
    }
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    print(f"batched speedup vs per-event (median of {ROUNDS} paired "
          f"rounds): {speedup:.3f}x")
    print(f"wrote {RESULTS_PATH}")

    print(f"telemetry overhead (enabled vs null registry): "
          f"{100 * telemetry_overhead:.2f}%")

    # Identical characterization regardless of ingest mode ...
    reference = modes["per_event_1shard"][1].frequent_pairs
    assert modes["batched_1shard"][1].frequent_pairs == reference
    assert modes["batched_1shard_null_registry"][1].frequent_pairs == \
        reference
    # ... and the batch lane must beat the seed per-event path.
    assert speedup > 1.0, (
        f"batched path not faster: median paired speedup {speedup:.3f}x "
        f"(batched {batched}, per-event {per_event})"
    )
    # Telemetry must stay out of the hot path: within 5% of the null
    # registry (the paired-median overhead is usually sub-1%).
    assert telemetry_overhead <= 0.05, (
        f"telemetry overhead {100 * telemetry_overhead:.2f}% > 5% "
        f"(enabled {with_telemetry}, null {without_telemetry})"
    )

    # Record the batched single-shard mode as the canonical benchmark.
    service = _service()
    benchmark.pedantic(service.submit_many, args=(events,),
                       rounds=1, iterations=1)
