"""Engine ingest throughput: per-event vs batched vs columnar, 1..N shards.

The seed hot path fed the monitor one event per call and the analyzer one
transaction per callback.  The engine refactor adds an amortized object
batch lane (``Monitor.on_events`` -> ``submit_many`` -> ``process_batch``)
and, on top of it, a *columnar* lane: event lists become
:class:`EventBatch` numpy columns, the monitor cuts transactions with
vectorized window math, and the engine consumes ``TransactionBatch``
columns -- optionally fanned out to one worker thread or worker *process*
per shard.  This benchmark measures events/second for each ingest mode
over the same pre-generated stream and records the results in
``BENCH_engine_throughput.json`` (uploaded as a CI artifact by the
bench-smoke job).

Acceptance claims:

* batched ingest beats the seed per-event path;
* multi-shard parallel ingest must not fall below single-shard columnar
  throughput when real parallelism is available (``cpu_count > 1``); on a
  single-CPU host true scaling is physically impossible, so the guard
  degrades to a sanity floor that still catches a pathological collapse
  (IPC costs dominating by 3x);
* telemetry stays within 5% of the null registry.  The estimator is the
  *minimum* per-round overhead across paired rounds, clamped at zero: a
  systematic cost shows up in every round, while one-sided scheduler
  luck does not (the old median estimator used to report -0.62% --
  noise, not a real speedup).
"""

import gc
import json
import os
import pathlib
import statistics
import time

from repro.blkdev.device import SsdDevice
from repro.blkdev.replay import replay_timed
from repro.core.config import AnalyzerConfig
from repro.service import CharacterizationService
from repro.telemetry import (
    NULL_REGISTRY,
    MetricsRegistry,
    histogram_quantile,
    snapshot,
)
from repro.workloads.enterprise import generate_named

from conftest import print_header, print_row, scaled

RESULTS_PATH = pathlib.Path("BENCH_engine_throughput.json")

#: Floored so even smoke-scale runs amortize enough work to rank modes.
EVENT_COUNT = max(20_000, scaled(40_000))
CONFIG = AnalyzerConfig(item_capacity=4096, correlation_capacity=4096)
ROUNDS = 5
SHARDS = 4

#: On a single-CPU host parallel shards cannot beat one shard; this floor
#: only catches the engine drowning in its own IPC (worse than 1/0.35x).
SINGLE_CPU_SANITY_FLOOR = 0.35


def _event_stream():
    records, _truth = generate_named("rsrch", requests=EVENT_COUNT, seed=5)
    events = []
    replay_timed(records, SsdDevice(seed=3),
                 listeners=[events.append], collect=False)
    return events


def _service(shards=1, parallel=False, registry=None,
             shard_processes=False, columnar_threshold=None):
    return CharacterizationService(
        config=CONFIG, min_support=5, snapshot_interval=10**9,
        shards=shards, parallel_shards=parallel,
        shard_processes=shard_processes,
        columnar_threshold=columnar_threshold, registry=registry,
    )


def _measure(factories, events):
    """Per-mode events/second over N rounds, fresh service state each round.

    Rounds are interleaved across modes (all modes' round 1, then round 2,
    ...) so a load spike on the host machine penalizes every mode equally
    instead of whichever mode happened to be measured during it.  Returns
    ``{name: (rates_per_round, snapshot)}``; comparisons should pair rates
    from the same round, which ran adjacent in time.
    """
    rates = {name: [] for name in factories}
    snapshots = {}
    for round_index in range(ROUNDS + 1):
        for name, factory in factories.items():
            service, ingest = factory()
            # Collect the garbage of the previous run now so its pauses
            # cannot land inside the timed region.
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                ingest(events)
                service.flush()
                elapsed = time.perf_counter() - start
            finally:
                gc.enable()
            if round_index > 0:  # round 0 warms caches/allocator/imports
                rates[name].append(len(events) / elapsed)
                snapshots[name] = service.snapshot()
            service.release()  # shut down process-shard workers, if any
    return {name: (rates[name], snapshots[name]) for name in factories}


def _paired_speedup(numerator_rates, denominator_rates):
    """Median of per-round ratios: adjacent-in-time runs cancel load drift."""
    return statistics.median(
        num / den for num, den in zip(numerator_rates, denominator_rates)
    )


def _paired_overhead(enabled_rates, null_rates):
    """Minimum per-round overhead of enabled vs null telemetry, clamped
    at zero: a systematic cost shows up in every paired round; anything
    that appears in only some rounds is scheduler noise."""
    return max(0.0, min(
        1.0 - enabled / null
        for enabled, null in zip(enabled_rates, null_rates)
    ))


def _stage_latency(events):
    """p50/p99 per pipeline stage from one instrumented sharded run.

    A fresh registry drives a 2-shard process-backed service over the
    same stream, pulls the worker deltas back through the ack piggyback
    seam, and reads the quantiles out of the merged
    ``repro_stage_duration_seconds`` histograms -- the exact numbers a
    ``/metrics`` scrape of a production server would yield.
    """
    registry = MetricsRegistry()
    service = _service(shards=2, shard_processes=True,
                       columnar_threshold=64, registry=registry)
    try:
        # Request-sized chunks, so the histograms hold a distribution of
        # per-request stage times rather than one giant observation.
        for start in range(0, len(events), 2000):
            service.submit_many(events[start:start + 2000])
        service.flush()
        service.analyzer.collect_worker_metrics()
        snap = snapshot(registry)["metrics"]
    finally:
        service.release()
    family = snap.get("repro_stage_duration_seconds", {"samples": []})
    stages = {}
    for sample in family["samples"]:
        buckets = sorted(
            (float("inf") if bound == "+Inf" else float(bound), count)
            for bound, count in sample["buckets"].items()
        )
        if sample["count"] == 0:
            continue
        labels = sample["labels"]
        stage = labels["stage"]
        if "shard" in labels:
            stage = f"{stage}[shard={labels['shard']}]"
        stages[stage] = {
            "count": sample["count"],
            "p50_us": round(1e6 * histogram_quantile(buckets, 0.5), 1),
            "p99_us": round(1e6 * histogram_quantile(buckets, 0.99), 1),
        }
    return stages


def test_engine_throughput(benchmark):
    events = _event_stream()

    def per_event_mode():
        service = _service()

        def ingest(batch):
            submit = service.submit
            for event in batch:
                submit(event)
        return service, ingest

    def batched_mode(shards=1, parallel=False, registry=None,
                     shard_processes=False, columnar=False):
        def factory():
            service = _service(
                shards=shards, parallel=parallel, registry=registry,
                shard_processes=shard_processes,
                # The columnar lane converts the list inside submit_many,
                # so conversion cost lands inside the timed region.
                columnar_threshold=64 if columnar else None,
            )
            return service, service.submit_many
        return factory

    def traced_procs_mode():
        """The full observability plane on: enabled registry (worker
        metric deltas ride the ack rounds) plus an installed trace log
        with an ambient request context, so every shard round also
        ships a trace tuple and opens a (0%%-sampled) worker span."""
        from repro.telemetry import TraceLog, install_tracelog

        def factory():
            # 0% sampling and a high slow-exemplar threshold: measure the
            # propagation machinery alone, with zero NDJSON I/O.
            log = TraceLog(str(RESULTS_PATH.parent /
                               "BENCH_trace_scratch.ndjson"),
                           sample_rate=0.0, slow_threshold=3600.0)
            install_tracelog(log)
            service = _service(shards=SHARDS, shard_processes=True,
                               columnar_threshold=64)

            def ingest(batch):
                try:
                    with log.span("bench.request"):
                        service.submit_many(batch)
                finally:
                    install_tracelog(None)
            return service, ingest
        return factory

    modes = _measure({
        "per_event_1shard": per_event_mode,
        "batched_1shard": batched_mode(),
        "batched_1shard_null_registry": batched_mode(registry=NULL_REGISTRY),
        "columnar_1shard": batched_mode(columnar=True),
        f"columnar_{SHARDS}shard": batched_mode(shards=SHARDS, columnar=True),
        f"columnar_{SHARDS}shard_threads": batched_mode(
            shards=SHARDS, parallel=True, columnar=True),
        f"columnar_{SHARDS}shard_procs": batched_mode(
            shards=SHARDS, shard_processes=True, columnar=True),
        f"columnar_{SHARDS}shard_procs_null": batched_mode(
            shards=SHARDS, shard_processes=True, columnar=True,
            registry=NULL_REGISTRY),
        f"columnar_{SHARDS}shard_procs_traced": traced_procs_mode(),
    }, events)

    print_header("Engine ingest throughput (events/second, median of "
                 f"{ROUNDS} rounds)")
    print_row("mode", "events/s", "correlations", widths=(26, 14, 14))
    for name, (rates, snapshot) in modes.items():
        print_row(name, int(statistics.median(rates)), snapshot.correlations,
                  widths=(26, 14, 14))

    # Paired per-round ratios: each round's runs are adjacent in time, so
    # host load drift cancels out of the ratio.
    per_event = modes["per_event_1shard"][0]
    batched = modes["batched_1shard"][0]
    columnar = modes["columnar_1shard"][0]
    speedup = _paired_speedup(batched, per_event)
    columnar_speedup = _paired_speedup(columnar, per_event)
    thread_speedup = _paired_speedup(
        modes[f"columnar_{SHARDS}shard_threads"][0], columnar)
    process_speedup = _paired_speedup(
        modes[f"columnar_{SHARDS}shard_procs"][0], columnar)
    parallel_speedup = max(thread_speedup, process_speedup)

    # Telemetry cost: default (enabled, collector-based) registry vs the
    # null registry.  A *systematic* cost shows up in every paired round;
    # anything that appears in only some rounds is scheduler noise on a
    # shared host.  So the estimate is the minimum per-round overhead,
    # clamped at zero (a negative overhead can only be noise -- the old
    # median estimator used to report -0.62%).
    with_telemetry = modes["batched_1shard"][0]
    without_telemetry = modes["batched_1shard_null_registry"][0]
    telemetry_overhead = _paired_overhead(with_telemetry, without_telemetry)

    # Observability-plane cost on the sharded hot path: full plane on
    # (enabled registry, worker metric deltas on the ack rounds, trace
    # context shipped over the duplex pipes, worker-side spans) vs the
    # same process-sharded topology with the null registry and no tracer.
    traced = modes[f"columnar_{SHARDS}shard_procs_traced"][0]
    procs_null = modes[f"columnar_{SHARDS}shard_procs_null"][0]
    observability_overhead = _paired_overhead(traced, procs_null)

    cpu_count = os.cpu_count() or 1
    results = {
        "events": len(events),
        "rounds": ROUNDS,
        "cpu_count": cpu_count,
        "events_per_second": {
            name: round(statistics.median(rates), 1)
            for name, (rates, _s) in modes.items()
        },
        "batched_speedup_vs_per_event": round(speedup, 3),
        "columnar_speedup_vs_per_event": round(columnar_speedup, 3),
        "parallel_speedup_vs_1shard": round(parallel_speedup, 3),
        "parallel_speedup_vs_1shard_threads": round(thread_speedup, 3),
        "parallel_speedup_vs_1shard_procs": round(process_speedup, 3),
        "telemetry_overhead_percent": round(100 * telemetry_overhead, 2),
        "observability_overhead_percent": round(
            100 * observability_overhead, 2),
        "stage_latency": _stage_latency(events),
    }
    if cpu_count == 1:
        results["parallel_speedup_note"] = (
            "single-CPU host: true parallel scaling is impossible; the "
            f"guard degrades to the {SINGLE_CPU_SANITY_FLOOR}x sanity floor"
        )
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    print(f"batched speedup vs per-event (median of {ROUNDS} paired "
          f"rounds): {speedup:.3f}x")
    print(f"columnar speedup vs per-event: {columnar_speedup:.3f}x")
    print(f"parallel speedup vs 1-shard columnar (cpus={cpu_count}): "
          f"threads {thread_speedup:.3f}x, procs {process_speedup:.3f}x")
    print(f"telemetry overhead (enabled vs null registry, min of paired "
          f"rounds): {100 * telemetry_overhead:.2f}%")
    print(f"observability plane overhead (traced+metrics procs vs null "
          f"procs, min of paired rounds): "
          f"{100 * observability_overhead:.2f}%")
    for stage, quantiles in sorted(results["stage_latency"].items()):
        print(f"stage {stage}: p50 {quantiles['p50_us']}us "
              f"p99 {quantiles['p99_us']}us (n={quantiles['count']})")
    print(f"wrote {RESULTS_PATH}")

    # Identical characterization regardless of 1-shard ingest mode ...
    reference = modes["per_event_1shard"][1].frequent_pairs
    assert modes["batched_1shard"][1].frequent_pairs == reference
    assert modes["batched_1shard_null_registry"][1].frequent_pairs == \
        reference
    assert modes["columnar_1shard"][1].frequent_pairs == reference
    # ... the multi-shard modes must at least find correlations ...
    for name in (f"columnar_{SHARDS}shard",
                 f"columnar_{SHARDS}shard_threads",
                 f"columnar_{SHARDS}shard_procs"):
        assert modes[name][1].correlations > 0, name
    # ... and the batch lane must beat the seed per-event path.
    assert speedup > 1.0, (
        f"batched path not faster: median paired speedup {speedup:.3f}x "
        f"(batched {batched}, per-event {per_event})"
    )
    # Parallel-scaling regression guard (satellite): with real CPUs to
    # scale onto, multi-shard parallel must not drop below single-shard
    # columnar; on one CPU, only a pathological collapse fails.
    floor = 1.0 if cpu_count > 1 else SINGLE_CPU_SANITY_FLOOR
    assert parallel_speedup >= floor, (
        f"multi-shard parallel ingest regressed below single-shard: "
        f"best parallel speedup {parallel_speedup:.3f}x < {floor}x "
        f"(cpus={cpu_count}, threads {thread_speedup:.3f}x, "
        f"procs {process_speedup:.3f}x)"
    )
    # Telemetry must stay out of the hot path: within 5% of the null
    # registry.
    assert telemetry_overhead <= 0.05, (
        f"telemetry overhead {100 * telemetry_overhead:.2f}% > 5% "
        f"(enabled {with_telemetry}, null {without_telemetry})"
    )
    # Trace propagation plus worker metric-delta shipping share the same
    # budget: within 5% of the bare process-sharded path.
    assert observability_overhead <= 0.05, (
        f"observability overhead {100 * observability_overhead:.2f}% > 5% "
        f"(traced {traced}, null {procs_null})"
    )

    # Record the columnar single-shard mode as the canonical benchmark.
    service = _service(columnar_threshold=64)
    benchmark.pedantic(service.submit_many, args=(events,),
                       rounds=1, iterations=1)
