"""Section V-1 extension -- automatic GC optimization in multi-stream SSDs.

The paper's proposed optimization: predict death times from *write*
correlations and place correlated writes in the same erase unit via stream
IDs, reducing the write amplification factor.  This bench builds the
death-time workload (hot groups overwritten together over a slowly
refreshed cold population), trains the online analyzer on it, and compares
WAF for a single append point against correlation-informed streams across
stream counts.
"""

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.optimize.multistream import (
    CorrelationStreamAssigner,
    FlashConfig,
    SingleStreamAssigner,
    death_time_workload,
    run_waf_experiment,
)

from conftest import print_header, print_row, scaled

ROUNDS = scaled(240)


def _experiment():
    transactions = death_time_workload(
        hot_groups=4, extent_blocks=64, rounds=ROUNDS,
        cold_extents=180, seed=2,
    )
    analyzer = OnlineAnalyzer(AnalyzerConfig(
        item_capacity=512, correlation_capacity=512
    ))
    analyzer.process_stream(transactions)

    rows = {}
    for streams in (1, 2, 4, 8):
        config = FlashConfig(erase_units=32, pages_per_eu=16,
                             streams=max(streams, 1), overprovision_eus=6)
        if streams == 1:
            assigner = SingleStreamAssigner()
        else:
            assigner = CorrelationStreamAssigner(analyzer, streams)
        rows[streams] = run_waf_experiment(transactions, assigner, config)
    return rows


def test_waf_report(benchmark):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    print_header("Ext V-1: WAF, single stream vs correlation streams")
    print_row("streams", "host writes", "GC copies", "erases", "WAF")
    for streams, stats in rows.items():
        print_row(streams, stats.host_writes, stats.gc_relocations,
                  stats.erases, stats.waf)

    single = rows[1]
    # The baseline genuinely amplifies writes.
    assert single.waf > 1.05
    for streams, stats in rows.items():
        assert stats.host_writes == single.host_writes
        # No stream split ever does worse than the single append point.
        assert stats.waf <= single.waf + 1e-9, f"{streams} streams"
    # Two streams cannot yet separate the hot clusters from the cold
    # cluster (both land on the single cluster stream); with enough
    # streams the populations separate and WAF drops clearly.
    assert rows[8].waf < single.waf - 0.03
    assert rows[8].waf <= rows[4].waf <= rows[2].waf + 1e-9
