"""Section V-2 extension -- automatic parallel I/O in open-channel SSDs.

The paper's proposed optimization: place extents that are frequently *read*
together on different parallel units so they are served concurrently.  The
baseline is RAID-0-like striping, which serves large sequential access well
but can collide correlated random extents on one PU (prior work measured up
to 4.2x latency inflation from ill-mapped layouts).  This bench trains the
analyzer on a correlated read workload and compares mean transaction
latency under striping versus correlation-aware placement.
"""

import random

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.core.extent import Extent
from repro.optimize.openchannel import (
    CorrelationPlacement,
    OcssdConfig,
    StripingPlacement,
    run_parallel_read_experiment,
)

from conftest import print_header, print_row, scaled

ROUNDS = scaled(400)


def _correlated_read_workload(seed=3, groups=12, fanout=4):
    """Transactions of `fanout` extents read together; group members sit in
    the same stripe region, the worst case for striping."""
    rng = random.Random(seed)
    stripe = 4096
    group_extents = []
    for group in range(groups):
        base = group * 64 * stripe
        members = [
            Extent(base + member * 64, 8)  # all inside one stripe
            for member in range(fanout)
        ]
        group_extents.append(members)
    transactions = []
    for _ in range(ROUNDS):
        transactions.append(group_extents[rng.randrange(groups)])
    return transactions


def _experiment():
    transactions = _correlated_read_workload()
    analyzer = OnlineAnalyzer(AnalyzerConfig(
        item_capacity=512, correlation_capacity=512
    ))
    analyzer.process_stream(transactions)

    config = OcssdConfig(parallel_units=8, stripe_blocks=4096)
    baseline = run_parallel_read_experiment(
        transactions, StripingPlacement(config), config
    )
    optimized = run_parallel_read_experiment(
        transactions, CorrelationPlacement(analyzer, config), config
    )
    return baseline, optimized


def test_parallel_read_report(benchmark):
    baseline, optimized = benchmark.pedantic(_experiment, rounds=1,
                                             iterations=1)

    print_header("Ext V-2: parallel reads, striping vs correlation placement")
    print_row("placement", "mean us", "speedup", "transactions")
    print_row("striping", baseline.mean_latency * 1e6,
              baseline.parallel_speedup, baseline.transactions)
    print_row("correlation", optimized.mean_latency * 1e6,
              optimized.parallel_speedup, optimized.transactions)

    improvement = baseline.mean_latency / optimized.mean_latency
    print_row("improvement", f"{improvement:.2f}x", "", "")

    # Striping collides every group onto one PU (fully serialised).
    assert baseline.parallel_speedup < 1.2
    # Correlation placement restores most of the available parallelism:
    # with 4 extents per transaction, ideal is 4x.
    assert improvement > 2.0
    assert optimized.parallel_speedup > 2.0
