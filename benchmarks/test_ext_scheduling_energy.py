"""Section V extensions: I/O scheduling and energy efficiency.

Together with the multi-stream/ZNS (GC), open-channel (parallelism), and
prefetching benches, these complete the paper's §V optimization list:
"caching, prefetching, data placement, energy efficiency, garbage
collection, I/O scheduling, and wear-leveling".

* **Scheduling**: a correlation-aware dispatcher pulls a dispatched
  request's frequent partner to the queue head, so correlated work
  dispatches back-to-back.
* **Energy**: packing correlated working sets onto one disk of an array
  lets the remaining disks spin down between bursts.
* **Wear**: the multi-stream flash model's per-unit erase counts confirm
  correlation streams do not concentrate wear pathologically.
"""

import random

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.core.extent import Extent, ExtentPair
from repro.optimize.energy import (
    CorrelationEnergyPlacement,
    PowerModel,
    StripingEnergyPlacement,
    run_energy_experiment,
)
from repro.optimize.multistream import (
    CorrelationStreamAssigner,
    FlashConfig,
    MultiStreamSsd,
    SingleStreamAssigner,
    death_time_workload,
)
from repro.optimize.scheduler import (
    CorrelationScheduler,
    FifoScheduler,
    run_dispatch_experiment,
)

from conftest import print_header, print_row, scaled


def test_scheduling_report(benchmark):
    def compute():
        rng = random.Random(3)
        pairs = [
            ExtentPair(Extent(i * 100000, 8), Extent(i * 100000 + 50000, 8))
            for i in range(1, 7)
        ]
        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=128, correlation_capacity=128
        ))
        for p in pairs:
            for _ in range(5):
                analyzer.process([p.first, p.second])

        arrivals = []
        noise = 10_000_000
        for round_index in range(scaled(200)):
            p = pairs[rng.randrange(len(pairs))]
            arrivals.append(p.first)
            for _ in range(rng.randint(3, 7)):
                arrivals.append(Extent(noise, 8))
                noise += 100
            arrivals.append(p.second)

        fifo = run_dispatch_experiment(
            arrivals, FifoScheduler(), pairs, queue_depth=24
        )
        smart = run_dispatch_experiment(
            arrivals,
            CorrelationScheduler(analyzer, min_support=2,
                                 fairness_window=24),
            pairs, queue_depth=24,
        )
        return fifo, smart

    fifo, smart = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Ext V (scheduling): partner dispatch distance")
    print_row("scheduler", "mean dist", "adjacent %", "promotions")
    print_row("FIFO", fifo.mean_partner_distance,
              100 * fifo.adjacent_fraction, fifo.promotions)
    print_row("correlation", smart.mean_partner_distance,
              100 * smart.adjacent_fraction, smart.promotions)

    assert fifo.dispatched == smart.dispatched
    assert smart.mean_partner_distance < fifo.mean_partner_distance / 1.5
    assert smart.adjacent_fraction > fifo.adjacent_fraction


def test_energy_report(benchmark):
    def compute():
        rng = random.Random(5)
        pairs = [
            ExtentPair(Extent(i * 4096, 8), Extent(i * 4096 + 2048, 8))
            for i in range(0, 8, 2)   # members share no stripe boundary
        ]
        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=128, correlation_capacity=128
        ))
        for p in pairs:
            for _ in range(5):
                analyzer.process([p.first, p.second])

        timeline = []
        clock = 0.0
        for _ in range(scaled(120)):
            p = pairs[rng.randrange(len(pairs))]
            timeline.append((clock, p.first))
            timeline.append((clock + 0.005, p.second))
            clock += rng.expovariate(1.0 / 25.0)

        power = PowerModel(idle_timeout=2.0)
        disks = 4
        striped = run_energy_experiment(
            timeline, StripingEnergyPlacement(disks, 1024), disks,
            power=power, duration=clock + 1.0,
        )
        clustered = run_energy_experiment(
            timeline, CorrelationEnergyPlacement(analyzer, disks,
                                                 stripe_blocks=1024),
            disks, power=power, duration=clock + 1.0,
        )
        return striped, clustered

    striped, clustered = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Ext V (energy): disk array energy by placement")
    print_row("placement", "joules", "J/access", "spinups")
    print_row("striping", striped.total_joules,
              striped.joules_per_access, striped.spinups)
    print_row("clustered", clustered.total_joules,
              clustered.joules_per_access, clustered.spinups)
    saving = 1 - clustered.total_joules / striped.total_joules
    print_row("saving", f"{100 * saving:.1f}%", "", "")

    assert striped.accesses == clustered.accesses
    assert clustered.total_joules < striped.total_joules


def test_wear_leveling_report(benchmark):
    """§V wear-leveling: correlation streams cut WAF *without*
    concentrating erases on few units."""

    def compute():
        transactions = death_time_workload(
            hot_groups=4, extent_blocks=64, rounds=scaled(240),
            cold_extents=180, seed=2,
        )
        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=256, correlation_capacity=256
        ))
        analyzer.process_stream(transactions)
        config = FlashConfig(erase_units=32, pages_per_eu=16,
                             streams=8, overprovision_eus=6)

        def run(assigner):
            device = MultiStreamSsd(config)
            for extents in transactions:
                for extent in extents:
                    device.write_extent(extent, assigner.assign(extent), 8)
            return device.stats, device.wear_report()

        single = run(SingleStreamAssigner())
        streamed = run(CorrelationStreamAssigner(analyzer, 8))
        return single, streamed

    (single_stats, single_wear), (streamed_stats, streamed_wear) = (
        benchmark.pedantic(compute, rounds=1, iterations=1)
    )

    print_header("Ext V (wear): erase distribution across units")
    print_row("policy", "WAF", "erases", "max/unit", "imbalance")
    print_row("single", single_stats.waf, single_wear.total_erases,
              single_wear.max_erases, single_wear.imbalance)
    print_row("streams", streamed_stats.waf, streamed_wear.total_erases,
              streamed_wear.max_erases, streamed_wear.imbalance)

    assert streamed_stats.waf < single_stats.waf
    # The WAF win must not come at a catastrophic wear concentration:
    # imbalance stays within a small factor of the baseline's.
    assert streamed_wear.imbalance < max(4.0, 3 * single_wear.imbalance)
