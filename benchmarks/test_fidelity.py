"""Fidelity of synopsis strength estimates vs exact ground truth.

Detection accuracy (the >90 % headline) checks *membership*; optimizers
that prioritise by correlation strength also need the synopsis to *rank*
pairs the way the true frequencies do.  This bench scores rank and weight
agreement for the paper's structure and the estDec+ stream baseline under
comparable budgets, plus the request-merging ablation: merging upstream of
the monitor collapses split sequential runs and shrinks the pair load.
"""

from repro.analysis.compare import rank_agreement
from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.core.extent import ExtentPair
from repro.fim.estdec import EstDecConfig, EstDecMiner
from repro.monitor.merge import RequestMerger
from repro.monitor.monitor import Monitor, TransactionRecorder
from repro.monitor.window import StaticWindow

from conftest import print_header, print_row, scaled


def test_rank_fidelity(benchmark, enterprise_pipelines,
                       enterprise_ground_truth):
    budget = scaled(4096)

    def compute():
        rows = {}
        for name in ("wdev", "hm"):
            transactions = enterprise_pipelines[name].offline_transactions()
            truth = enterprise_ground_truth[name]

            synopsis = OnlineAnalyzer(AnalyzerConfig(
                item_capacity=budget, correlation_capacity=budget
            ))
            synopsis.process_stream(transactions)
            synopsis_report = rank_agreement(
                truth, synopsis.pair_frequencies(), top_k=100
            )

            stream = EstDecMiner(EstDecConfig(
                decay=0.9999, insertion_threshold=0.5,
                max_entries=4 * budget,
            ))
            stream.process_stream(transactions)
            stream_counts = {
                ExtentPair(*sorted(key)): count
                for key, count in stream.frequent_pairs(0.5)
            }
            stream_report = rank_agreement(truth, stream_counts, top_k=100)
            rows[name] = (synopsis_report, stream_report)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Strength fidelity vs exact counts (top-100)")
    print_row("workload", "method", "kendall", "top-k", "w-jaccard")
    for name, (synopsis_report, stream_report) in rows.items():
        print_row(name, "synopsis", synopsis_report.kendall_tau,
                  synopsis_report.top_k_overlap,
                  synopsis_report.weighted_jaccard)
        print_row(name, "estDec+", stream_report.kendall_tau,
                  stream_report.top_k_overlap,
                  stream_report.weighted_jaccard)

    for name, (synopsis_report, _stream) in rows.items():
        # The synopsis ranks the hot pairs essentially like the truth.
        assert synopsis_report.kendall_tau > 0.6, name
        assert synopsis_report.top_k_overlap > 0.9, name


def test_request_merging_ablation(benchmark):
    """A split sequential writer: 4x 8-block requests per logical 32-block
    write.  Merging reconstructs the logical extents, cutting monitor
    traffic and trivial pair load."""

    def compute():
        from repro.monitor.events import BlockIOEvent
        from repro.trace.record import OpType

        def raw_events():
            clock = 0.0
            for round_index in range(scaled(400)):
                base = (round_index % 10) * 4096
                for piece in range(4):
                    yield BlockIOEvent(clock + piece * 2e-5, 1,
                                       OpType.WRITE, base + piece * 8, 8)
                clock += 0.02

        def run(with_merger):
            recorder = TransactionRecorder()
            monitor = Monitor(window=StaticWindow(1e-3), sinks=[recorder])
            if with_merger:
                merger = RequestMerger(monitor.on_event)
                for raw in raw_events():
                    merger.on_event(raw)
                merger.flush()
            else:
                for raw in raw_events():
                    monitor.on_event(raw)
            monitor.flush()
            analyzer = OnlineAnalyzer(AnalyzerConfig(
                item_capacity=scaled(1024),
                correlation_capacity=scaled(1024),
            ))
            analyzer.process_stream(recorder.extent_transactions())
            return (monitor.stats.events_seen,
                    analyzer.report().pairs_seen)

        return run(with_merger=False), run(with_merger=True)

    (raw_events_seen, raw_pairs), (merged_events, merged_pairs) = (
        benchmark.pedantic(compute, rounds=1, iterations=1)
    )

    print_header("Request-merging ablation (split sequential writer)")
    print_row("stage", "events", "pairs seen")
    print_row("raw", raw_events_seen, raw_pairs)
    print_row("merged", merged_events, merged_pairs)

    assert merged_events == raw_events_seen / 4   # 4 pieces -> 1 request
    assert merged_pairs < raw_pairs / 2
