"""Figure 10 -- learning new concepts and forgetting old ones.

The paper replays the first 100 K requests of wdev, then the first 100 K of
hm, then the second 100 K of wdev, with a correlation table of C = 32 K --
too small to hold both concepts.  The synopsis snapshots show wdev's
pattern forming, being displaced by hm's, and re-forming as hm fades.  We
run the same composition at scale: segment lengths and table size shrink
proportionally (the operative property is that the table cannot hold both
concepts at once).
"""

from repro.blkdev.device import SsdDevice
from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.fim.pairs import exact_pair_counts, pairs_with_support
from repro.monitor.monitor import Monitor, TransactionRecorder
from repro.pipeline import run_pipeline
from repro.workloads.composite import drift_workload

from conftest import print_header, print_row, scaled

SEGMENT_REQUESTS = scaled(6000)
TABLE_CAPACITY = scaled(1024)
CONCEPT_SUPPORT = 3


def _concept_frequent_pairs(records):
    """A concept's signature: its frequent pairs under the full pipeline."""
    result = run_pipeline(records, device=SsdDevice(seed=41))
    counts = exact_pair_counts(result.offline_transactions())
    return set(pairs_with_support(counts, CONCEPT_SUPPORT))


def _run_drift(enterprise_traces):
    wdev_records, _ = enterprise_traces["wdev"]
    hm_records, _ = enterprise_traces["hm"]
    if len(wdev_records) < 2 * SEGMENT_REQUESTS:
        raise AssertionError("trace too short for the drift composition")

    flat, segments = drift_workload(
        wdev_records, hm_records, SEGMENT_REQUESTS, labels=("wdev", "hm")
    )
    concepts = {
        "wdev": _concept_frequent_pairs(wdev_records[:2 * SEGMENT_REQUESTS]),
        "hm": _concept_frequent_pairs(hm_records[:SEGMENT_REQUESTS]),
    }

    analyzer = OnlineAnalyzer(AnalyzerConfig(
        item_capacity=TABLE_CAPACITY, correlation_capacity=TABLE_CAPACITY
    ))
    monitor = Monitor()
    recorder = TransactionRecorder()
    monitor.add_sink(lambda t: analyzer.process(t.extents))
    monitor.add_sink(recorder)

    snapshots = []
    device = SsdDevice(seed=43)
    from repro.blkdev.replay import replay_timed
    for segment in segments:
        replay_timed(segment.records, device,
                     listeners=[monitor.on_event], collect=False)
        monitor.flush()
        resident = set(analyzer.pair_frequencies())
        # How much of each concept's frequent-pair signature is currently
        # held -- the "pattern" the paper's Fig. 10 snapshots visualise.
        recall = {
            name: len(resident & signature) / len(signature)
            for name, signature in concepts.items()
        }
        snapshots.append((segment.label, len(resident), recall))
    return snapshots


def test_fig10_report(benchmark, enterprise_traces):
    snapshots = benchmark.pedantic(
        _run_drift, args=(enterprise_traces,), rounds=1, iterations=1
    )

    print_header(
        f"Fig 10: concept drift wdev->hm->wdev "
        f"(C={TABLE_CAPACITY}, {SEGMENT_REQUESTS} reqs/segment)"
    )
    print_row("segment", "resident", "wdev recall", "hm recall")
    for label, resident, recall in snapshots:
        print_row(label, resident, recall["wdev"], recall["hm"])

    by_label = {label: recall for label, _r, recall in snapshots}

    # After the first wdev segment the synopsis holds wdev's concept and
    # knows nothing of hm.
    assert by_label["wdev-1"]["wdev"] > 0.4
    assert by_label["wdev-1"]["hm"] < 0.05
    # hm's segment displaces wdev: hm's pattern dominates, wdev has faded.
    assert by_label["hm-1"]["hm"] > by_label["hm-1"]["wdev"]
    assert by_label["hm-1"]["wdev"] < by_label["wdev-1"]["wdev"] * 0.9
    # More wdev requests bring wdev's pattern back while hm begins to fade.
    assert by_label["wdev-2"]["wdev"] > by_label["hm-1"]["wdev"]
    assert by_label["wdev-2"]["hm"] < by_label["hm-1"]["hm"]
