"""Figure 1 -- storage heat maps of the enterprise workloads.

Fig. 1 is the paper's motivating figure: request sequence vs starting
block, where "vertical patterns indicate data access correlations, and
their horizontal repetition motivates the use of these correlations".
We rasterise each modelled trace the same way and verify the structure the
paper reads off the real heat maps: hot rows (repeatedly accessed block
ranges) that recur across the whole request sequence.
"""

import numpy as np

from repro.analysis.heatmap import save_pgm, trace_heatmap

from conftest import print_header, print_row


def _hot_row_stats(grid: np.ndarray):
    """Occupancy of the busiest block row across the request sequence."""
    row_totals = grid.sum(axis=1)
    hottest = int(row_totals.argmax())
    columns_active = int((grid[hottest] > 0).sum())
    return hottest, row_totals[hottest], columns_active, grid.shape[1]


def test_fig1_report(benchmark, enterprise_traces, tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("fig1")

    def compute():
        rows = {}
        for name, (records, _truth) in enterprise_traces.items():
            grid = trace_heatmap(records, sequence_bins=96, block_bins=96)
            rows[name] = (grid, _hot_row_stats(grid))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Fig 1: storage heat maps (hot-row persistence)")
    print_row("workload", "hot row", "requests", "active cols", "of")
    for name, (grid, (hottest, total, active, columns)) in rows.items():
        print_row(name, hottest, int(total), active, columns)
        save_pgm(grid, out_dir / f"{name}.pgm")

    for name, (grid, (hottest, _total, active, columns)) in rows.items():
        # Every request is accounted for.
        assert grid.sum() == len(enterprise_traces[name][0])
        # Horizontal repetition: hot-pool traces keep their hottest row
        # active through most of the request sequence (the vertical
        # patterns recurring across time that Fig. 1 shows).
        if name != "stg":  # stg is mostly one-off traffic by design
            assert active > columns * 0.6, name

    # The reuse-heavy wdev concentrates more traffic in its hottest band
    # than write-once stg does.
    wdev_peak = rows["wdev"][0].sum(axis=1).max() / rows["wdev"][0].sum()
    stg_peak = rows["stg"][0].sum(axis=1).max() / rows["stg"][0].sum()
    assert wdev_peak > stg_peak
