"""Figure 5 -- cumulative distribution of extent correlations by frequency.

For every real-world trace, the unique-pair CDF (solid) rises quickly --
for wdev/src2/rsrch roughly three quarters of unique pairs occur only once
-- while the frequency-weighted CDF (dashed) rises slowly: a Zipf-like
distribution.  That gap is what lets a small synopsis hold a valuable share
of total correlation frequency.
"""

from repro.analysis.cdf import correlation_cdf

from conftest import print_header, print_row


def test_fig5_report(benchmark, enterprise_ground_truth):
    cdfs = benchmark.pedantic(
        lambda: {
            name: correlation_cdf(counts)
            for name, counts in enterprise_ground_truth.items()
        },
        rounds=1,
        iterations=1,
    )

    print_header("Fig 5: CDF of extent correlations by frequency")
    print_row("workload", "uniq pairs", "uniq@supp1", "wght@supp1", "knee(90%)")
    for name, cdf in cdfs.items():
        print_row(
            name,
            cdf.total_pairs,
            cdf.support_one_fraction,
            cdf.weighted_at(1),
            cdf.knee(0.9),
        )

    for name, cdf in cdfs.items():
        # The solid line dominates the dashed line at low support: unique
        # pairs are mostly infrequent, but carry little total frequency.
        assert cdf.support_one_fraction > cdf.weighted_at(1), name
        # Both curves are proper CDFs.
        assert cdf.unique_fractions[-1] == 1.0
        assert abs(cdf.weighted_fractions[-1] - 1.0) < 1e-9

    # Paper: "in the three traces on the left (wdev, src2, and rsrch) ...
    # three quarters of the unique extent pairs occur only once".
    for name in ("wdev", "src2", "rsrch"):
        assert 0.5 < cdfs[name].support_one_fraction < 0.95, name

    # stg's footprint is mostly unique, so nearly all pairs are one-offs.
    assert cdfs["stg"].support_one_fraction > cdfs["wdev"].support_one_fraction

    # The paper picks support 5 as "past the knee" for every trace: by
    # frequency 5 the unique CDF must have absorbed most unique pairs.
    for name, cdf in cdfs.items():
        assert cdf.unique_at(5) > 0.8, name


def test_benchmark_cdf_construction(benchmark, enterprise_ground_truth):
    counts = enterprise_ground_truth["src2"]
    benchmark.pedantic(correlation_cdf, args=(counts,), rounds=5, iterations=1)
