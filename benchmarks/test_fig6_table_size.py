"""Figure 6 -- table size necessary to support the real-world traces.

Sorting all extent pairs by decreasing frequency, the cumulative frequency
of the top-n pairs is the best any n-entry correlation table can do.  The
paper reads two things off this curve: a small table already represents
roughly 40% of all extent correlations, and roughly half a million entries
suffice to represent wdev/src2/rsrch completely.  At our scale the absolute
sizes shrink proportionally; the asserted properties are the curve's shape.
"""

from repro.analysis.optimal import optimal_curve, power_of_two_sizes

from conftest import print_header, print_row


def test_fig6_report(benchmark, enterprise_ground_truth):
    curves = benchmark.pedantic(
        lambda: {
            name: optimal_curve(counts)
            for name, counts in enterprise_ground_truth.items()
        },
        rounds=1,
        iterations=1,
    )

    sizes = power_of_two_sizes(16, 65536)
    print_header("Fig 6: optimal coverage vs correlation-table entries")
    header = ["workload"] + [str(s) for s in sizes[:4]] + ["full@"]
    print_row(*header, widths=(10, 12, 12, 12, 12, 12))
    for name, curve in curves.items():
        row = [name] + [
            f"{curve.fraction_for_size(size):.2f}" for size in sizes[:4]
        ] + [str(curve.unique_pairs)]
        print_row(*row, widths=(10, 12, 12, 12, 12, 12))

    for name, curve in curves.items():
        # Monotone non-decreasing coverage.
        fractions = [curve.fraction_for_size(size) for size in sizes]
        assert all(a <= b for a, b in zip(fractions, fractions[1:])), name
        # Full coverage once the table holds every pair.
        assert curve.fraction_for_size(curve.unique_pairs) == 1.0

    # "It is possible to represent roughly 40% of all extent correlations
    # for all traces using a small table size."  A small table here is a
    # small fraction (2%) of each trace's unique-pair population.  stg --
    # the paper's long-tail outlier whose pairs are mostly one-offs --
    # concentrates far less than the hot-pool traces.
    for name, curve in curves.items():
        small = max(16, curve.unique_pairs // 50)
        floor = 0.03 if name == "stg" else 0.15
        assert curve.fraction_for_size(small) > floor, name

    # Hot-pool traces (wdev, rsrch, hm) concentrate much faster than the
    # mostly-unique stg -- the cross-trace ordering visible in Fig 6.
    small_coverage = {
        name: curve.fraction_for_size(512) for name, curve in curves.items()
    }
    assert small_coverage["wdev"] > small_coverage["stg"]
    assert small_coverage["hm"] > small_coverage["stg"]

    # stg needs (relatively) the largest table for full coverage.
    populations = {name: curve.unique_pairs for name, curve in curves.items()}
    assert populations["stg"] == max(populations.values())


def test_benchmark_optimal_curve(benchmark, enterprise_ground_truth):
    counts = enterprise_ground_truth["stg"]
    benchmark.pedantic(optimal_curve, args=(counts,), rounds=5, iterations=1)
