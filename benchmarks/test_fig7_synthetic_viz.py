"""Figure 7 -- offline vs online analysis of the synthetic workloads.

The paper's Fig. 7 shows, per synthetic workload: the block-layer heat map,
every support-1 pair, offline eclat at support 10, and the online synopsis.
Its claim is visual: "the proposed online framework captures a majority of
important data access correlations by visually yielding a very similar
shape with offline."  We make that testable by rasterising the offline and
online correlation point sets on a common grid and requiring high overlap.
"""

from repro.analysis.heatmap import (
    raster_similarity,
    rasterize_pairs,
    trace_heatmap,
)
from repro.blkdev.device import SsdDevice
from repro.core.extent import ExtentPair
from repro.fim.eclat import eclat
from repro.fim.itemset import frequent_pairs
from repro.fim.pairs import exact_pair_counts, itemsets_to_pair_counts
from repro.pipeline import run_pipeline

from conftest import print_header, print_row

SUPPORT = 10  # the paper's Fig. 7 support for offline eclat
BINS = 96


def _figure7_for(records):
    """One Fig. 7 row: offline eclat raster vs online synopsis raster."""
    pipeline = run_pipeline(records, device=SsdDevice(seed=31))
    transactions = pipeline.offline_transactions()

    mined = eclat(transactions, min_support=SUPPORT, max_size=2)
    offline_counts = itemsets_to_pair_counts(frequent_pairs(mined))
    online_counts = dict(pipeline.frequent_pairs(min_support=SUPPORT))

    max_block = max(
        (pair.second.end for pair in offline_counts), default=1
    )
    offline_raster = rasterize_pairs(offline_counts, bins=BINS,
                                     max_block=max_block)
    online_raster = rasterize_pairs(online_counts, bins=BINS,
                                    max_block=max_block)
    support1 = exact_pair_counts(transactions)
    return {
        "support1_pairs": len(support1),
        "offline_pairs": len(offline_counts),
        "online_pairs": len(online_counts),
        "similarity": raster_similarity(offline_raster, online_raster),
        "heatmap_requests": int(trace_heatmap(records).sum()),
    }


def test_fig7_report(benchmark, synthetic_workloads):
    def compute():
        return {
            name: _figure7_for(records)
            for name, (records, _truth) in synthetic_workloads.items()
        }

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header(f"Fig 7: synthetic offline (eclat supp {SUPPORT}) vs online")
    print_row("workload", "supp1 pairs", "offline", "online", "similarity")
    for name, row in rows.items():
        print_row(name, row["support1_pairs"], row["offline_pairs"],
                  row["online_pairs"], row["similarity"])

    for name, row in rows.items():
        # Noise creates many one-off pairs; support 10 must prune heavily.
        assert row["offline_pairs"] < row["support1_pairs"] / 3, name
        # "Visually yielding a very similar shape": high raster overlap.
        assert row["similarity"] > 0.6, name
        # The heat map accounts for every request.
        assert row["heatmap_requests"] > 0


def test_online_finds_planted_correlations(benchmark, synthetic_workloads):
    """The circled points of Fig. 7: each planted correlation appears in
    the online output at the offline support threshold."""

    def compute():
        found = {}
        for name, (records, truth) in synthetic_workloads.items():
            pipeline = run_pipeline(records, device=SsdDevice(seed=31),
                                    record_offline=False)
            online = {p for p, _t in pipeline.frequent_pairs(SUPPORT)}
            found[name] = sum(1 for pair in truth.pairs if pair in online)
        return found

    found = benchmark.pedantic(compute, rounds=1, iterations=1)
    for name, count in found.items():
        assert count == 4, f"{name}: only {count}/4 planted pairs detected"
