"""Figure 8 -- offline vs online analysis of the Microsoft-like traces.

Per trace: every support-1 pair (left column), offline pairs at support 5
(middle), and the online synopsis at support 5 (right).  The paper selects
support 5 as "past the knee" of every trace's unique-pair CDF and observes
that the online and offline point sets are visually similar, with the
support filter removing coincidental noise (the hm example around block
5M).  We rasterise all three and assert the overlap structure.
"""

from repro.analysis.heatmap import raster_similarity, rasterize_pairs
from repro.fim.pairs import pairs_with_support

from conftest import print_header, print_row

SUPPORT = 5  # the paper's Fig. 8 support
BINS = 96


def _figure8_for(pipeline, truth_counts):
    offline_all = truth_counts
    offline_frequent = pairs_with_support(truth_counts, SUPPORT)
    online_frequent = dict(pipeline.frequent_pairs(min_support=SUPPORT))

    max_block = max(
        (pair.second.end for pair in offline_frequent), default=1
    )
    raster_offline = rasterize_pairs(offline_frequent, bins=BINS,
                                     max_block=max_block)
    raster_online = rasterize_pairs(online_frequent, bins=BINS,
                                    max_block=max_block)
    return {
        "support1": len(offline_all),
        "offline5": len(offline_frequent),
        "online5": len(online_frequent),
        "similarity": raster_similarity(raster_offline, raster_online),
    }


def test_fig8_report(benchmark, enterprise_pipelines, enterprise_ground_truth):
    def compute():
        return {
            name: _figure8_for(
                enterprise_pipelines[name], enterprise_ground_truth[name]
            )
            for name in enterprise_pipelines
        }

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header(f"Fig 8: offline vs online at support {SUPPORT}")
    print_row("workload", "supp1", f"off@{SUPPORT}", f"on@{SUPPORT}",
              "similarity")
    for name, row in rows.items():
        print_row(name, row["support1"], row["offline5"], row["online5"],
                  row["similarity"])

    for name, row in rows.items():
        # The support filter prunes the coincidental majority (Fig 5 says
        # most unique pairs are infrequent).
        assert row["offline5"] < row["support1"] / 2, name
        # The online point set must look like the offline one.
        assert row["similarity"] > 0.5, name

    # hm's coincidence region: support filtering removes proportionally
    # more of hm's support-1 pairs than of wdev's hot-pool-dominated pairs.
    prune = {
        name: 1.0 - row["offline5"] / row["support1"]
        for name, row in rows.items()
    }
    assert prune["hm"] > 0.8
