"""Figure 9 -- representability of extent correlations versus optimal.

For each trace and each correlation-table size, the captured fraction of
total pair frequency is divided by the optimal fraction possible for the
same number of entries (Fig. 6).  The paper's curve is low for small
tables, rises with size, and reaches 100% when the table can hold every
pair; stg -- whose pairs are mostly an infrequent long tail -- performs
poorly against optimal at small sizes because valuable pairs are evicted
by LRU before they become frequent.

The paper sweeps 16 K - 4 M entries against week-long traces; we sweep
proportionally scaled powers of two against the scaled traces.
"""

from repro.analysis.optimal import optimal_curve, power_of_two_sizes
from repro.analysis.representability import sweep_table_sizes

from conftest import print_header, print_row, scaled

#: Per-tier capacities swept (the paper's "table size" axis, scaled).
CAPACITIES = power_of_two_sizes(256, 16384)


def test_fig9_report(benchmark, enterprise_pipelines, enterprise_ground_truth):
    def compute():
        quality = {}
        for name, pipeline in enterprise_pipelines.items():
            transactions = pipeline.offline_transactions()
            truth = enterprise_ground_truth[name]
            sweep = sweep_table_sizes(transactions, truth, CAPACITIES)
            quality[name] = [(cap, score.quality, score.captured_fraction)
                             for cap, score in sweep]
        return quality

    quality = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Fig 9: captured/optimal vs correlation-table capacity C")
    print_row("workload", *[str(c) for c in CAPACITIES],
              widths=(10,) + (9,) * len(CAPACITIES))
    for name, series in quality.items():
        print_row(name, *[f"{q:.2f}" for _c, q, _f in series],
                  widths=(10,) + (9,) * len(CAPACITIES))

    for name, series in quality.items():
        qualities = [q for _c, q, _f in series]
        # Rising trend: the largest table must beat the smallest clearly.
        assert qualities[-1] > qualities[0], name
        # With a table big enough for every pair, quality reaches ~100%.
        assert qualities[-1] > 0.95, name
        # Quality is a ratio against optimal, never above 1 (tolerance for
        # the resident count exceeding unique pairs is impossible).
        assert all(q <= 1.0 + 1e-9 for q in qualities), name

    # stg's long tail makes small tables perform worst versus optimal.
    small_quality = {name: series[0][1] for name, series in quality.items()}
    assert small_quality["stg"] == min(small_quality.values())
    assert small_quality["wdev"] > small_quality["stg"]


def test_benchmark_single_sweep_point(benchmark, enterprise_pipelines,
                                      enterprise_ground_truth):
    """Cost of one online pass at one table size (the Fig. 9 inner loop)."""
    pipeline = enterprise_pipelines["rsrch"]
    transactions = pipeline.offline_transactions()
    truth = enterprise_ground_truth["rsrch"]

    def run():
        sweep_table_sizes(transactions, truth, [scaled(2048)])

    benchmark.pedantic(run, rounds=3, iterations=1)
