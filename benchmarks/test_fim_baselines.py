"""Section II-B -- the offline and stream FIM baselines.

The paper characterises the offline miners as a time/space trade-off
(apriori fast but memory-hungry, eclat lean but slow, fp-growth between)
and finds stream FIM (estDec+) unable to keep up with block I/O rates at
reasonable accuracy because it chases maximal itemsets.  This benchmark
times all three offline miners on the recorded transactions of a real
workload, checks they agree, and compares the estDec+-style stream miner's
accuracy and throughput against the paper's synopsis.
"""

import time
import tracemalloc

from repro.analysis.accuracy import detection_metrics
from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.core.extent import ExtentPair
from repro.fim.apriori import apriori
from repro.fim.eclat import eclat
from repro.fim.estdec import EstDecConfig, EstDecMiner
from repro.fim.fpgrowth import fpgrowth
from repro.fim.itemset import frequent_pairs
from repro.fim.pairs import exact_pair_counts, itemsets_to_pair_counts

from conftest import print_header, print_row, scaled

SUPPORT = 5


def _timed(miner, transactions):
    tracemalloc.start()
    start = time.perf_counter()
    result = miner(transactions, min_support=SUPPORT, max_size=2)
    elapsed = time.perf_counter() - start
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def test_offline_miner_comparison(benchmark, enterprise_pipelines):
    transactions = enterprise_pipelines["rsrch"].offline_transactions()

    def compute():
        return {
            miner.__name__: _timed(miner, transactions)
            for miner in (apriori, eclat, fpgrowth)
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header(f"FIM baselines on rsrch transactions (support {SUPPORT})")
    print_row("miner", "pairs", "seconds", "peak MB")
    for name, (itemsets, elapsed, peak) in results.items():
        print_row(name, len(frequent_pairs(itemsets)), elapsed,
                  peak / (1024 * 1024))

    # All three miners agree exactly.
    pair_sets = [
        itemsets_to_pair_counts(frequent_pairs(itemsets))
        for itemsets, _e, _m in results.values()
    ]
    assert pair_sets[0] == pair_sets[1] == pair_sets[2]

    # ... and agree with the exact pair counter.
    truth = {
        pair: count
        for pair, count in exact_pair_counts(transactions).items()
        if count >= SUPPORT
    }
    assert pair_sets[0] == truth


def test_stream_miner_vs_synopsis(benchmark, enterprise_pipelines,
                                  enterprise_ground_truth):
    """estDec+-style decayed mining versus the paper's two-tier synopsis
    under the same memory budget (entry count)."""
    transactions = enterprise_pipelines["wdev"].offline_transactions()
    truth = enterprise_ground_truth["wdev"]
    budget = scaled(4096)

    def compute():
        synopsis = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=budget, correlation_capacity=budget
        ))
        start = time.perf_counter()
        synopsis.process_stream(transactions)
        synopsis_time = time.perf_counter() - start
        synopsis_detected = [p for p, _t in synopsis.frequent_pairs(1)]

        stream = EstDecMiner(EstDecConfig(
            decay=0.9999, insertion_threshold=0.5, max_entries=4 * budget
        ))
        start = time.perf_counter()
        stream.process_stream(transactions)
        stream_time = time.perf_counter() - start
        stream_detected = [
            ExtentPair(*sorted(key)) for key, _c in stream.frequent_pairs(0.5)
        ]
        return (synopsis_detected, synopsis_time,
                stream_detected, stream_time)

    synopsis_detected, synopsis_time, stream_detected, stream_time = (
        benchmark.pedantic(compute, rounds=1, iterations=1)
    )

    synopsis_metrics = detection_metrics(truth, synopsis_detected, SUPPORT)
    stream_metrics = detection_metrics(truth, stream_detected, SUPPORT)

    print_header("Stream FIM (estDec+) vs two-tier synopsis on wdev")
    print_row("method", "wght recall", "recall", "seconds")
    print_row("synopsis", synopsis_metrics.weighted_recall,
              synopsis_metrics.recall, synopsis_time)
    print_row("estDec+", stream_metrics.weighted_recall,
              stream_metrics.recall, stream_time)

    # The synopsis must detect at least as much as the stream baseline at
    # a comparable (actually smaller) entry budget, and stay fast.
    assert synopsis_metrics.weighted_recall >= 0.9
    assert synopsis_metrics.weighted_recall >= (
        stream_metrics.weighted_recall - 0.05
    )
    assert synopsis_time < 10 * max(stream_time, 1e-9)


def test_stream_lattice_depth_cost(benchmark, enterprise_pipelines):
    """The paper's diagnosis of stream FIM: "the focus of stream based FIM
    algorithms to generate frequent itemsets of maximum size rather than
    only pairs" is what makes them too slow.  Sweep the monitored lattice
    depth and measure the per-transaction cost explosion."""
    transactions = enterprise_pipelines["rsrch"].offline_transactions()
    sample = transactions[:scaled(3000)]

    def compute():
        rows = {}
        for depth in (2, 3, 4):
            miner = EstDecMiner(EstDecConfig(
                decay=0.9999, insertion_threshold=0.5,
                max_entries=scaled(65536), max_itemset_size=depth,
            ))
            start = time.perf_counter()
            miner.process_stream(sample)
            elapsed = time.perf_counter() - start
            rows[depth] = (elapsed, len(miner))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Stream FIM cost vs monitored itemset size (rsrch)")
    print_row("max size", "seconds", "entries")
    for depth, (elapsed, entries) in rows.items():
        print_row(depth, elapsed, entries)

    # Cost and state grow with lattice depth -- pairs-only is the cheap
    # point the paper's framework exploits.
    assert rows[4][0] > rows[2][0]
    assert rows[4][1] > rows[2][1]
