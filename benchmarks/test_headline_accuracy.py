"""The paper's headline claim: >90% of data access correlations detected
in real time, using limited memory.

Detection is scored against offline FIM ground truth over the recorded
transactions (the paper's own methodology), on both the synthetic
workloads and the Microsoft-like traces.  "Limited memory" is enforced by
running the synopsis at a capacity well below the unique-pair population.
"""

from repro.analysis.accuracy import detection_metrics
from repro.blkdev.device import SsdDevice
from repro.core.config import AnalyzerConfig
from repro.fim.pairs import exact_pair_counts
from repro.pipeline import run_pipeline

from conftest import print_header, print_row, scaled

SUPPORT = 5


def test_headline_synthetic(benchmark, synthetic_workloads):
    """On the synthetic workloads every planted correlation and >90% of
    all frequent pairs (by weight) must be detected."""

    def compute():
        rows = {}
        for name, (records, truth) in synthetic_workloads.items():
            result = run_pipeline(records, device=SsdDevice(seed=51))
            offline = exact_pair_counts(result.offline_transactions())
            detected = [p for p, _t in result.frequent_pairs(min_support=1)]
            metrics = detection_metrics(offline, detected, min_support=SUPPORT)
            planted_found = sum(
                1 for pair in truth.pairs
                if pair in set(detected)
            )
            rows[name] = (metrics, planted_found, len(truth.pairs))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header(f"Headline: detection vs offline FIM (support {SUPPORT})")
    print_row("workload", "recall", "wght recall", "precision", "planted")
    for name, (metrics, found, total) in rows.items():
        print_row(name, metrics.recall, metrics.weighted_recall,
                  metrics.precision, f"{found}/{total}")

    for name, (metrics, found, total) in rows.items():
        assert found == total, name
        assert metrics.weighted_recall > 0.9, name


def test_headline_enterprise(benchmark, enterprise_traces):
    """On the MSR-like traces, a bounded synopsis (capacity an order of
    magnitude below the unique-pair population) must still capture >90% of
    frequent correlations by weight."""

    def compute():
        rows = {}
        capacity = scaled(4096)
        for name, (records, _truth) in enterprise_traces.items():
            config = AnalyzerConfig(item_capacity=capacity,
                                    correlation_capacity=capacity)
            result = run_pipeline(records, device=SsdDevice(seed=53),
                                  config=config)
            offline = exact_pair_counts(result.offline_transactions())
            detected = [p for p, _t in result.frequent_pairs(min_support=1)]
            metrics = detection_metrics(offline, detected, min_support=SUPPORT)
            rows[name] = (metrics, len(offline), capacity)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header(
        f"Headline: enterprise detection, bounded tables (support {SUPPORT})"
    )
    print_row("workload", "uniq pairs", "capacity C", "recall", "wght recall")
    for name, (metrics, population, capacity) in rows.items():
        print_row(name, population, capacity, metrics.recall,
                  metrics.weighted_recall)

    for name, (metrics, population, capacity) in rows.items():
        # Limited memory: the table is genuinely smaller than the
        # population it summarises.
        assert 2 * capacity < population, name
        assert metrics.weighted_recall > 0.9, name
