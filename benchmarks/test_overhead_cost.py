"""Section IV-C4 -- overhead cost of monitoring and analysis.

Three claims are exercised: the analysis cost is Theta(N^2) per transaction
but bounded by the N=8 transaction cap; memory is controlled by the table
size via the 88C-byte model; and the end-to-end pipeline keeps up with
accelerated replay (the real-time claim).
"""

import time

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.core.extent import Extent
from repro.core.memory_model import SynopsisMemoryModel
from repro.pipeline import run_pipeline

from conftest import print_header, print_row, scaled


def _transactions_of_size(size, count, spacing=1000):
    return [
        [Extent((t * 64 + i) * spacing + 1, 4) for i in range(size)]
        for t in range(count)
    ]


def test_quadratic_transaction_cost(benchmark):
    """Per-transaction work grows quadratically with transaction size --
    which is exactly why the monitor caps transactions at 8 requests."""
    counts = {}
    for size in (2, 4, 8, 16):
        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=scaled(8192), correlation_capacity=scaled(8192)
        ))
        transactions = _transactions_of_size(size, 400)
        start = time.perf_counter()
        analyzer.process_stream(transactions)
        elapsed = time.perf_counter() - start
        counts[size] = (analyzer.report().pairs_seen, elapsed)

    print_header("Overhead: per-transaction pair work vs transaction size")
    print_row("txn size", "pairs seen", "C(N,2)*400", "seconds")
    for size, (pairs, elapsed) in counts.items():
        print_row(size, pairs, 400 * size * (size - 1) // 2, elapsed)

    for size, (pairs, _elapsed) in counts.items():
        assert pairs == 400 * size * (size - 1) // 2

    # Benchmark the paper's configuration: capped size-8 transactions.
    analyzer = OnlineAnalyzer(AnalyzerConfig(
        item_capacity=scaled(8192), correlation_capacity=scaled(8192)
    ))
    transactions = _transactions_of_size(8, 400)
    benchmark.pedantic(
        analyzer.process_stream, args=(transactions,), rounds=3, iterations=1
    )


def test_memory_model_table(benchmark):
    """Regenerate the paper's synopsis memory figures (Section IV-C1)."""

    def compute():
        return {
            capacity: SynopsisMemoryModel(capacity)
            for capacity in (16 * 1024, 128 * 1024, 1024 * 1024, 4 * 1024 * 1024)
        }

    models = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Overhead: synopsis memory model (88C bytes)")
    print_row("capacity C", "item table", "corr table", "total MB")
    for capacity, model in models.items():
        print_row(capacity, model.item_table_bytes,
                  model.correlation_table_bytes, model.total_megabytes)

    assert abs(models[16 * 1024].total_megabytes - 1.44) < 0.07
    assert abs(models[4 * 1024 * 1024].total_megabytes - 369) < 18


def test_realtime_throughput(benchmark, enterprise_traces):
    """The online pipeline must process events faster than the accelerated
    replay produces them -- the operational meaning of 'real time'.

    The wdev trace replays at the paper's 76x speedup; the wall-clock time
    the Python pipeline spends must stay below the trace's virtual
    duration (i.e. the analysis keeps up with the replayed device)."""
    records, _truth = enterprise_traces["wdev"]

    def run():
        start = time.perf_counter()
        result = run_pipeline(records, speedup=76.0, record_offline=False,
                              collect_events=False)
        wall = time.perf_counter() - start
        return wall, result

    wall, result = benchmark.pedantic(run, rounds=1, iterations=1)

    virtual_duration = result.replay.wall_time
    events_per_second = result.monitor_stats.events_seen / wall
    print_header("Overhead: real-time throughput (wdev at 76x speedup)")
    print_row("events", "wall s", "virtual s", "events/s")
    print_row(result.monitor_stats.events_seen, wall, virtual_duration,
              int(events_per_second))

    # Python is slow, but it must still beat the *unaccelerated* trace
    # clock comfortably; native code (the paper's C implementation) has
    # three orders of magnitude of headroom on top.
    assert events_per_second > 10_000
