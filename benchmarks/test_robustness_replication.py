"""Robustness of the headline results to seeds and scale.

Every other bench runs one seed at one scale.  This one replicates the
headline detection metric across seeds (confidence interval) and across
trace lengths, showing the >90 % claim is a property of the system rather
than of a particular random stream or trace size.
"""

from repro.analysis.accuracy import detection_metrics
from repro.analysis.replicate import replicate
from repro.blkdev.device import SsdDevice
from repro.core.config import AnalyzerConfig
from repro.fim.pairs import exact_pair_counts
from repro.pipeline import run_pipeline
from repro.workloads.enterprise import generate_named

from conftest import print_header, print_row, scaled

SUPPORT = 5


def _weighted_recall(workload: str, requests: int, seed: int,
                     capacity: int) -> float:
    records, _truth = generate_named(workload, requests=requests, seed=seed)
    config = AnalyzerConfig(item_capacity=capacity,
                            correlation_capacity=capacity)
    result = run_pipeline(records, device=SsdDevice(seed=seed + 100),
                          config=config)
    truth = exact_pair_counts(result.offline_transactions())
    detected = [p for p, _t in result.frequent_pairs(min_support=1)]
    return detection_metrics(truth, detected, SUPPORT).weighted_recall


def test_seed_replication(benchmark):
    """Weighted recall across five seeds on wdev, bounded tables."""
    requests = scaled(8000)
    capacity = scaled(2048)

    def compute():
        return replicate(
            lambda seed: _weighted_recall("wdev", requests, seed, capacity),
            seeds=[1, 2, 3, 4, 5],
        )

    replication = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Robustness: weighted recall across seeds (wdev)")
    print_row("runs", "mean", "95% CI low", "95% CI high")
    print_row(replication.runs, replication.mean,
              replication.ci_low, replication.ci_high)

    # The >90 % headline holds for every replicated seed, not just a mean.
    assert min(replication.values) > 0.9
    assert replication.ci_low > 0.85


def test_scale_sensitivity(benchmark):
    """Detection does not depend on trace length: the same capacity-to-
    population regime yields the same recall band at 1x, 2x, 4x length."""

    def compute():
        rows = {}
        base = scaled(5000)
        for factor in (1, 2, 4):
            requests = base * factor
            capacity = scaled(1024) * factor  # hold the regime constant
            rows[factor] = _weighted_recall("rsrch", requests, 3, capacity)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Robustness: weighted recall vs trace length (rsrch)")
    print_row("length factor", "weighted recall")
    for factor, recall in rows.items():
        print_row(f"{factor}x", recall, widths=(14, 16))

    for factor, recall in rows.items():
        assert recall > 0.9, f"{factor}x"
    # No systematic degradation with scale.
    assert abs(rows[4] - rows[1]) < 0.08
