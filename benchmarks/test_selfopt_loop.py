"""The closed self-optimization loop (Fig. 3's third module, end to end).

A mixed read/write workload streams through replay -> monitor ->
self-optimizing controller.  The controller's typed synopsis learns which
extents are write-correlated (death-time groups) and which are
read-correlated, refreshing its stream-assignment and placement policies
on the fly.  We then score the *learned* policies on the same workload
against the static baselines -- measuring what the whole pipeline, not a
hand-fed analyzer, achieved.
"""

import random

from repro.blkdev.device import SsdDevice
from repro.blkdev.replay import replay_timed
from repro.core.extent import Extent
from repro.monitor.monitor import Monitor
from repro.optimize.multistream import (
    FlashConfig,
    MultiStreamSsd,
    SingleStreamAssigner,
)
from repro.optimize.openchannel import (
    OcssdConfig,
    ParallelIoStats,
    StripingPlacement,
    service_transaction,
)
from repro.optimize.selfopt import SelfOptimizingController
from repro.trace.record import OpType, TraceRecord

from conftest import print_header, print_row, scaled

ROUNDS = scaled(300)


def _mixed_workload(seed=5):
    """Write-correlated groups + read-correlated groups, timestamped."""
    rng = random.Random(seed)
    records = []
    clock = 0.0
    write_groups = [
        (Extent(g * 1_000_000, 32), Extent(g * 1_000_000 + 500_000, 32))
        for g in range(4)
    ]
    read_groups = [
        [Extent(50_000_000 + g * 64 * 4096 + m * 64, 8) for m in range(4)]
        for g in range(6)
    ]
    for round_index in range(ROUNDS):
        if round_index % 2 == 0:
            first, second = write_groups[rng.randrange(4)]
            records.append(TraceRecord(clock, 1, OpType.WRITE,
                                       first.start, first.length))
            records.append(TraceRecord(clock + 2e-5, 1, OpType.WRITE,
                                       second.start, second.length))
        else:
            for offset, member in enumerate(read_groups[rng.randrange(6)]):
                records.append(TraceRecord(clock + offset * 1e-5, 1,
                                           OpType.READ,
                                           member.start, member.length))
        clock += 0.02
    return records, write_groups, read_groups


def _run_loop():
    records, write_groups, read_groups = _mixed_workload()
    controller = SelfOptimizingController(
        flash_config=FlashConfig(erase_units=32, pages_per_eu=16,
                                 streams=8, overprovision_eus=6),
        ocssd_config=OcssdConfig(parallel_units=4, stripe_blocks=4096),
        refresh_interval=50,
        min_support=3,
    )
    monitor = Monitor(sinks=[controller.on_transaction])
    replay_timed(records, SsdDevice(seed=71),
                 listeners=[monitor.on_event], collect=False)
    monitor.flush()
    controller.refresh()

    # Score the learned write policy: WAF on the write groups.
    write_transactions = [
        [first, second] for first, second in write_groups
    ] * (ROUNDS // 4)
    learned_flash = MultiStreamSsd(controller.flash_config)
    baseline_flash = MultiStreamSsd(controller.flash_config)
    single = SingleStreamAssigner()
    for extents in write_transactions:
        for extent in extents:
            learned_flash.write_extent(
                extent, controller.assign_stream(extent), page_blocks=8
            )
            baseline_flash.write_extent(extent, single.assign(extent),
                                        page_blocks=8)

    # Score the learned read placement: parallel latency on read groups.
    config = controller.ocssd_config
    striping = StripingPlacement(config)
    learned_reads = ParallelIoStats()
    baseline_reads = ParallelIoStats()
    for group in read_groups:
        for stats, placement in (
            (learned_reads, None), (baseline_reads, striping)
        ):
            if placement is None:
                class _Controller:
                    def unit_of(self, extent, _c=controller):
                        return _c.place(extent)
                placement = _Controller()
            latency = service_transaction(group, placement, config)
            stats.transactions += 1
            stats.total_latency += latency
            stats.serialized_latency += len(group) * config.read_latency

    return controller, learned_reads, baseline_reads


def test_selfopt_loop_report(benchmark):
    controller, learned_reads, baseline_reads = benchmark.pedantic(
        _run_loop, rounds=1, iterations=1
    )

    print_header("Self-optimizing loop: learned policies vs baselines")
    print_row("metric", "learned", "baseline")
    print_row("read mean us", learned_reads.mean_latency * 1e6,
              baseline_reads.mean_latency * 1e6)
    print_row("refreshes", controller.stats.refreshes, "")
    print_row("write pairs", controller.stats.write_pairs_last_refresh, "")
    print_row("read pairs", controller.stats.read_pairs_last_refresh, "")

    # The loop actually closed: policies were refreshed from live data.
    assert controller.stats.refreshes >= 2
    assert controller.is_optimizing
    assert controller.stats.write_pairs_last_refresh >= 3
    assert controller.stats.read_pairs_last_refresh >= 3
    # Learned read placement beats collision-prone striping.
    assert learned_reads.mean_latency < baseline_reads.mean_latency
    # Learned write policy groups death-time partners on one stream.
    sample_first, sample_second = (
        Extent(0, 32), Extent(500_000, 32)
    )
    assert controller.assign_stream(sample_first) == (
        controller.assign_stream(sample_second)
    )
