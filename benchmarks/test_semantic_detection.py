"""Semantic correlations (paper §II-A's examples) detected end to end.

The paper's canonical inter-request correlations are structural: "an inode
block and its associated data blocks", and "blocks for a web server
request being correlated with the blocks of a database table".  These
benches generate workloads where such correlations arise from a simulated
filesystem/application layout (not planted pairs) and check the framework
recovers them -- plus the *time-to-detection* measurement that backs the
real-time claim: the synopsis knows the hot correlations after a small
fraction of the stream, while offline analysis by construction knows
nothing until the trace ends.
"""

from repro.analysis.timeline import measure_detection_latency
from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.monitor.monitor import Monitor, TransactionRecorder
from repro.pipeline import run_pipeline
from repro.workloads.semantic import (
    FileServerSpec,
    WebsiteSpec,
    generate_fileserver,
    generate_website,
)

from conftest import print_header, print_row, scaled


def test_semantic_detection_report(benchmark):
    def compute():
        fs_spec = FileServerSpec(files=12, requests=scaled(600), seed=9)
        fs_records, fs_truth, fs_layout = generate_fileserver(fs_spec)
        fs_result = run_pipeline(fs_records, record_offline=False)
        fs_detected = {p for p, _t in fs_result.frequent_pairs(min_support=5)}
        hot_files = fs_layout.files[:4]  # Zipf head
        inode_hits = sum(
            1 for file_object in hot_files
            if set(file_object.semantic_pairs()) & fs_detected
        )

        web_spec = WebsiteSpec(pages=6, tables=3, requests=scaled(400),
                               seed=13)
        web_records, web_truth, _layout = generate_website(web_spec)
        web_result = run_pipeline(web_records, record_offline=False)
        web_detected = {
            p for p, _t in web_result.frequent_pairs(min_support=5)
        }
        cross = set(web_truth.web_db_pairs) & web_detected
        return inode_hits, len(hot_files), len(cross), len(web_detected)

    inode_hits, hot_files, cross, web_total = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    print_header("Semantic correlations (paper II-A examples)")
    print_row("scenario", "expected", "found")
    print_row("inode<->data (hot files)", hot_files, inode_hits)
    print_row("web<->database", ">0", cross)

    # Every hot file's inode/data correlation is detected.
    assert inode_hits == hot_files
    # The cross-layer web/db correlation is visible at the block layer.
    assert cross > 0


def test_time_to_detection(benchmark):
    """The real-time payoff: hot semantic correlations are known after a
    small fraction of the stream.  Offline analysis sits at 1.0 by
    definition (it needs the complete trace first)."""

    def compute():
        spec = FileServerSpec(files=12, requests=scaled(600), seed=9)
        records, _truth, layout = generate_fileserver(spec)
        # Re-monitor to get the transaction stream.
        recorder = TransactionRecorder()
        monitor = Monitor(sinks=[recorder])
        from repro.blkdev.device import SsdDevice
        from repro.blkdev.replay import replay_timed
        replay_timed(records, SsdDevice(seed=77),
                     listeners=[monitor.on_event], collect=False)
        monitor.flush()
        transactions = recorder.extent_transactions()

        hottest = layout.files[0]
        watched = hottest.semantic_pairs()
        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=4096, correlation_capacity=4096
        ))
        return measure_detection_latency(
            transactions, watched, analyzer, min_support=5
        )

    timeline = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Time to detection (hottest file's semantic pairs)")
    print_row("watched", "detected", "mean stream pos", "offline pos")
    print_row(len(timeline.detections), len(timeline.detected()),
              timeline.mean_stream_fraction(), 1.0)

    assert timeline.detection_ratio > 0.9
    # Detection happens in the first fifth of the stream for the hottest
    # file -- the quantified version of "timely reaction".
    assert timeline.mean_stream_fraction() < 0.2
