"""Serving-layer throughput: events/second through the socket.

The engine benchmark (``test_engine_throughput.py``) measures in-process
ingest; this one adds the network boundary the serving layer introduces:
framing, per-connection bounded queues, and the drainer tasks.  It
streams the same pre-generated event stream through
``CharacterizationServer`` over a Unix socket for several client counts
and records events/second plus client-observed p99 per-frame latency in
``BENCH_server_throughput.json`` (uploaded as a CI artifact by the
bench-smoke job).

The acceptance claims: every accepted event reaches the engine (the
server's ingested counter equals the events sent), and socket ingest
sustains a usable rate.
"""

import json
import pathlib
import statistics
import threading
import time

from repro.blkdev.device import SsdDevice
from repro.blkdev.replay import replay_timed
from repro.core.config import AnalyzerConfig
from repro.server.client import BatchingWriter, CharacterizationClient
from repro.server.server import CharacterizationServer, ServerThread
from repro.service import CharacterizationService
from repro.telemetry import histogram_quantile
from repro.telemetry.export import snapshot, snapshot_value
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracelog import TraceLog, install_tracelog
from repro.workloads.enterprise import generate_named

from conftest import print_header, print_row, scaled

RESULTS_PATH = pathlib.Path("BENCH_server_throughput.json")

#: Floored so even smoke-scale runs push enough frames to measure.
EVENT_COUNT = max(10_000, scaled(20_000))
CLIENT_COUNTS = (1, 2, 4)
BATCH_SIZE = 1000
CONFIG = AnalyzerConfig(item_capacity=4096, correlation_capacity=4096)


def _event_stream():
    records, _truth = generate_named("rsrch", requests=EVENT_COUNT, seed=5)
    events = []
    replay_timed(records, SsdDevice(seed=3),
                 listeners=[events.append], collect=False)
    return events


def _service(registry):
    return CharacterizationService(
        config=CONFIG, min_support=5, snapshot_interval=10**9,
        registry=registry,
    )


def _run(events, clients, sock_path):
    """Stream ``events`` through ``clients`` concurrent connections.

    Each client takes a contiguous slice of the stream and its own
    tenant, so per-tenant monitors see monotonic timestamps and the
    engines never contend on one transaction window.  Returns
    ``(events_per_second, p99_frame_latency_seconds, ingested, snap)``
    where ``snap`` is the run's final registry snapshot.
    """
    registry = MetricsRegistry()
    server = CharacterizationServer(
        _service(registry),
        unix_path=sock_path,
        service_factory=lambda: _service(registry),
        registry=registry,
    )
    share = (len(events) + clients - 1) // clients
    slices = [events[i * share:(i + 1) * share] for i in range(clients)]
    latencies = []
    errors = []
    lock = threading.Lock()

    def produce(index, chunk):
        mine = []
        try:
            tenant = f"c{index}" if clients > 1 else None
            with CharacterizationClient(str(sock_path),
                                        tenant=tenant) as client:
                for offset in range(0, len(chunk), BATCH_SIZE):
                    batch = chunk[offset:offset + BATCH_SIZE]
                    started = time.perf_counter()
                    client.send_events(batch)
                    mine.append(time.perf_counter() - started)
                client.stats()  # drain this connection before the clock stops
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        with lock:
            latencies.extend(mine)

    with ServerThread(server):
        threads = [threading.Thread(target=produce, args=(i, chunk))
                   for i, chunk in enumerate(slices)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        snap = snapshot(registry)
        ingested = snapshot_value(snap,
                                  "repro_server_ingested_events_total")
    assert errors == [], errors
    ordered = sorted(latencies)
    p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
    return len(events) / elapsed, p99, int(ingested), snap


def _stage_latency_from(snap):
    """p50/p99 per serving stage, read straight from the run's registry:
    frame dispatch wall time by frame type (what a ``/metrics`` scrape of
    ``repro_server_frame_latency_seconds`` yields) plus the engine
    pipeline stages behind the drainer."""
    stages = {}
    for family_name, label_key, prefix in (
        ("repro_server_frame_latency_seconds", "type", "frame"),
        ("repro_stage_duration_seconds", "stage", "stage"),
    ):
        family = snap["metrics"].get(family_name, {"samples": []})
        for sample in family["samples"]:
            if sample["count"] == 0:
                continue
            buckets = sorted(
                (float("inf") if bound == "+Inf" else float(bound), count)
                for bound, count in sample["buckets"].items()
            )
            stages[f"{prefix}.{sample['labels'][label_key]}"] = {
                "count": sample["count"],
                "p50_us": round(1e6 * histogram_quantile(buckets, 0.5), 1),
                "p99_us": round(1e6 * histogram_quantile(buckets, 0.99), 1),
            }
    return stages


def test_server_throughput(benchmark, tmp_path):
    events = _event_stream()

    print_header("Serving-layer ingest throughput over a Unix socket "
                 f"({len(events)} events, batches of {BATCH_SIZE})")
    print_row("clients", "events/s", "p99 frame ms", widths=(10, 14, 14))
    per_clients = {}
    stage_latency = {}
    for clients in CLIENT_COUNTS:
        sock = tmp_path / f"bench-{clients}.sock"
        rate, p99, ingested, snap = _run(events, clients, sock)
        if clients == 1:
            stage_latency = _stage_latency_from(snap)
        # The no-loss contract: every acknowledged event reached the
        # engine before its connection's final STATS returned.
        assert ingested == len(events), (
            f"{clients} clients: ingested {ingested} != sent {len(events)}"
        )
        per_clients[clients] = {
            "events_per_second": round(rate, 1),
            "p99_frame_latency_ms": round(1000 * p99, 3),
        }
        print_row(clients, int(rate), round(1000 * p99, 2),
                  widths=(10, 14, 14))

    rates = [entry["events_per_second"] for entry in per_clients.values()]
    # Conservative floor: the socket path must stay in the same league as
    # live block-I/O arrival rates (the paper's traces peak around 1k
    # requests/second), far under the in-process engine rate.
    assert min(rates) > 2_000, f"socket ingest too slow: {per_clients}"

    results = {
        "events": len(events),
        "batch_size": BATCH_SIZE,
        "clients": {str(count): entry
                    for count, entry in per_clients.items()},
        "stage_latency": stage_latency,
    }
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    for stage, quantiles in sorted(stage_latency.items()):
        print(f"stage {stage}: p50 {quantiles['p50_us']}us "
              f"p99 {quantiles['p99_us']}us (n={quantiles['count']})")
    print(f"wrote {RESULTS_PATH}")

    # Canonical benchmark record: single client, whole stream, batched
    # through the writer.
    def canonical():
        sock = tmp_path / "bench-canonical.sock"
        registry = MetricsRegistry()
        server = CharacterizationServer(_service(registry),
                                        unix_path=sock, registry=registry)
        with ServerThread(server):
            with CharacterizationClient(str(sock)) as client:
                with BatchingWriter(client, max_batch=BATCH_SIZE) as writer:
                    writer.add_many(events)
                client.stats()

    benchmark.pedantic(canonical, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# Trace propagation overhead
# ---------------------------------------------------------------------------

#: The tracing plane shares the observability budget: at most 5% of the
#: untraced socket ingest rate, estimated as the minimum per-round
#: overhead across paired rounds (clamped at zero).
TRACE_OVERHEAD_CEILING = 0.05
TRACE_ROUNDS = 3


def _run_single_client(events, sock_path, tracelog=None):
    """Single-client batched ingest; with ``tracelog`` installed every
    request mints a client span, carries its context in the frame, and
    reopens it server-side.  Returns events/second."""
    registry = MetricsRegistry()
    server = CharacterizationServer(_service(registry), unix_path=sock_path,
                                    registry=registry)
    previous = install_tracelog(tracelog)
    try:
        with ServerThread(server):
            with CharacterizationClient(str(sock_path)) as client:
                started = time.perf_counter()
                for offset in range(0, len(events), BATCH_SIZE):
                    client.send_events(events[offset:offset + BATCH_SIZE])
                client.stats()  # drain before the clock stops
                elapsed = time.perf_counter() - started
    finally:
        install_tracelog(previous)
    return len(events) / elapsed


def test_trace_propagation_overhead(tmp_path):
    """What end-to-end tracing costs on the socket hot path.

    The traced runs install a process-wide sink at 0% sampling with a
    high slow-exemplar threshold, so the measurement isolates the pure
    propagation machinery -- span minting, context serialization into
    every frame, server-side span reopening -- from NDJSON I/O, which
    only sampled traces pay.  Rounds are paired adjacent-in-time and the
    estimate is the minimum per-round overhead, clamped at zero.
    """
    events = _event_stream()
    tracelog = TraceLog(str(tmp_path / "bench-trace.ndjson"),
                        sample_rate=0.0, slow_threshold=60.0)
    plain, traced = [], []
    for attempt in range(TRACE_ROUNDS):
        plain.append(_run_single_client(
            events, tmp_path / f"plain-{attempt}.sock"))
        traced.append(_run_single_client(
            events, tmp_path / f"traced-{attempt}.sock", tracelog))
    overhead = max(0.0, min(
        1.0 - with_trace / without
        for with_trace, without in zip(traced, plain)
    ))

    print_header(f"Trace propagation overhead ({len(events)} events, "
                 f"batches of {BATCH_SIZE}, min of {TRACE_ROUNDS} "
                 "paired rounds)")
    print_row("mode", "events/s", widths=(10, 14))
    print_row("plain", int(max(plain)), widths=(10, 14))
    print_row("traced", int(max(traced)), widths=(10, 14))
    print(f"trace propagation overhead: {100 * overhead:.2f}%")

    assert overhead <= TRACE_OVERHEAD_CEILING, (
        f"trace propagation costs {100 * overhead:.2f}% of socket ingest "
        f"(budget {100 * TRACE_OVERHEAD_CEILING:.0f}%): "
        f"traced {traced}, plain {plain}"
    )

    merged = {}
    if RESULTS_PATH.exists():
        merged = json.loads(RESULTS_PATH.read_text())
    merged["tracing"] = {
        "plain_events_per_second": round(max(plain), 1),
        "traced_events_per_second": round(max(traced), 1),
        "trace_propagation_overhead_percent": round(100 * overhead, 2),
        "overhead_ceiling": TRACE_OVERHEAD_CEILING,
    }
    RESULTS_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True))
    print(f"wrote {RESULTS_PATH} (tracing section)")


# ---------------------------------------------------------------------------
# Write-ahead journal overhead
# ---------------------------------------------------------------------------

#: Journal durability modes benchmarked against the no-journal baseline.
WAL_MODES = ("off", "never", "interval", "always")
#: The durability tax the interval policy (the shipping default) is
#: allowed to cost against journal-off ingest.
WAL_INTERVAL_OVERHEAD_CEILING = 0.15
WAL_ROUNDS = 3


def _run_wal_mode(events, sock_path, wal_dir, mode):
    """Single-client batched ingest with one journal mode; returns
    events/second (the connection is drained before the clock stops)."""
    registry = MetricsRegistry()
    wal_kwargs = {} if mode == "off" else {
        "wal_dir": wal_dir, "fsync": mode,
    }
    server = CharacterizationServer(
        _service(registry), unix_path=sock_path, registry=registry,
        **wal_kwargs,
    )
    with ServerThread(server):
        with CharacterizationClient(str(sock_path)) as client:
            started = time.perf_counter()
            for offset in range(0, len(events), BATCH_SIZE):
                client.send_events(events[offset:offset + BATCH_SIZE])
            client.stats()  # drain before the clock stops
            elapsed = time.perf_counter() - started
        if server.wal is not None:
            assert server.wal.last_seq == \
                (len(events) + BATCH_SIZE - 1) // BATCH_SIZE
    return len(events) / elapsed


def test_wal_overhead(tmp_path):
    """What durability costs: journal off vs each fsync policy.

    Policy ``interval`` is the shipping default, so it carries the
    acceptance bound: at most ``WAL_INTERVAL_OVERHEAD_CEILING`` of the
    journal-off ingest rate.  ``always`` pays one fsync per frame and is
    reported unconstrained (it buys machine-crash durability; the trade
    is the operator's to make).  Best-of-``WAL_ROUNDS`` per mode damps
    scheduler noise.
    """
    events = _event_stream()
    print_header(f"Write-ahead journal overhead ({len(events)} events, "
                 f"batches of {BATCH_SIZE}, best of {WAL_ROUNDS})")
    print_row("fsync mode", "events/s", "overhead %", widths=(12, 14, 14))

    rates = {}
    for mode in WAL_MODES:
        best = 0.0
        for attempt in range(WAL_ROUNDS):
            sock = tmp_path / f"wal-{mode}-{attempt}.sock"
            wal_dir = tmp_path / f"wal-{mode}-{attempt}"
            best = max(best, _run_wal_mode(events, sock, wal_dir, mode))
        rates[mode] = best

    baseline = rates["off"]
    overheads = {
        mode: max(0.0, 1.0 - rates[mode] / baseline)
        for mode in WAL_MODES
    }
    for mode in WAL_MODES:
        print_row(mode, int(rates[mode]),
                  round(100 * overheads[mode], 1), widths=(12, 14, 14))

    assert overheads["interval"] <= WAL_INTERVAL_OVERHEAD_CEILING, (
        f"interval-fsync journal costs {100 * overheads['interval']:.1f}% "
        f"of ingest (budget {100 * WAL_INTERVAL_OVERHEAD_CEILING:.0f}%): "
        f"{rates}"
    )
    # Sanity ordering: relaxing durability must never cost throughput
    # beyond noise (never <= interval <= always overhead, loosely).
    assert overheads["never"] <= overheads["always"] + 0.10

    merged = {}
    if RESULTS_PATH.exists():
        merged = json.loads(RESULTS_PATH.read_text())
    merged["wal"] = {
        "baseline_events_per_second": round(baseline, 1),
        "modes": {
            mode: {
                "events_per_second": round(rates[mode], 1),
                "overhead_fraction": round(overheads[mode], 4),
            }
            for mode in WAL_MODES if mode != "off"
        },
        "interval_overhead_ceiling": WAL_INTERVAL_OVERHEAD_CEILING,
    }
    RESULTS_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True))
    print(f"wrote {RESULTS_PATH} (wal section)")
