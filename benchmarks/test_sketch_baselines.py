"""Frequency sketches vs the two-tier synopsis.

Space-Saving and Count-Min are the canonical bounded-memory frequent-item
structures.  Two comparisons locate the paper's design against them:

1. **Capture** -- at equal entry budgets, how much true pair frequency does
   each structure's summary hold?  Pure-frequency sketches are excellent
   here (it is their guarantee).
2. **Adaptation** -- replay concept A then concept B (the Fig. 10 regime).
   Space-Saving's counters preserve A's accumulated frequencies forever,
   so B's pairs must climb over A's stale counts; the two-tier synopsis
   forgets via LRU and adapts immediately.  This isolates *why* the paper
   adds recency to a frequency structure.
"""

from repro.analysis.accuracy import detection_metrics
from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.core.extent import Extent, ExtentPair, unique_pairs
from repro.fim.sketch import SpaceSaving

from conftest import print_header, print_row, scaled


def test_capture_comparison(benchmark, enterprise_pipelines,
                            enterprise_ground_truth):
    transactions = enterprise_pipelines["hm"].offline_transactions()
    truth = enterprise_ground_truth["hm"]
    capacity = scaled(1024)

    def compute():
        synopsis = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=capacity, correlation_capacity=capacity
        ))
        synopsis.process_stream(transactions)

        sketch = SpaceSaving(2 * capacity)  # same resident entries (2C)
        for extents in transactions:
            for pair in unique_pairs(extents):
                sketch.update(pair)
        return (
            list(synopsis.pair_frequencies()),
            [key for key, _c in sketch.frequent()],
        )

    synopsis_pairs, sketch_pairs = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    synopsis_metrics = detection_metrics(truth, synopsis_pairs, 5)
    sketch_metrics = detection_metrics(truth, sketch_pairs, 5)

    print_header("Sketches: capture at equal entry budget (hm)")
    print_row("structure", "wght recall", "recall")
    print_row("two-tier", synopsis_metrics.weighted_recall,
              synopsis_metrics.recall)
    print_row("space-saving", sketch_metrics.weighted_recall,
              sketch_metrics.recall)

    # Both capture most of the frequent mass on a stationary stream; the
    # one-off tail churns Space-Saving's counters (every new pair takes
    # over the minimum), so the two-tier structure -- whose T1 absorbs the
    # tail -- comes out ahead.
    assert synopsis_metrics.weighted_recall > 0.9
    assert sketch_metrics.weighted_recall > 0.8
    assert synopsis_metrics.weighted_recall >= sketch_metrics.weighted_recall


def test_forgetting_comparison(benchmark):
    """Concept A floods, then concept B runs, with room for both: the
    frequency-only sketch ranks stale A on top forever (its counters never
    decay), while LRU recency lets the synopsis replace half its ranking
    with B within 200 transactions -- the Fig. 10 'forgetting' property."""

    def concept(base, rounds):
        return [
            [Extent(base + (i % 8) * 100, 8),
             Extent(base + (i % 8) * 100 + 50, 8)]
            for i in range(rounds)
        ]

    def compute():
        rounds_a = scaled(800)
        rounds_b = scaled(200)
        stream = concept(0, rounds_a) + concept(10_000_000, rounds_b)
        concept_a = {ExtentPair(t[0], t[1]) for t in concept(0, 8)}

        capacity = 8  # 16 resident entries: both 8-pair concepts fit
        synopsis = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=capacity, correlation_capacity=capacity
        ))
        sketch = SpaceSaving(2 * capacity)
        for extents in stream:
            synopsis.process(extents)
            for pair in unique_pairs(extents):
                sketch.update(pair)

        def stale_fraction(top):
            if not top:
                return 0.0
            return sum(1 for key in top if key in concept_a) / len(top)

        synopsis_top = [p for p, _t in synopsis.frequent_pairs(1)[:8]]
        sketch_top = [k for k, _c in sketch.frequent()[:8]]
        return stale_fraction(synopsis_top), stale_fraction(sketch_top)

    synopsis_stale, sketch_stale = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    print_header("Sketches: stale concept in top-8 after the switch")
    print_row("structure", "stale fraction")
    print_row("two-tier", synopsis_stale, widths=(14, 16))
    print_row("space-saving", sketch_stale, widths=(14, 16))

    # The sketch's ranking is still the old concept; the synopsis has
    # substantially moved on.
    assert sketch_stale >= 0.9
    assert synopsis_stale <= sketch_stale - 0.3
