"""Table I -- workload statistics of the (modelled) Microsoft traces.

The paper reports, per workload: total data accessed, unique data accessed,
and the percentage of requests with interarrival time below 100 us.  Our
traces are scaled in length, so the absolute GB differ; the *shape*
quantities -- the total/unique ratio and the interarrival percentage --
are asserted against the paper's values.
"""

import pytest

from repro.trace.stats import compute_stats
from repro.workloads.enterprise import PROFILES

from conftest import print_header, print_row

#: Paper Table I: (total GB, unique GB, fast-interarrival %).
PAPER_TABLE1 = {
    "wdev": (11.3, 0.53, 78.4),
    "src2": (109.9, 26.4, 71.2),
    "rsrch": (13.1, 0.97, 77.4),
    "stg": (107.9, 83.9, 65.9),
    "hm": (39.2, 2.42, 67.0),
}


def test_table1_report(benchmark, enterprise_traces):
    """Regenerate Table I (scaled) and assert its shape against the paper."""

    def compute_all():
        return {
            name: compute_stats(records)
            for name, (records, _truth) in enterprise_traces.items()
        }

    all_stats = benchmark.pedantic(compute_all, rounds=1, iterations=1)

    print_header("Table I: workload statistics (scaled traces)")
    print_row("workload", "total GB", "unique GB", "tot/uniq", "<100us %")
    print_row("", "", "", "(paper)", "(paper)")
    for name, stats in all_stats.items():
        paper_total, paper_unique, paper_fast = PAPER_TABLE1[name]
        ratio = stats.total_bytes / stats.unique_bytes
        print_row(
            name,
            stats.total_gb,
            stats.unique_gb,
            f"{ratio:.1f} ({paper_total / paper_unique:.1f})",
            f"{stats.fast_interarrival_percent:.1f} ({paper_fast})",
        )

    for name, stats in all_stats.items():
        paper_total, paper_unique, paper_fast = PAPER_TABLE1[name]
        # Total/unique ratio within ~2x of the paper's -- the property
        # separating reuse-heavy wdev (21x) from write-once stg (1.3x).
        paper_ratio = paper_total / paper_unique
        ratio = stats.total_bytes / stats.unique_bytes
        assert paper_ratio / 2.2 < ratio < paper_ratio * 2.2, name
        # Burstiness within 12 points of Table I.
        assert abs(stats.fast_interarrival_percent - paper_fast) < 12.0, name

    # Cross-workload orderings the paper's analysis leans on.
    ratios = {
        name: stats.total_bytes / stats.unique_bytes
        for name, stats in all_stats.items()
    }
    assert ratios["wdev"] > ratios["src2"] > ratios["stg"]
    assert ratios["hm"] > ratios["stg"]
    fast = {n: s.fast_interarrival_fraction for n, s in all_stats.items()}
    assert fast["wdev"] > fast["stg"]


def test_benchmark_stats_throughput(benchmark, enterprise_traces):
    """Throughput of Table I statistics over the wdev trace."""
    records, _truth = enterprise_traces["wdev"]
    benchmark.pedantic(compute_stats, args=(records,), rounds=3, iterations=1)
