"""Table II -- replay speedup of the Microsoft traces.

Methodology per the paper: take the mean latency *recorded in the trace*
(an HDD-era enterprise array), replay the trace on the test SSD ten times
as synchronous no-stall requests, average the measured *read* latency, and
divide.  The paper's speedups span 61.2x (src2) to 473x (stg).
"""

import pytest

from repro.blkdev.device import SsdDevice
from repro.blkdev.replay import replay_no_stall, replay_speedup
from repro.trace.stats import compute_stats

from conftest import print_header, print_row, scaled

#: Paper Table II: (mean trace latency s, mean measured us, speedup).
PAPER_TABLE2 = {
    "wdev": (3.65e-3, 48.00e-6, 76.0),
    "src2": (3.88e-3, 63.35e-6, 61.2),
    "rsrch": (3.02e-3, 31.79e-6, 94.9),
    "stg": (18.94e-3, 40.06e-6, 473.0),
    "hm": (13.86e-3, 63.84e-6, 217.0),
}

REPLAY_REPEATS = 10


def _measure_all(enterprise_traces):
    out = {}
    sample_size = scaled(4000)
    for name, (records, _truth) in enterprise_traces.items():
        trace_latency = compute_stats(records).mean_latency
        device = SsdDevice(seed=23)
        sample = records[:sample_size]
        total = 0.0
        reads = 0
        for _ in range(REPLAY_REPEATS):
            result = replay_no_stall(sample, device, collect=True)
            read_latencies = [
                e.latency for e in result.events if e.op.value == "R"
            ]
            total += sum(read_latencies)
            reads += len(read_latencies)
        measured = total / reads
        out[name] = (
            trace_latency, measured, replay_speedup(trace_latency, measured)
        )
    return out


def test_table2_report(benchmark, enterprise_traces):
    speedups = benchmark.pedantic(
        _measure_all, args=(enterprise_traces,), rounds=1, iterations=1
    )

    print_header("Table II: replay speedup (trace HDD latency / SSD latency)")
    print_row("workload", "trace ms", "measured us", "speedup", "(paper)")
    for name, (trace_latency, measured, speedup) in speedups.items():
        print_row(
            name,
            trace_latency * 1e3,
            measured * 1e6,
            f"{speedup:.1f}x",
            f"{PAPER_TABLE2[name][2]:.1f}x",
        )

    for name, (trace_latency, measured, _speedup) in speedups.items():
        # Recorded (HDD) mean latency is calibrated to Table II.
        assert trace_latency == pytest.approx(PAPER_TABLE2[name][0],
                                              rel=0.3), name
        # SSD measurement lands in Table II's 31.8-63.8 us band (widened).
        assert 15e-6 < measured < 150e-6, name

    # Shape: stg and hm (slowest recorded arrays) accelerate the most, and
    # every workload accelerates by well over an order of magnitude.
    values = {name: s for name, (_t, _m, s) in speedups.items()}
    assert values["stg"] == max(values.values())
    assert values["hm"] > values["wdev"]
    assert all(s > 30 for s in values.values())


def test_benchmark_no_stall_replay(benchmark, enterprise_traces):
    """Raw no-stall replay throughput on the rsrch trace."""
    records, _truth = enterprise_traces["rsrch"]
    sample = records[:scaled(4000)]

    def run():
        replay_no_stall(sample, SsdDevice(seed=5), collect=False)

    benchmark.pedantic(run, rounds=3, iterations=1)
