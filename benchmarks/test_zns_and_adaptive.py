"""Extension benches: ZNS zone placement and adaptive tier sizing.

* **ZNS** (§V's third enabler): the same death-time workload as the
  multi-stream WAF bench, on a zoned device -- correlation-informed zone
  groups must cut reclaim copying versus a single append zone.
* **Adaptive T1:T2** (§IV-C1's dynamic-ratio remark): the adaptive table
  against fixed splits on two workload extremes, confirming it lands near
  the better fixed configuration without manual tuning.
"""

from repro.core.adaptive import AdaptivePolicy, AdaptiveTwoTierTable
from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.core.extent import unique_pairs
from repro.core.two_tier import TwoTierTable
from repro.optimize.multistream import (
    CorrelationStreamAssigner,
    SingleStreamAssigner,
    death_time_workload,
)
from repro.optimize.zns import ZnsConfig, run_zns_experiment

from conftest import print_header, print_row, scaled


def test_zns_report(benchmark):
    def compute():
        transactions = death_time_workload(
            hot_groups=4, extent_blocks=64, rounds=scaled(240),
            cold_extents=120, seed=3,
        )
        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=256, correlation_capacity=256
        ))
        analyzer.process_stream(transactions)
        config = ZnsConfig(zones=32, zone_pages=16, open_zone_limit=8,
                           reserved_zones=4)
        single = run_zns_experiment(transactions, SingleStreamAssigner(),
                                    config)
        grouped = run_zns_experiment(
            transactions, CorrelationStreamAssigner(analyzer, 8), config
        )
        return single, grouped

    single, grouped = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Ext V (ZNS): zone reclaim, single group vs correlation")
    print_row("policy", "host writes", "copies", "resets", "WAF")
    print_row("single", single.host_writes, single.reclaim_copies,
              single.resets, single.waf)
    print_row("grouped", grouped.host_writes, grouped.reclaim_copies,
              grouped.resets, grouped.waf)

    assert single.host_writes == grouped.host_writes
    assert single.waf > 1.0
    assert grouped.waf < single.waf


def _capture_quality(table, transactions, truth):
    """Fraction of true pair frequency held by a generic pair table."""
    for extents in transactions:
        for pair in unique_pairs(extents):
            table.access(pair)
    resident = {key for key, _tally, _tier in table.items()}
    captured = sum(truth.get(pair, 0) for pair in resident)
    total = sum(truth.values())
    return captured / total if total else 0.0


def test_adaptive_tiers_report(benchmark, enterprise_pipelines,
                               enterprise_ground_truth):
    """Adaptive sizing must land near the better fixed split per trace."""
    capacity = scaled(512)

    def compute():
        rows = {}
        for name in ("wdev", "stg"):
            transactions = enterprise_pipelines[name].offline_transactions()
            truth = enterprise_ground_truth[name]
            fixed_even = _capture_quality(
                TwoTierTable(capacity, capacity), transactions, truth
            )
            fixed_t1_heavy = _capture_quality(
                TwoTierTable(
                    int(1.6 * capacity), max(1, int(0.4 * capacity))
                ),
                transactions, truth,
            )
            adaptive_table = AdaptiveTwoTierTable(
                capacity, capacity,
                policy=AdaptivePolicy(adjust_interval=256,
                                      step_fraction=0.05,
                                      min_tier_fraction=0.2),
            )
            adaptive = _capture_quality(adaptive_table, transactions, truth)
            rows[name] = (fixed_even, fixed_t1_heavy, adaptive,
                          adaptive_table.tier_split,
                          adaptive_table.adjustments)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Adaptive T1:T2 vs fixed splits (capture fraction)")
    print_row("workload", "even", "T1-heavy", "adaptive", "final split")
    for name, (even, heavy, adaptive, split, adjustments) in rows.items():
        print_row(name, even, heavy, adaptive, f"{split[0]}/{split[1]}")

    for name, (even, heavy, adaptive, _split, adjustments) in rows.items():
        best_fixed = max(even, heavy)
        # Adaptive must be competitive with the better fixed split.
        assert adaptive > best_fixed - 0.08, name
        assert adjustments > 0, name
