#!/usr/bin/env python3
"""Watch the synopsis learn a new concept and forget the old one (Fig. 10).

Splices two different workloads -- wdev, then hm, then wdev again -- into
one stream and snapshots the synopsis at each boundary.  The correlation
table is sized too small to hold both concepts, so hm's pattern displaces
wdev's and then fades as wdev returns, exactly as in the paper's Figure 10.

Run:  python examples/concept_drift.py
"""

from repro.analysis import ascii_render, rasterize_pairs
from repro.blkdev import SsdDevice, replay_timed
from repro.core import AnalyzerConfig, OnlineAnalyzer
from repro.fim import exact_pair_counts, pairs_with_support
from repro.monitor import Monitor
from repro.pipeline import run_pipeline
from repro.workloads import drift_workload, generate_named

SEGMENT = 6000
CAPACITY = 1024
SUPPORT = 3


def concept_signature(records):
    """A workload's frequent-pair signature via the offline path."""
    result = run_pipeline(records, device=SsdDevice(seed=1))
    counts = exact_pair_counts(result.offline_transactions())
    return set(pairs_with_support(counts, SUPPORT))


def main() -> None:
    print("Generating wdev and hm workloads ...")
    wdev, _ = generate_named("wdev", requests=2 * SEGMENT, seed=7)
    hm, _ = generate_named("hm", requests=SEGMENT, seed=7)

    signatures = {
        "wdev": concept_signature(wdev),
        "hm": concept_signature(hm),
    }
    print(f"wdev signature: {len(signatures['wdev'])} frequent pairs")
    print(f"hm signature  : {len(signatures['hm'])} frequent pairs")

    _flat, segments = drift_workload(wdev, hm, SEGMENT, labels=("wdev", "hm"))

    analyzer = OnlineAnalyzer(AnalyzerConfig(
        item_capacity=CAPACITY, correlation_capacity=CAPACITY
    ))
    monitor = Monitor()
    monitor.add_sink(lambda transaction: analyzer.process(transaction.extents))
    device = SsdDevice(seed=3)

    print(f"\nReplaying wdev -> hm -> wdev "
          f"({SEGMENT} requests each, C={CAPACITY}) ...")
    for segment in segments:
        replay_timed(segment.records, device,
                     listeners=[monitor.on_event], collect=False)
        monitor.flush()
        resident = set(analyzer.pair_frequencies())

        print(f"\n=== after segment {segment.label} "
              f"({len(resident)} resident pairs) ===")
        for concept, signature in signatures.items():
            held = len(resident & signature) / len(signature)
            bar = "#" * int(40 * held)
            print(f"  {concept:5} pattern held: {100 * held:5.1f}% |{bar}")

        frequent = dict(analyzer.frequent_pairs(min_support=SUPPORT))
        if frequent:
            print("  synopsis content (frequent pairs):")
            print("  " + "\n  ".join(
                ascii_render(rasterize_pairs(frequent, bins=24),
                             width=24).splitlines()
            ))

    print("\nThe wdev pattern forms, is displaced by hm (the table cannot "
          "hold both), and re-forms while hm fades -- the paper's Fig. 10.")


if __name__ == "__main__":
    main()
