#!/usr/bin/env python3
"""Run the characterization framework as a long-lived service.

The batch pipeline answers "what were the correlations in this trace"; a
deployed system needs the *continuous* form: events stream in forever,
optimization modules subscribe to periodic snapshots, and the learned
synopsis survives restarts.  This example:

1. streams the first half of a workload into a *sharded* service in
   batches -- events flow through the monitor's amortized batch path and
   land in a hash-partitioned four-shard synopsis -- with an observer
   printing each periodic snapshot (the hook an optimizer attaches to)
   and a ``SnapshotEmitter`` printing a one-line telemetry digest
   (events/s, transactions/s, T2 occupancy, evictions) on an interval
   while appending full snapshots to an NDJSON file;
2. checkpoints the synopsis to a file in format v3 (one CRC envelope per
   shard, so a corrupt shard degrades instead of destroying a restore);
3. "restarts" into a fresh service, restores the checkpoint, streams the
   second half, and shows the correlations carried across the restart.

Run:  python examples/continuous_service.py
"""

import os
import tempfile

from repro import CharacterizationService
from repro.blkdev import SsdDevice, replay_timed
from repro.core import AnalyzerConfig
from repro.telemetry import MetricsRegistry, SnapshotEmitter, snapshot_value
from repro.workloads import generate_named

BATCH_SIZE = 500
DIGEST_INTERVAL = 0.1  # seconds between telemetry digest lines


class Batcher:
    """Buffer replay events into ``submit_many`` batches.

    A real deployment would drain a ring buffer on a timer; here the
    replay listener fills the buffer and every ``BATCH_SIZE`` events go
    through the service's batched ingest path in one call.  After each
    batch the snapshot emitter gets a chance to run -- the cooperative
    form of periodic telemetry, no extra thread needed.
    """

    def __init__(self, service, emitter=None):
        self.service = service
        self.emitter = emitter
        self.buffer = []
        self.batches = 0

    def __call__(self, event):
        self.buffer.append(event)
        if len(self.buffer) >= BATCH_SIZE:
            self.drain()

    def drain(self):
        if self.buffer:
            self.service.submit_many(self.buffer)
            self.buffer.clear()
            self.batches += 1
            if self.emitter is not None:
                self.emitter.maybe_emit()


class TelemetryDigest:
    """Render each emitted snapshot as one line of rates and occupancy.

    Counters are cumulative, so rates come from the delta between
    consecutive snapshots; T2 occupancy and evictions are read straight
    off the current one (``snapshot_value`` sums across tables/shards).
    """

    def __init__(self):
        self._previous = None

    def __call__(self, snap):
        events = snapshot_value(snap, "repro_monitor_events_seen_total")
        transactions = snapshot_value(
            snap, "repro_service_transactions_total"
        )
        t2_occupancy = snapshot_value(
            snap, "repro_synopsis_occupancy", {"tier": "t2"}
        )
        evictions = (
            snapshot_value(snap, "repro_synopsis_t1_evictions_total")
            + snapshot_value(snap, "repro_synopsis_t2_evictions_total")
        )
        previous = self._previous
        self._previous = (snap["ts"], events, transactions)
        if previous is None:
            return
        elapsed = snap["ts"] - previous[0]
        if elapsed <= 0:
            return
        event_rate = (events - previous[1]) / elapsed
        transaction_rate = (transactions - previous[2]) / elapsed
        print(f"  [telemetry] {event_rate:,.0f} events/s, "
              f"{transaction_rate:,.0f} transactions/s, "
              f"T2 occupancy {t2_occupancy:.0f}, "
              f"evictions {evictions:.0f}")


def make_service(registry=None):
    return CharacterizationService(
        config=AnalyzerConfig(item_capacity=4096, correlation_capacity=4096),
        min_support=5,
        snapshot_interval=1000,
        shards=4,  # hash-partitioned synopsis: 4 shards at capacity/4 each
        registry=registry,
    )


def main() -> None:
    records, _truth = generate_named("rsrch", requests=12000, seed=5)
    midpoint = len(records) // 2
    first_half, second_half = records[:midpoint], records[midpoint:]

    registry = MetricsRegistry()
    service = make_service(registry)
    ndjson_path = os.path.join(tempfile.gettempdir(), "telemetry.ndjson")
    emitter = SnapshotEmitter(
        registry,
        path=ndjson_path,
        interval=DIGEST_INTERVAL,
        on_snapshot=TelemetryDigest(),
    )

    def observer(snapshot):
        print(f"  [snapshot] {snapshot.transactions} transactions, "
              f"{snapshot.correlations} frequent correlations")

    service.observe(observer)

    print(f"Streaming first half ({len(first_half)} events) in batches "
          f"of {BATCH_SIZE} across {service.shards} shards ...")
    batcher = Batcher(service, emitter)
    replay_timed(first_half, SsdDevice(seed=3),
                 listeners=[batcher], collect=False)
    batcher.drain()
    service.flush()
    emitter.emit()  # one final digest line for the half
    before = service.snapshot()
    occupancy = service.analyzer.shard_occupancy()
    print(f"before restart: {before.correlations} frequent correlations, "
          f"{before.events} events seen ({batcher.batches} batches)")
    print(f"shard occupancy (items, pairs): {occupancy}")

    checkpoint_path = os.path.join(tempfile.gettempdir(), "synopsis.ckpt")
    with open(checkpoint_path, "wb") as stream:
        written = service.checkpoint(stream)
    print(f"checkpointed synopsis (format v3, one envelope per shard): "
          f"{written} bytes -> {checkpoint_path}")

    print("\n-- simulated restart --\n")
    # The restarted process gets a fresh registry (counters restart from
    # zero, like any process restart) and keeps appending to the same
    # NDJSON file.
    registry = MetricsRegistry()
    resumed = make_service(registry)
    emitter = SnapshotEmitter(
        registry,
        path=ndjson_path,
        interval=DIGEST_INTERVAL,
        on_snapshot=TelemetryDigest(),
    )
    with open(checkpoint_path, "rb") as stream:
        resumed.restore(stream)
    restored = resumed.snapshot()
    print(f"after restore: {restored.correlations} frequent correlations "
          f"(identical: {[p for p, _ in restored.frequent_pairs] == [p for p, _ in before.frequent_pairs]})")

    print(f"\nStreaming second half ({len(second_half)} events) ...")
    resumed.observe(observer)
    batcher = Batcher(resumed, emitter)
    replay_timed(second_half, SsdDevice(seed=3),
                 listeners=[batcher], collect=False)
    batcher.drain()
    resumed.flush()
    emitter.emit()
    final = resumed.snapshot()
    print(f"\nfinal: {final.correlations} frequent correlations; "
          f"strongest:")
    for pair, tally in final.frequent_pairs[:5]:
        print(f"  {pair}  x{tally}")
    with open(ndjson_path) as stream:
        lines = sum(1 for _line in stream)
    print(f"\nappended {lines} telemetry snapshots to {ndjson_path}")
    os.unlink(ndjson_path)
    os.unlink(checkpoint_path)


if __name__ == "__main__":
    main()
