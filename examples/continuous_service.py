#!/usr/bin/env python3
"""Run the characterization framework as a long-lived service.

The batch pipeline answers "what were the correlations in this trace"; a
deployed system needs the *continuous* form: events stream in forever,
optimization modules subscribe to periodic snapshots, and the learned
synopsis survives restarts.  This example:

1. streams the first half of a workload into a service, with an observer
   printing each periodic snapshot (the hook an optimizer attaches to);
2. checkpoints the synopsis to a file -- at the paper's native entry sizes
   it is a few hundred KB even for large tables;
3. "restarts" into a fresh service, restores the checkpoint, streams the
   second half, and shows the correlations carried across the restart.

Run:  python examples/continuous_service.py
"""

import io
import os
import tempfile

from repro import CharacterizationService
from repro.blkdev import SsdDevice, replay_timed
from repro.core import AnalyzerConfig
from repro.workloads import generate_named


def main() -> None:
    records, _truth = generate_named("rsrch", requests=12000, seed=5)
    midpoint = len(records) // 2
    first_half, second_half = records[:midpoint], records[midpoint:]

    service = CharacterizationService(
        config=AnalyzerConfig(item_capacity=4096, correlation_capacity=4096),
        min_support=5,
        snapshot_interval=1000,
    )

    def observer(snapshot):
        print(f"  [snapshot] {snapshot.transactions} transactions, "
              f"{snapshot.correlations} frequent correlations")

    service.observe(observer)

    print(f"Streaming first half ({len(first_half)} events) ...")
    replay_timed(first_half, SsdDevice(seed=3),
                 listeners=[service.submit], collect=False)
    service.flush()
    before = service.snapshot()
    print(f"before restart: {before.correlations} frequent correlations, "
          f"{before.events} events seen")

    checkpoint_path = os.path.join(tempfile.gettempdir(), "synopsis.ckpt")
    with open(checkpoint_path, "wb") as stream:
        written = service.checkpoint(stream)
    print(f"checkpointed synopsis: {written} bytes -> {checkpoint_path}")

    print("\n-- simulated restart --\n")
    resumed = CharacterizationService(
        config=AnalyzerConfig(item_capacity=4096, correlation_capacity=4096),
        min_support=5,
        snapshot_interval=1000,
    )
    with open(checkpoint_path, "rb") as stream:
        resumed.restore(stream)
    restored = resumed.snapshot()
    print(f"after restore: {restored.correlations} frequent correlations "
          f"(identical: {[p for p, _ in restored.frequent_pairs] == [p for p, _ in before.frequent_pairs]})")

    print(f"\nStreaming second half ({len(second_half)} events) ...")
    resumed.observe(observer)
    replay_timed(second_half, SsdDevice(seed=3),
                 listeners=[resumed.submit], collect=False)
    resumed.flush()
    final = resumed.snapshot()
    print(f"\nfinal: {final.correlations} frequent correlations; "
          f"strongest:")
    for pair, tally in final.frequent_pairs[:5]:
        print(f"  {pair}  x{tally}")
    os.unlink(checkpoint_path)


if __name__ == "__main__":
    main()
