#!/usr/bin/env python3
"""Characterize an enterprise storage workload end to end.

Runs the full paper pipeline on a modelled MSR Cambridge trace: replay on
the simulated SSD, real-time monitoring with a dynamic transaction window,
online analysis -- plus the offline FIM pass the paper uses as ground truth
-- and prints workload statistics (Table I style), the correlation-frequency
distribution (Fig. 5 style), detection accuracy, and an ASCII rendering of
the correlation plot (Fig. 8 style).

Run:  python examples/enterprise_analysis.py [workload]
      workload in {wdev, src2, rsrch, stg, hm}, default wdev
"""

import sys

from repro.analysis import (
    ascii_render,
    correlation_cdf,
    detection_metrics,
    rasterize_pairs,
)
from repro.fim import exact_pair_counts, pairs_with_support
from repro.pipeline import run_pipeline
from repro.trace import compute_stats
from repro.workloads import PROFILES, generate_named


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "wdev"
    if name not in PROFILES:
        raise SystemExit(f"unknown workload {name!r}; pick from {list(PROFILES)}")

    print(f"Generating MSR-like workload '{name}' "
          f"({PROFILES[name].description}) ...")
    records, _truth = generate_named(name, requests=20000, seed=7)

    stats = compute_stats(records)
    print(f"\n--- Workload statistics (Table I style) ---")
    print(f"requests           : {stats.requests}")
    print(f"total data         : {stats.total_gb:.3f} GB")
    print(f"unique data        : {stats.unique_gb:.3f} GB "
          f"(ratio {stats.total_bytes / stats.unique_bytes:.1f}x)")
    print(f"interarrival<100us : {stats.fast_interarrival_percent:.1f}%")
    print(f"mean trace latency : {stats.mean_latency * 1e3:.2f} ms")

    print("\nReplaying with real-time monitoring and analysis ...")
    result = run_pipeline(records)
    monitor = result.monitor_stats
    print(f"transactions       : {monitor.transactions_emitted} "
          f"({monitor.singleton_transactions} singletons, "
          f"{monitor.duplicates_removed} duplicates removed, "
          f"{monitor.size_splits} size splits)")

    counts = exact_pair_counts(result.offline_transactions())
    cdf = correlation_cdf(counts)
    print(f"\n--- Correlation frequencies (Fig. 5 style) ---")
    print(f"unique extent pairs: {cdf.total_pairs}")
    print(f"occur only once    : {100 * cdf.support_one_fraction:.1f}% "
          f"(carrying {100 * cdf.weighted_at(1):.1f}% of frequency)")
    print(f"knee (90% unique)  : support {cdf.knee(0.9)}")

    support = 5
    detected = [p for p, _t in result.frequent_pairs(min_support=1)]
    metrics = detection_metrics(counts, detected, min_support=support)
    print(f"\n--- Online detection vs offline FIM (support {support}) ---")
    print(f"frequent pairs     : "
          f"{len(pairs_with_support(counts, support))}")
    print(f"recall             : {100 * metrics.recall:.1f}%")
    print(f"weighted recall    : {100 * metrics.weighted_recall:.1f}%")

    print(f"\n--- Online correlation plot (Fig. 8 style, support {support}) ---")
    online = dict(result.frequent_pairs(min_support=support))
    grid = rasterize_pairs(online, bins=48)
    print(ascii_render(grid, width=48))

    print("\nTop detected correlations:")
    for pair, tally in result.frequent_pairs(min_support=support)[:6]:
        print(f"  {pair}  x{tally}")


if __name__ == "__main__":
    main()
