#!/usr/bin/env python3
"""Monitor a shared (multi-tenant) storage system.

The paper motivates block-layer monitoring with multi-tenant storage: only
the block layer sees the interleaved stream of every tenant, so only there
can inter-tenant correlations be detected -- and, when a single tenant is
of interest, the monitor's PID filter isolates it.

This example lays three tenants (a web server, a database, and a batch
job) onto one device, characterizes the shared stream, shows a cross-tenant
correlation (the web server's requests always trigger the database's), and
then re-runs the monitor with a PID filter to characterize one tenant alone.

Run:  python examples/multitenant_monitoring.py
"""

from repro.pipeline import run_pipeline
from repro.trace import OpType, TraceRecord
from repro.workloads import (
    generate_named,
    shared_workload,
    tenant_address_ranges,
)


def web_and_db_traces(rounds=400):
    """A web server whose request always touches a database table."""
    web, db = [], []
    clock = 0.0
    for i in range(rounds):
        which = i % 4
        web.append(TraceRecord(clock, 0, OpType.READ, 1000 + which * 64, 8))
        db.append(TraceRecord(clock + 2e-5, 0, OpType.READ,
                              5000 + which * 128, 16))
        clock += 0.01
    return web, db


def main() -> None:
    print("Composing three tenants onto one shared device ...")
    web, db = web_and_db_traces()
    batch, _truth = generate_named("stg", requests=2000, seed=11)
    merged, tenants = shared_workload([
        ("web", web),
        ("db", db),
        ("batch", batch),
    ])
    ranges = tenant_address_ranges(tenants)
    for tenant in tenants:
        low, high = ranges[tenant.name]
        print(f"  {tenant.name:6} pid={tenant.pid}  "
              f"blocks [{low}, {high})  {len(tenant.records)} requests")

    print(f"\nCharacterizing the shared stream ({len(merged)} requests) ...")
    result = run_pipeline(merged)
    top = result.frequent_pairs(min_support=10)
    print(f"detected {len(top)} frequent correlations; top 5:")

    def owner(block):
        for name, (low, high) in ranges.items():
            if low <= block < high:
                return name
        return "?"

    for pair, tally in top[:5]:
        owners = {owner(pair.first.start), owner(pair.second.start)}
        tag = "CROSS-TENANT" if len(owners) > 1 else owners.pop()
        print(f"  {pair}  x{tally}  [{tag}]")

    cross = [
        (pair, tally) for pair, tally in top
        if owner(pair.first.start) != owner(pair.second.start)
    ]
    print(f"\n{len(cross)} cross-tenant correlations found -- the web/db "
          f"coupling is visible only at the block layer.")

    print("\nRe-monitoring with a PID filter on the 'db' tenant only ...")
    db_tenant = tenants[1]
    filtered = run_pipeline(merged, pid_filter={db_tenant.pid})
    stats = filtered.monitor_stats
    print(f"  events kept     : {stats.events_seen - stats.events_filtered}"
          f" / {stats.events_seen}")
    low, high = ranges["db"]
    in_range = all(
        low <= event.start < high
        for transaction in filtered.recorder.transactions
        for event in transaction.events
    )
    print(f"  all events in db's volume: {in_range}")


if __name__ == "__main__":
    main()
