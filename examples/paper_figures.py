#!/usr/bin/env python3
"""Reproduce the paper's figures and tables from the library API.

The benchmark suite (pytest benchmarks/ --benchmark-only) regenerates and
*asserts* every result; this script is the human-friendly version: it runs
the same experiments at a small scale, prints each table, and writes the
figure rasters as PGM images into ./paper_figures/.

Run:  python examples/paper_figures.py [output_dir]
"""

import sys
from pathlib import Path

from repro.analysis import (
    correlation_cdf,
    optimal_curve,
    rasterize_pairs,
    save_pgm,
    sweep_table_sizes,
    trace_heatmap,
)
from repro.blkdev import SsdDevice
from repro.fim import exact_pair_counts, pairs_with_support
from repro.pipeline import run_pipeline
from repro.trace import compute_stats
from repro.workloads import WORKLOAD_NAMES, generate_named

REQUESTS = 8000
SUPPORT = 5


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "paper_figures")
    out_dir.mkdir(exist_ok=True)
    print(f"writing figures to {out_dir}/\n")

    pipelines = {}
    truths = {}
    print("running the pipeline on all five workloads ...")
    for name in WORKLOAD_NAMES:
        records, _t = generate_named(name, requests=REQUESTS, seed=7)
        result = run_pipeline(records, device=SsdDevice(seed=11))
        pipelines[name] = (records, result)
        truths[name] = exact_pair_counts(result.offline_transactions())

    # ----- Table I ---------------------------------------------------------
    print("\nTable I: workload statistics (scaled)")
    print(f"{'workload':10}{'total GB':>10}{'unique GB':>11}"
          f"{'t/u':>7}{'<100us':>8}")
    for name, (records, _result) in pipelines.items():
        stats = compute_stats(records)
        print(f"{name:10}{stats.total_gb:>10.3f}{stats.unique_gb:>11.3f}"
              f"{stats.total_bytes / stats.unique_bytes:>7.1f}"
              f"{stats.fast_interarrival_percent:>7.1f}%")

    # ----- Figure 1 --------------------------------------------------------
    for name, (records, _result) in pipelines.items():
        grid = trace_heatmap(records, sequence_bins=128, block_bins=128)
        save_pgm(grid, out_dir / f"fig1_{name}.pgm")
    print(f"\nFig 1: wrote heat maps -> fig1_<workload>.pgm")

    # ----- Figure 5 --------------------------------------------------------
    print("\nFig 5: correlation-frequency CDFs")
    print(f"{'workload':10}{'pairs':>8}{'uniq@1':>9}{'wght@1':>9}")
    for name, counts in truths.items():
        cdf = correlation_cdf(counts)
        print(f"{name:10}{cdf.total_pairs:>8}"
              f"{cdf.support_one_fraction:>9.3f}"
              f"{cdf.weighted_at(1):>9.3f}")

    # ----- Figure 6 --------------------------------------------------------
    print("\nFig 6: optimal coverage by table entries")
    sizes = [64, 256, 1024, 4096]
    print(f"{'workload':10}" + "".join(f"{size:>9}" for size in sizes))
    for name, counts in truths.items():
        curve = optimal_curve(counts)
        print(f"{name:10}" + "".join(
            f"{curve.fraction_for_size(size):>9.2f}" for size in sizes
        ))

    # ----- Figure 8 --------------------------------------------------------
    for name, (_records, result) in pipelines.items():
        offline = pairs_with_support(truths[name], SUPPORT)
        online = dict(result.frequent_pairs(min_support=SUPPORT))
        save_pgm(rasterize_pairs(offline, bins=128),
                 out_dir / f"fig8_{name}_offline.pgm")
        save_pgm(rasterize_pairs(online, bins=128),
                 out_dir / f"fig8_{name}_online.pgm")
    print(f"\nFig 8: wrote offline/online correlation plots at "
          f"support {SUPPORT} -> fig8_<workload>_{{offline,online}}.pgm")

    # ----- Figure 9 --------------------------------------------------------
    print("\nFig 9: captured/optimal vs table capacity (wdev, rsrch)")
    capacities = [128, 512, 2048, 8192]
    print(f"{'workload':10}" + "".join(f"{c:>9}" for c in capacities))
    for name in ("wdev", "rsrch"):
        _records, result = pipelines[name]
        sweep = sweep_table_sizes(
            result.offline_transactions(), truths[name], capacities
        )
        print(f"{name:10}" + "".join(
            f"{score.quality:>9.2f}" for _c, score in sweep
        ))

    print("\nDone.  PGM files open in any image viewer "
          "(or convert with ImageMagick).")


if __name__ == "__main__":
    main()
