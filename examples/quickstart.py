#!/usr/bin/env python3
"""Quickstart: detect data access correlations in a replayed workload.

Generates one of the paper's synthetic workloads (a small block correlated
with a contiguous range -- think inode + file contents), replays it through
the simulated SSD with real-time monitoring, and prints the correlations
the online synopsis detected next to the planted ground truth.

Run:  python examples/quickstart.py
"""

from repro import characterize
from repro.workloads import SyntheticKind, SyntheticSpec, generate_synthetic


def main() -> None:
    spec = SyntheticSpec(kind=SyntheticKind.ONE_TO_MANY, duration=60.0, seed=7)
    records, truth = generate_synthetic(spec)
    print(f"Generated {len(records)} block I/O requests "
          f"({spec.kind.value}, {spec.duration:.0f}s of virtual time)\n")

    detected = characterize(records, min_support=5)

    print("Planted correlations (popularity-ranked by Zipf):")
    for rank, (pair, probability) in enumerate(
        zip(truth.pairs, truth.probabilities), start=1
    ):
        print(f"  #{rank}  {pair}  p={probability:.2f}")

    print("\nDetected by the online synopsis (support >= 5):")
    for pair, tally in detected[:8]:
        rank = truth.pair_rank(pair)
        marker = f"planted #{rank}" if rank else "noise"
        print(f"  {pair}  seen {tally} times  [{marker}]")

    found = sum(1 for pair, _t in detected if truth.pair_rank(pair))
    print(f"\n{found}/{len(truth.pairs)} planted correlations detected "
          f"in a single real-time pass.")


if __name__ == "__main__":
    main()
