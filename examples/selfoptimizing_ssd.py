#!/usr/bin/env python3
"""Self-optimizing SSDs driven by real-time correlations (paper Section V).

Demonstrates the two automatic optimization scenarios the paper proposes on
top of the characterization framework:

1. **Multi-stream SSD garbage collection** -- write extents that are
   frequently written together are predicted to die together, so the
   correlation-informed stream assigner groups them into the same erase
   units, cutting the write amplification factor (WAF).
2. **Open-channel SSD parallel I/O** -- read extents that are frequently
   read together are placed on *different* parallel units so they can be
   served concurrently, cutting correlated-read latency.

Run:  python examples/selfoptimizing_ssd.py
"""

from repro.core import AnalyzerConfig, OnlineAnalyzer
from repro.optimize import (
    CorrelationPlacement,
    CorrelationStreamAssigner,
    FlashConfig,
    OcssdConfig,
    SingleStreamAssigner,
    StripingPlacement,
    run_parallel_read_experiment,
    run_waf_experiment,
)
from repro.optimize.multistream import death_time_workload


def multistream_demo() -> None:
    print("=" * 64)
    print("1. Multi-stream SSD: correlation-informed garbage collection")
    print("=" * 64)

    transactions = death_time_workload(
        hot_groups=4, extent_blocks=64, rounds=240, cold_extents=180, seed=2
    )
    print(f"workload: {len(transactions)} write transactions "
          f"(4 hot groups overwritten together + slowly-refreshed cold data)")

    analyzer = OnlineAnalyzer(AnalyzerConfig(
        item_capacity=512, correlation_capacity=512
    ))
    analyzer.process_stream(transactions)
    print(f"analyzer learned {len(analyzer.frequent_pairs(2))} "
          f"frequent write correlations")

    config = FlashConfig(erase_units=32, pages_per_eu=16, streams=8,
                         overprovision_eus=6)
    single = run_waf_experiment(transactions, SingleStreamAssigner(), config)
    assigner = CorrelationStreamAssigner(analyzer, streams=8)
    streamed = run_waf_experiment(transactions, assigner, config)

    print(f"\n{'':24}{'single stream':>16}{'corr. streams':>16}")
    print(f"{'host writes':24}{single.host_writes:>16}{streamed.host_writes:>16}")
    print(f"{'GC relocations':24}{single.gc_relocations:>16}"
          f"{streamed.gc_relocations:>16}")
    print(f"{'WAF':24}{single.waf:>16.3f}{streamed.waf:>16.3f}")
    saved = 100 * (1 - (streamed.waf - 1) / max(single.waf - 1, 1e-9))
    print(f"\n-> correlation streams eliminate {saved:.0f}% of the "
          f"GC write amplification\n")


def openchannel_demo() -> None:
    print("=" * 64)
    print("2. Open-channel SSD: correlation-aware parallel placement")
    print("=" * 64)

    import random
    from repro.core import Extent

    rng = random.Random(9)
    stripe = 4096
    groups = [
        [Extent(g * 64 * stripe + member * 64, 8) for member in range(4)]
        for g in range(12)
    ]
    transactions = [groups[rng.randrange(12)] for _ in range(400)]
    print(f"workload: {len(transactions)} read transactions of 4 correlated "
          f"extents, each group inside one RAID-0 stripe")

    analyzer = OnlineAnalyzer(AnalyzerConfig(
        item_capacity=512, correlation_capacity=512
    ))
    analyzer.process_stream(transactions)

    config = OcssdConfig(parallel_units=8, stripe_blocks=stripe)
    baseline = run_parallel_read_experiment(
        transactions, StripingPlacement(config), config
    )
    optimized = run_parallel_read_experiment(
        transactions, CorrelationPlacement(analyzer, config), config
    )

    print(f"\n{'':24}{'striping':>16}{'corr. placement':>16}")
    print(f"{'mean latency (us)':24}{baseline.mean_latency * 1e6:>16.1f}"
          f"{optimized.mean_latency * 1e6:>16.1f}")
    print(f"{'parallel speedup':24}{baseline.parallel_speedup:>16.2f}"
          f"{optimized.parallel_speedup:>16.2f}")
    improvement = baseline.mean_latency / optimized.mean_latency
    print(f"\n-> correlated reads complete {improvement:.1f}x faster once "
          f"placed on distinct parallel units")


def main() -> None:
    multistream_demo()
    openchannel_demo()


if __name__ == "__main__":
    main()
