"""repro -- Real-Time Characterization of Data Access Correlations.

A from-scratch reproduction of the ISPASS 2021 paper by Harris, Marzullo,
and Altiparmak: an online framework that watches block-layer I/O, groups
requests into transactions, and maintains a bounded-memory two-tier synopsis
of frequently correlated extents -- plus the substrates (trace model, device
simulation, workload generators) and baselines (offline and stream FIM)
needed to regenerate every table and figure of the paper's evaluation.

Quickstart::

    from repro import characterize
    from repro.workloads import SyntheticSpec, SyntheticKind, generate_synthetic

    records, truth = generate_synthetic(SyntheticSpec(SyntheticKind.ONE_TO_MANY))
    for pair, tally in characterize(records, min_support=5)[:10]:
        print(pair, tally)
"""

from .cache import (
    CachedCharacterizationService,
    SimulatedBlockCache,
    SynopsisPrefetcher,
)
from .core import (
    AnalyzerConfig,
    AnalyzerReport,
    CorrelationTable,
    Extent,
    ExtentPair,
    ItemTable,
    OnlineAnalyzer,
    SynopsisMemoryModel,
    TwoTierTable,
)
from .core.serialize import CheckpointCorruptError
from .engine import (
    ShardedAnalyzer,
    SingleAnalyzerEngine,
    SynopsisEngine,
    dump_engine,
    load_engine,
)
from .monitor import (
    BlockIOEvent,
    ClockPolicy,
    DynamicLatencyWindow,
    Monitor,
    StaticWindow,
    Transaction,
    TransactionRecorder,
)
from .pipeline import PipelineResult, characterize, run_pipeline
from .resilience import (
    FaultInjector,
    FaultSpec,
    ResilientCharacterizationService,
    ServiceHealth,
    SinkGuard,
)
from .service import CharacterizationService, ServiceSnapshot
from .telemetry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    SnapshotEmitter,
    StageTimer,
    get_default_registry,
    render_digest,
    render_json,
    render_prometheus,
    set_default_registry,
    snapshot,
    snapshot_value,
)
from .trace import ErrorPolicy, IngestReport, OpType, TraceRecord

__version__ = "1.0.0"

__all__ = [
    "AnalyzerConfig",
    "AnalyzerReport",
    "BlockIOEvent",
    "CachedCharacterizationService",
    "CheckpointCorruptError",
    "ClockPolicy",
    "CorrelationTable",
    "DynamicLatencyWindow",
    "ErrorPolicy",
    "FaultInjector",
    "FaultSpec",
    "IngestReport",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "ResilientCharacterizationService",
    "ServiceHealth",
    "ShardedAnalyzer",
    "SingleAnalyzerEngine",
    "SimulatedBlockCache",
    "SinkGuard",
    "SynopsisEngine",
    "SynopsisPrefetcher",
    "dump_engine",
    "load_engine",
    "Extent",
    "ExtentPair",
    "ItemTable",
    "Monitor",
    "OnlineAnalyzer",
    "OpType",
    "PipelineResult",
    "SnapshotEmitter",
    "StageTimer",
    "StaticWindow",
    "SynopsisMemoryModel",
    "TraceRecord",
    "CharacterizationService",
    "ServiceSnapshot",
    "Transaction",
    "TransactionRecorder",
    "TwoTierTable",
    "characterize",
    "get_default_registry",
    "render_digest",
    "render_json",
    "render_prometheus",
    "run_pipeline",
    "set_default_registry",
    "snapshot",
    "snapshot_value",
    "__version__",
]
