"""Evaluation metrics and figure-level analyses."""

from .accuracy import DetectionMetrics, detection_metrics, top_k_recall
from .activity import ActivitySeries, pair_activity, steady_pairs
from .cdf import CorrelationCdf, correlation_cdf
from .compare import AgreementReport, rank_agreement
from .diff import SnapshotDiff, diff_snapshots, drift_series
from .drift import DriftSnapshot, concept_affinity, run_drift_experiment
from .heatmap import (
    ascii_render,
    load_pgm,
    save_pgm,
    pair_rectangles,
    raster_containment,
    raster_similarity,
    rasterize_pairs,
    trace_heatmap,
)
from .timeline import (
    DetectionEvent,
    DetectionTimeline,
    measure_detection_latency,
)
from .sequential import (
    ClassifierConfig,
    PatternComposition,
    PatternKind,
    classify_correlations,
    classify_pair,
    split_by_kind,
)
from .optimal import OptimalCurve, optimal_curve, power_of_two_sizes
from .replicate import Replication, replicate, summarize
from .report import CharacterizationReport, build_report, render_report
from .representability import (
    Representability,
    representability,
    sweep_table_sizes,
)

__all__ = [
    "ActivitySeries",
    "AgreementReport",
    "pair_activity",
    "steady_pairs",
    "CorrelationCdf",
    "rank_agreement",
    "DetectionMetrics",
    "DriftSnapshot",
    "SnapshotDiff",
    "diff_snapshots",
    "drift_series",
    "OptimalCurve",
    "Representability",
    "CharacterizationReport",
    "Replication",
    "replicate",
    "summarize",
    "build_report",
    "render_report",
    "DetectionEvent",
    "DetectionTimeline",
    "measure_detection_latency",
    "ClassifierConfig",
    "PatternComposition",
    "PatternKind",
    "ascii_render",
    "classify_correlations",
    "classify_pair",
    "load_pgm",
    "save_pgm",
    "split_by_kind",
    "concept_affinity",
    "correlation_cdf",
    "detection_metrics",
    "top_k_recall",
    "optimal_curve",
    "pair_rectangles",
    "power_of_two_sizes",
    "raster_containment",
    "raster_similarity",
    "rasterize_pairs",
    "representability",
    "run_drift_experiment",
    "sweep_table_sizes",
]
