"""Detection accuracy metrics (the paper's >90 % headline).

The abstract claims the framework "can detect over 90% of data access
correlations in real-time, using limited memory".  We quantify detection
two ways:

* **recall** -- the fraction of ground-truth frequent pairs (offline FIM at
  a minimum support) present in the synopsis;
* **weighted recall** -- the same, weighting each pair by its true
  frequency, which matches the paper's framing that frequent correlations
  are the valuable ones.

Precision and F1 are reported alongside, since a synopsis that holds
everything would trivially maximise recall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence, Set, Tuple


@dataclass(frozen=True)
class DetectionMetrics:
    """Set-overlap accuracy between detected and true frequent pairs."""

    true_positives: int
    false_positives: int
    false_negatives: int
    weighted_recall: float

    @property
    def precision(self) -> float:
        detected = self.true_positives + self.false_positives
        return self.true_positives / detected if detected else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)


def detection_metrics(
    true_counts: Mapping[Hashable, int],
    detected: Iterable[Hashable],
    min_support: int = 2,
) -> DetectionMetrics:
    """Score ``detected`` pairs against the frequent subset of ``true_counts``.

    Ground truth is every pair whose exact frequency is at least
    ``min_support``.  Detected pairs below that truth set count as false
    positives *only if* they are also infrequent in truth -- a detected pair
    that is genuinely frequent is a true positive regardless of the tally
    the synopsis happened to keep for it.
    """
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    truth: Set[Hashable] = {
        pair for pair, count in true_counts.items() if count >= min_support
    }
    detected_set = set(detected)

    true_positives = len(truth & detected_set)
    false_positives = len(detected_set - truth)
    false_negatives = len(truth - detected_set)

    truth_weight = sum(true_counts[pair] for pair in truth)
    captured_weight = sum(true_counts[pair] for pair in truth & detected_set)
    weighted_recall = captured_weight / truth_weight if truth_weight else 1.0

    return DetectionMetrics(
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
        weighted_recall=weighted_recall,
    )


def top_k_recall(
    true_counts: Mapping[Hashable, int],
    ranked_detections: Sequence[Tuple[Hashable, int]],
    k: int = 100,
) -> float:
    """Recall@k: overlap between the true and detected top-``k`` sets.

    The ranked-retrieval complement to :func:`detection_metrics`:
    instead of thresholding at a support level, it asks whether the
    synopsis *ranks* the strongest correlations where an exact offline
    count would.  The metric is tie-aware: with integer counts the
    ``k``-th place is usually shared by a whole tie class, and any member
    of it is an equally correct answer, so a detected pair scores a hit
    when its *true* count reaches the ``k``-th highest true count --
    not when it lands in one arbitrary tie-broken enumeration of the
    top-``k``.  ``ranked_detections`` is the backend's best-first
    ``(pair, score)`` list, of which the first ``k`` keys count.
    Returns hits divided by the truth set's size (``k``, or fewer when
    truth itself has fewer pairs); 1.0 when there is no truth to find.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    truth_ranked = sorted(
        true_counts.items(), key=lambda entry: (-entry[1], repr(entry[0]))
    )[:k]
    if not truth_ranked:
        return 1.0
    threshold = truth_ranked[-1][1]
    detected = {pair for pair, _score in ranked_detections[:k]}
    hits = sum(
        1 for pair in detected if true_counts.get(pair, 0) >= threshold
    )
    return hits / len(truth_ranked)
