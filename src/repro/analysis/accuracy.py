"""Detection accuracy metrics (the paper's >90 % headline).

The abstract claims the framework "can detect over 90% of data access
correlations in real-time, using limited memory".  We quantify detection
two ways:

* **recall** -- the fraction of ground-truth frequent pairs (offline FIM at
  a minimum support) present in the synopsis;
* **weighted recall** -- the same, weighting each pair by its true
  frequency, which matches the paper's framing that frequent correlations
  are the valuable ones.

Precision and F1 are reported alongside, since a synopsis that holds
everything would trivially maximise recall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Set


@dataclass(frozen=True)
class DetectionMetrics:
    """Set-overlap accuracy between detected and true frequent pairs."""

    true_positives: int
    false_positives: int
    false_negatives: int
    weighted_recall: float

    @property
    def precision(self) -> float:
        detected = self.true_positives + self.false_positives
        return self.true_positives / detected if detected else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)


def detection_metrics(
    true_counts: Mapping[Hashable, int],
    detected: Iterable[Hashable],
    min_support: int = 2,
) -> DetectionMetrics:
    """Score ``detected`` pairs against the frequent subset of ``true_counts``.

    Ground truth is every pair whose exact frequency is at least
    ``min_support``.  Detected pairs below that truth set count as false
    positives *only if* they are also infrequent in truth -- a detected pair
    that is genuinely frequent is a true positive regardless of the tally
    the synopsis happened to keep for it.
    """
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    truth: Set[Hashable] = {
        pair for pair, count in true_counts.items() if count >= min_support
    }
    detected_set = set(detected)

    true_positives = len(truth & detected_set)
    false_positives = len(detected_set - truth)
    false_negatives = len(truth - detected_set)

    truth_weight = sum(true_counts[pair] for pair in truth)
    captured_weight = sum(true_counts[pair] for pair in truth & detected_set)
    weighted_recall = captured_weight / truth_weight if truth_weight else 1.0

    return DetectionMetrics(
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
        weighted_recall=weighted_recall,
    )
