"""Temporal activity of correlations.

Concept drift (Fig. 10) is the coarse form of a finer question: *when* is
each correlation active?  A pair may be strong in the morning batch window
and absent at night; an optimizer that places data by correlation wants to
know whether the relation is current.  This module bins a transaction
stream into fixed-size windows and produces per-pair activity series, plus
summary measures (burstiness, active span) used by the drift analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.extent import Extent, ExtentPair, unique_pairs


@dataclass(frozen=True)
class ActivitySeries:
    """Occurrences of one pair per window of the stream."""

    pair: ExtentPair
    counts: Tuple[int, ...]

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def active_windows(self) -> int:
        return sum(1 for count in self.counts if count > 0)

    @property
    def active_fraction(self) -> float:
        """Share of windows in which the pair occurred at all."""
        if not self.counts:
            return 0.0
        return self.active_windows / len(self.counts)

    def first_active_window(self) -> Optional[int]:
        for index, count in enumerate(self.counts):
            if count > 0:
                return index
        return None

    def last_active_window(self) -> Optional[int]:
        for index in range(len(self.counts) - 1, -1, -1):
            if self.counts[index] > 0:
                return index
        return None

    @property
    def burstiness(self) -> float:
        """Peak-to-mean ratio of the per-window counts (1.0 = steady).

        A steadily recurring correlation (the kind worth optimizing for)
        scores near 1; a correlation from a single burst scores near the
        window count.
        """
        active = [count for count in self.counts if count > 0]
        if not active:
            return 0.0
        mean = self.total / len(self.counts)
        return max(active) / mean if mean else 0.0


def pair_activity(
    transactions: Sequence[Sequence[Extent]],
    watched: Iterable[ExtentPair],
    windows: int = 10,
) -> Dict[ExtentPair, ActivitySeries]:
    """Per-window occurrence counts for each watched pair.

    The stream is cut into ``windows`` equal transaction-count windows
    (the last absorbs the remainder).  Only watched pairs are counted, so
    cost is O(stream x transaction-size^2) with a small constant.
    """
    if windows < 1:
        raise ValueError(f"windows must be >= 1, got {windows}")
    watched_set = set(watched)
    counts: Dict[ExtentPair, List[int]] = {
        pair: [0] * windows for pair in watched_set
    }
    total = len(transactions)
    if total == 0:
        return {
            pair: ActivitySeries(pair, tuple(series))
            for pair, series in counts.items()
        }
    per_window = max(1, total // windows)
    for index, extents in enumerate(transactions):
        window = min(index // per_window, windows - 1)
        for pair in unique_pairs(extents):
            if pair in watched_set:
                counts[pair][window] += 1
    return {
        pair: ActivitySeries(pair, tuple(series))
        for pair, series in counts.items()
    }


def steady_pairs(
    activity: Mapping[ExtentPair, ActivitySeries],
    min_active_fraction: float = 0.5,
) -> List[ExtentPair]:
    """Pairs active in at least ``min_active_fraction`` of the windows --
    the durable correlations an optimizer should act on."""
    if not 0.0 <= min_active_fraction <= 1.0:
        raise ValueError("min_active_fraction must be in [0, 1]")
    return sorted(
        (
            pair for pair, series in activity.items()
            if series.active_fraction >= min_active_fraction
        ),
    )
