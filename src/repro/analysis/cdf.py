"""Cumulative distributions of correlation frequencies (paper Fig. 5).

Figure 5 plots, against correlation frequency, the fraction of extent
correlations counted by *unique* pairs (solid line) and weighted by
frequency (dashed line).  The unique-pair CDF rising quickly while the
weighted CDF rises slowly is the Zipf signature that justifies a small
synopsis: most unique pairs are infrequent and can be ignored, while the
few frequent pairs carry most of the total frequency.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Tuple


@dataclass(frozen=True)
class CorrelationCdf:
    """Both Fig. 5 curves, sampled at every distinct frequency."""

    frequencies: Tuple[int, ...]          # sorted distinct frequency values
    unique_fractions: Tuple[float, ...]   # solid line
    weighted_fractions: Tuple[float, ...]  # dashed line
    total_pairs: int
    total_frequency: int

    def unique_at(self, frequency: int) -> float:
        """Fraction of unique pairs with frequency <= ``frequency``."""
        return self._lookup(self.unique_fractions, frequency)

    def weighted_at(self, frequency: int) -> float:
        """Fraction of total frequency carried by pairs <= ``frequency``."""
        return self._lookup(self.weighted_fractions, frequency)

    def _lookup(self, series: Tuple[float, ...], frequency: int) -> float:
        result = 0.0
        for value, fraction in zip(self.frequencies, series):
            if value > frequency:
                break
            result = fraction
        return result

    @property
    def support_one_fraction(self) -> float:
        """Fraction of unique pairs occurring exactly once.

        For wdev/src2/rsrch the paper reads roughly three quarters off this
        point of the solid line.
        """
        return self.unique_at(1)

    def knee(self, rise_fraction: float = 0.9) -> int:
        """Smallest frequency at which the unique CDF reaches ``rise_fraction``.

        The paper selects support 5 for the real workloads as "past the knee
        of the unique pairs curve"; this helper finds that knee.
        """
        for value, fraction in zip(self.frequencies, self.unique_fractions):
            if fraction >= rise_fraction:
                return value
        return self.frequencies[-1] if self.frequencies else 0


def correlation_cdf(counts: Mapping[Hashable, int]) -> CorrelationCdf:
    """Build both Fig. 5 curves from a pair-frequency map."""
    if not counts:
        raise ValueError("cannot build a CDF from zero correlations")
    histogram = Counter(counts.values())
    total_pairs = len(counts)
    total_frequency = sum(counts.values())

    frequencies: List[int] = []
    unique_fractions: List[float] = []
    weighted_fractions: List[float] = []
    running_pairs = 0
    running_frequency = 0
    for frequency in sorted(histogram):
        pairs_here = histogram[frequency]
        running_pairs += pairs_here
        running_frequency += frequency * pairs_here
        frequencies.append(frequency)
        unique_fractions.append(running_pairs / total_pairs)
        weighted_fractions.append(running_frequency / total_frequency)

    return CorrelationCdf(
        frequencies=tuple(frequencies),
        unique_fractions=tuple(unique_fractions),
        weighted_fractions=tuple(weighted_fractions),
        total_pairs=total_pairs,
        total_frequency=total_frequency,
    )
