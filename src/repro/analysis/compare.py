"""Agreement measures between the synopsis and exact ground truth.

Accuracy (did we find the frequent pairs?) is one axis; *fidelity* of the
strength estimates is another: an optimizer that prioritises by tally needs
the synopsis to rank pairs the way the true frequencies do.  This module
measures that with rank and weight agreement:

* **Kendall tau** over the pairs both sides know, on their tallies;
* **top-k overlap** -- how much of the true top-k the synopsis's top-k hits;
* **weighted Jaccard** of the two count vectors (min/max of tallies),
  which penalises undercounting proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Tuple

from scipy import stats


@dataclass(frozen=True)
class AgreementReport:
    """How faithfully the synopsis mirrors the exact counts."""

    common_pairs: int
    kendall_tau: float
    kendall_p: float
    top_k: int
    top_k_overlap: float
    weighted_jaccard: float


def _top_keys(counts: Mapping[Hashable, int], k: int):
    ordered = sorted(counts.items(), key=lambda entry: (-entry[1], repr(entry[0])))
    return {key for key, _count in ordered[:k]}


def rank_agreement(
    true_counts: Mapping[Hashable, int],
    synopsis_counts: Mapping[Hashable, int],
    top_k: int = 50,
) -> AgreementReport:
    """Score the synopsis's tallies against exact pair counts."""
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    common = sorted(
        set(true_counts) & set(synopsis_counts), key=repr
    )
    if len(common) >= 2:
        true_values = [true_counts[key] for key in common]
        synopsis_values = [synopsis_counts[key] for key in common]
        tau, p_value = stats.kendalltau(true_values, synopsis_values)
        if tau != tau:  # NaN when one side is constant
            tau, p_value = 1.0, 1.0
    else:
        tau, p_value = 1.0, 1.0

    k = min(top_k, len(true_counts)) or 1
    true_top = _top_keys(true_counts, k)
    synopsis_top = _top_keys(synopsis_counts, k) if synopsis_counts else set()
    overlap = len(true_top & synopsis_top) / len(true_top) if true_top else 1.0

    all_keys = set(true_counts) | set(synopsis_counts)
    numerator = sum(
        min(true_counts.get(key, 0), synopsis_counts.get(key, 0))
        for key in all_keys
    )
    denominator = sum(
        max(true_counts.get(key, 0), synopsis_counts.get(key, 0))
        for key in all_keys
    )
    weighted_jaccard = numerator / denominator if denominator else 1.0

    return AgreementReport(
        common_pairs=len(common),
        kendall_tau=float(tau),
        kendall_p=float(p_value),
        top_k=k,
        top_k_overlap=overlap,
        weighted_jaccard=weighted_jaccard,
    )
