"""Diffing correlation snapshots.

Concept drift (Fig. 10) shows up operationally as snapshot-to-snapshot
change: which correlations appeared, which faded, which strengthened.  An
optimization module acting on the synopsis wants exactly this delta -- a
placement engine migrates data for *new* strong correlations and reclaims
arrangements whose correlations are *gone*.  This module computes that
delta between two ``{pair: tally}`` snapshots (from
``OnlineAnalyzer.pair_frequencies()`` or ``frequent_pairs`` output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from ..core.extent import ExtentPair


@dataclass(frozen=True)
class SnapshotDiff:
    """What changed between two correlation snapshots."""

    appeared: Tuple[Tuple[ExtentPair, int], ...]
    vanished: Tuple[Tuple[ExtentPair, int], ...]
    strengthened: Tuple[Tuple[ExtentPair, int, int], ...]  # pair, old, new
    weakened: Tuple[Tuple[ExtentPair, int, int], ...]
    unchanged: int

    @property
    def churn(self) -> int:
        """Membership changes: appearances plus disappearances."""
        return len(self.appeared) + len(self.vanished)

    @property
    def stability(self) -> float:
        """Jaccard similarity of the two snapshots' pair sets."""
        common = len(self.strengthened) + len(self.weakened) + self.unchanged
        union = common + self.churn
        return common / union if union else 1.0


def diff_snapshots(
    before: Mapping[ExtentPair, int],
    after: Mapping[ExtentPair, int],
    min_change: int = 1,
) -> SnapshotDiff:
    """Compute the delta from ``before`` to ``after``.

    Tally movements smaller than ``min_change`` count as unchanged --
    synopsis tallies tick up on every occurrence, so a tolerance separates
    "still quietly active" from "genuinely strengthening".
    """
    if min_change < 1:
        raise ValueError(f"min_change must be >= 1, got {min_change}")
    appeared: List[Tuple[ExtentPair, int]] = []
    vanished: List[Tuple[ExtentPair, int]] = []
    strengthened: List[Tuple[ExtentPair, int, int]] = []
    weakened: List[Tuple[ExtentPair, int, int]] = []
    unchanged = 0

    for pair, new_tally in after.items():
        old_tally = before.get(pair)
        if old_tally is None:
            appeared.append((pair, new_tally))
        elif new_tally - old_tally >= min_change:
            strengthened.append((pair, old_tally, new_tally))
        elif old_tally - new_tally >= min_change:
            weakened.append((pair, old_tally, new_tally))
        else:
            unchanged += 1
    for pair, old_tally in before.items():
        if pair not in after:
            vanished.append((pair, old_tally))

    appeared.sort(key=lambda entry: (-entry[1], entry[0]))
    vanished.sort(key=lambda entry: (-entry[1], entry[0]))
    strengthened.sort(key=lambda entry: (entry[1] - entry[2], entry[0]))
    weakened.sort(key=lambda entry: (entry[2] - entry[1], entry[0]))
    return SnapshotDiff(
        appeared=tuple(appeared),
        vanished=tuple(vanished),
        strengthened=tuple(strengthened),
        weakened=tuple(weakened),
        unchanged=unchanged,
    )


def drift_series(
    snapshots: List[Mapping[ExtentPair, int]],
    min_change: int = 1,
) -> List[SnapshotDiff]:
    """Diffs between consecutive snapshots -- a drift time series."""
    return [
        diff_snapshots(before, after, min_change)
        for before, after in zip(snapshots, snapshots[1:])
    ]
