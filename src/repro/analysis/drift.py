"""Concept-drift adaptation metrics (paper Fig. 10).

The paper splices wdev -> hm -> wdev and inspects the synopsis at the three
segment boundaries: the wdev pattern forms, is displaced by hm (the table is
too small to hold both), and re-forms as hm fades.  We quantify "which
concept does the synopsis currently hold" by attributing each resident pair
to the concept(s) whose frequent set contains it and reporting the affinity
towards each concept at every snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from ..core.analyzer import OnlineAnalyzer
from ..core.extent import Extent, ExtentPair


@dataclass(frozen=True)
class DriftSnapshot:
    """Synopsis composition at one point of the drift experiment."""

    label: str
    resident_pairs: int
    affinity: Dict[str, float]   # concept name -> fraction of residents from it

    def dominant_concept(self) -> str:
        """The concept with the highest affinity at this snapshot."""
        if not self.affinity:
            raise ValueError("snapshot has no affinities")
        return max(self.affinity, key=lambda name: self.affinity[name])


def concept_affinity(
    resident: Iterable[ExtentPair],
    concept_sets: Mapping[str, Set[ExtentPair]],
) -> Dict[str, float]:
    """Fraction of resident pairs belonging to each concept's frequent set."""
    residents = set(resident)
    if not residents:
        return {name: 0.0 for name in concept_sets}
    return {
        name: len(residents & pairs) / len(residents)
        for name, pairs in concept_sets.items()
    }


def run_drift_experiment(
    analyzer: OnlineAnalyzer,
    segments: Sequence[Tuple[str, Sequence[Sequence[Extent]]]],
    concept_sets: Mapping[str, Set[ExtentPair]],
) -> List[DriftSnapshot]:
    """Feed labelled transaction segments and snapshot after each.

    ``segments`` is a sequence of ``(label, transactions)``; after each
    segment the resident pair set is scored against every concept's
    frequent set, producing one :class:`DriftSnapshot` per boundary -- the
    three points in time Fig. 10 visualises.
    """
    snapshots: List[DriftSnapshot] = []
    for label, transactions in segments:
        analyzer.process_stream(transactions)
        resident = list(analyzer.pair_frequencies())
        snapshots.append(
            DriftSnapshot(
                label=label,
                resident_pairs=len(resident),
                affinity=concept_affinity(resident, concept_sets),
            )
        )
    return snapshots
