"""Rasterisation of traces and correlation point sets (paper Figs 1, 7, 8).

The paper's visual evidence comes in two forms:

* **storage heat maps** (Fig. 1): request sequence on the horizontal axis,
  starting block on the vertical, brightness = access count;
* **correlation plots** (Figs 7/8): for every correlated pair of blocks
  ``(A, B)``, points at ``(A, B)`` and ``(B, A)``; extent pairs appear as
  rectangles, intra-extent runs as squares on the diagonal.

Figures are "visually recognizably similar" between offline and online
analysis -- a claim we make testable by rasterising both point sets onto a
common grid and measuring their overlap.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from ..core.extent import ExtentPair
from ..trace.record import TraceRecord


def trace_heatmap(
    records: Sequence[TraceRecord],
    sequence_bins: int = 64,
    block_bins: int = 64,
) -> np.ndarray:
    """Fig. 1-style heat map: request sequence vs starting block.

    Returns a ``(block_bins, sequence_bins)`` array of request counts with
    row 0 at the lowest block numbers.
    """
    if not records:
        raise ValueError("cannot build a heat map of an empty trace")
    grid = np.zeros((block_bins, sequence_bins), dtype=np.int64)
    max_block = max(record.start + record.length for record in records)
    for index, record in enumerate(records):
        column = index * sequence_bins // len(records)
        row = min(record.start * block_bins // max(1, max_block), block_bins - 1)
        grid[row, column] += 1
    return grid


def pair_rectangles(
    counts: Mapping[ExtentPair, int],
    min_support: int = 1,
) -> List[Tuple[int, int, int, int, int]]:
    """Correlation rectangles ``(x0, x1, y0, y1, count)`` in block space.

    Each extent pair contributes both orientations, as in the paper's
    plots; callers wanting only the upper triangle can filter on x0 < y0.
    """
    rectangles: List[Tuple[int, int, int, int, int]] = []
    for pair, count in counts.items():
        if count < min_support:
            continue
        a, b = pair.first, pair.second
        rectangles.append((a.start, a.end, b.start, b.end, count))
        rectangles.append((b.start, b.end, a.start, a.end, count))
    return rectangles


def rasterize_pairs(
    counts: Mapping[ExtentPair, int],
    min_support: int = 1,
    bins: int = 128,
    max_block: int = None,
) -> np.ndarray:
    """Rasterise a correlation point set onto a ``bins x bins`` grid.

    Cells covered by any rectangle of a qualifying pair are set to that
    pair's count (summing overlaps).  The raster, not the raw point set, is
    what similarity comparisons run on: it is insensitive to sub-cell shape
    differences, mirroring "visually similar".
    """
    grid = np.zeros((bins, bins), dtype=np.int64)
    rectangles = pair_rectangles(counts, min_support)
    if not rectangles:
        return grid
    if max_block is None:
        max_block = max(max(x1, y1) for _x0, x1, _y0, y1, _c in rectangles)
    scale = bins / max(1, max_block)
    for x0, x1, y0, y1, count in rectangles:
        column0 = min(int(x0 * scale), bins - 1)
        column1 = min(max(int(x1 * scale), column0 + 1), bins)
        row0 = min(int(y0 * scale), bins - 1)
        row1 = min(max(int(y1 * scale), row0 + 1), bins)
        grid[row0:row1, column0:column1] += count
    return grid


def raster_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard similarity of the occupied cells of two rasters.

    1.0 means the two plots light up exactly the same cells; 0.0 means they
    are disjoint.  This is the quantitative stand-in for the paper's
    "visually recognizably similar" comparison of offline and online plots.
    """
    if a.shape != b.shape:
        raise ValueError(f"raster shapes differ: {a.shape} vs {b.shape}")
    occupied_a = a > 0
    occupied_b = b > 0
    union = np.logical_or(occupied_a, occupied_b).sum()
    if union == 0:
        return 1.0
    intersection = np.logical_and(occupied_a, occupied_b).sum()
    return float(intersection) / float(union)


def raster_containment(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Fraction of the reference plot's occupied cells also lit in candidate.

    Useful when the online plot is expected to be a *subset* of the offline
    support-1 plot (it holds fewer, more frequent pairs).
    """
    if reference.shape != candidate.shape:
        raise ValueError(
            f"raster shapes differ: {reference.shape} vs {candidate.shape}"
        )
    occupied_reference = reference > 0
    if not occupied_reference.any():
        return 1.0
    overlap = np.logical_and(occupied_reference, candidate > 0).sum()
    return float(overlap) / float(occupied_reference.sum())


def save_pgm(grid: np.ndarray, path, gamma: float = 0.5) -> None:
    """Write a raster as a binary PGM image (no plotting dependencies).

    Intensity is gamma-compressed so sparse correlation plots stay visible
    against their dominant peaks; row order is flipped so the lowest block
    numbers sit at the bottom, matching the paper's figures.  The file is
    viewable in any image viewer and convertible with ImageMagick et al.
    """
    if grid.ndim != 2:
        raise ValueError(f"expected a 2-D grid, got shape {grid.shape}")
    if gamma <= 0:
        raise ValueError(f"gamma must be > 0, got {gamma}")
    peak = float(grid.max())
    if peak > 0:
        normalized = (np.asarray(grid, dtype=np.float64) / peak) ** gamma
    else:
        normalized = np.zeros_like(grid, dtype=np.float64)
    pixels = (normalized * 255).astype(np.uint8)[::-1]
    height, width = pixels.shape
    with open(path, "wb") as stream:
        stream.write(f"P5\n{width} {height}\n255\n".encode("ascii"))
        stream.write(pixels.tobytes())


def load_pgm(path) -> np.ndarray:
    """Read back a binary PGM written by :func:`save_pgm` (for tests)."""
    with open(path, "rb") as stream:
        magic = stream.readline().strip()
        if magic != b"P5":
            raise ValueError(f"not a binary PGM: {magic!r}")
        dimensions = stream.readline().split()
        width, height = int(dimensions[0]), int(dimensions[1])
        maxval = int(stream.readline())
        if maxval != 255:
            raise ValueError(f"unsupported max value {maxval}")
        data = np.frombuffer(stream.read(width * height), dtype=np.uint8)
    return data.reshape((height, width))[::-1]


def ascii_render(grid: np.ndarray, width: int = 64) -> str:
    """Render a raster as ASCII art (for the example scripts).

    Rows are printed top-to-bottom with the highest block numbers first so
    the orientation matches the paper's figures.
    """
    if grid.size == 0:
        return ""
    shades = " .:-=+*#%@"
    peak = grid.max()
    rows: List[str] = []
    step = max(1, grid.shape[1] // width)
    for row in grid[::-1, ::step]:
        if peak == 0:
            rows.append(" " * len(row))
            continue
        line = "".join(
            shades[min(int(value * (len(shades) - 1) / peak), len(shades) - 1)]
            for value in row
        )
        rows.append(line)
    return "\n".join(rows)
