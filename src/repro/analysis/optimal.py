"""Optimal table-size / coverage curves (paper Fig. 6).

If all extent pairs are sorted by decreasing frequency, the sum of the top
``n`` frequencies is the best total frequency any ``n``-entry correlation
table could represent.  Figure 6 plots that optimal fraction against ``n``;
it both bounds the online synopsis from above (Fig. 9 normalises by it) and
reads off the minimum table size needed to cover a target fraction.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass
from typing import Hashable, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class OptimalCurve:
    """Cumulative optimal coverage: ``fractions[i]`` covers ``i + 1`` pairs."""

    sorted_counts: Tuple[int, ...]        # descending pair frequencies
    cumulative_fractions: Tuple[float, ...]
    total_frequency: int

    @property
    def unique_pairs(self) -> int:
        return len(self.sorted_counts)

    def fraction_for_size(self, table_entries: int) -> float:
        """Best possible frequency fraction for a table of ``table_entries``."""
        if table_entries < 0:
            raise ValueError(f"table size must be >= 0, got {table_entries}")
        if table_entries == 0 or not self.cumulative_fractions:
            return 0.0
        index = min(table_entries, len(self.cumulative_fractions)) - 1
        return self.cumulative_fractions[index]

    def size_for_fraction(self, fraction: float) -> int:
        """Minimum entries needed to cover ``fraction`` of total frequency."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if fraction == 0.0:
            return 0
        index = bisect.bisect_left(self.cumulative_fractions, fraction)
        if index >= len(self.cumulative_fractions):
            return len(self.cumulative_fractions)
        return index + 1

    def series(
        self, sizes: Sequence[int]
    ) -> List[Tuple[int, float]]:
        """The Fig. 6 series sampled at the given table sizes."""
        return [(size, self.fraction_for_size(size)) for size in sizes]


def optimal_curve(counts: Mapping[Hashable, int]) -> OptimalCurve:
    """Build the optimal coverage curve from a pair-frequency map."""
    if not counts:
        raise ValueError("cannot build an optimal curve from zero correlations")
    ordered = sorted(counts.values(), reverse=True)
    total = sum(ordered)
    cumulative = [
        running / total for running in itertools.accumulate(ordered)
    ]
    return OptimalCurve(
        sorted_counts=tuple(ordered),
        cumulative_fractions=tuple(cumulative),
        total_frequency=total,
    )


def power_of_two_sizes(minimum: int, maximum: int) -> List[int]:
    """Powers of two in ``[minimum, maximum]`` -- the paper's size sweep."""
    if minimum < 1 or maximum < minimum:
        raise ValueError(f"bad range [{minimum}, {maximum}]")
    sizes: List[int] = []
    size = 1
    while size < minimum:
        size *= 2
    while size <= maximum:
        sizes.append(size)
        size *= 2
    return sizes
