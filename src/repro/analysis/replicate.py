"""Seed replication and confidence intervals for experiments.

Single-run results can ride on a lucky seed.  Every generator and device
model in this repository is seed-deterministic, so replication is cheap:
run the experiment across seeds and summarise.  The benchmark harness uses
this to show the headline results are properties of the system, not of a
particular random stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from scipy import stats


@dataclass(frozen=True)
class Replication:
    """Summary of one metric across replicated runs."""

    values: Tuple[float, ...]
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def runs(self) -> int:
        return len(self.values)

    def __str__(self) -> str:
        return (
            f"{self.mean:.3f} +/- {(self.ci_high - self.ci_low) / 2:.3f} "
            f"({int(self.confidence * 100)}% CI, n={self.runs})"
        )


def summarize(values: Sequence[float], confidence: float = 0.95
              ) -> Replication:
    """Mean and Student-t confidence interval of replicated values."""
    if not values:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Replication(tuple(values), mean, 0.0, mean, mean, confidence)
    variance = sum((value - mean) ** 2 for value in values) / (n - 1)
    std = math.sqrt(variance)
    t_critical = stats.t.ppf((1 + confidence) / 2, df=n - 1)
    half_width = t_critical * std / math.sqrt(n)
    return Replication(
        values=tuple(values),
        mean=mean,
        std=std,
        ci_low=mean - half_width,
        ci_high=mean + half_width,
        confidence=confidence,
    )


def replicate(
    experiment: Callable[[int], float],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> Replication:
    """Run ``experiment(seed)`` for every seed and summarise the metric."""
    if not seeds:
        raise ValueError("need at least one seed")
    values = [float(experiment(seed)) for seed in seeds]
    return summarize(values, confidence)
