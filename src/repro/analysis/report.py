"""One-shot characterization reports.

Pulls the whole toolbox together: replay a trace through the real-time
pipeline with a *typed* analyzer, then summarise everything an operator
(or an automatic optimization module) would want to know -- workload
statistics, transaction shape, correlation strength distribution, R/W type
composition, sequential-vs-semantic composition, top correlations, and
association rules.  The CLI's ``repro report`` subcommand renders this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import AnalyzerConfig
from ..core.extent import ExtentPair
from ..core.typed import CorrelationKind, TypedOnlineAnalyzer
from ..fim.rules import AssociationRule, rules_from_analyzer
from ..monitor.monitor import MonitorStats
from ..pipeline import run_pipeline
from ..trace.record import TraceRecord
from ..trace.stats import TraceStats, compute_stats
from .cdf import CorrelationCdf, correlation_cdf
from .sequential import (
    ClassifierConfig,
    PatternComposition,
    PatternKind,
    classify_correlations,
)


@dataclass
class CharacterizationReport:
    """Everything one pipeline run learned about a workload."""

    trace_stats: TraceStats
    monitor_stats: MonitorStats
    top_pairs: List[Tuple[ExtentPair, int]]
    rules: List[AssociationRule]
    kind_summary: Dict[CorrelationKind, int]
    pattern_composition: PatternComposition
    cdf: Optional[CorrelationCdf]
    support: int
    capacity: int

    @property
    def detected_correlations(self) -> int:
        return len(self.top_pairs)


def build_report(
    records: Sequence[TraceRecord],
    support: int = 5,
    capacity: int = 16 * 1024,
    top: int = 20,
    min_confidence: float = 0.5,
    classifier: ClassifierConfig = ClassifierConfig(),
    **pipeline_kwargs,
) -> CharacterizationReport:
    """Characterize a trace end to end and assemble the report."""
    analyzer = TypedOnlineAnalyzer(AnalyzerConfig(
        item_capacity=capacity, correlation_capacity=capacity
    ))
    result = run_pipeline(records, analyzer=analyzer,
                          record_offline=False, **pipeline_kwargs)

    frequent = analyzer.frequent_pairs(min_support=support)
    resident = analyzer.pair_frequencies()
    return CharacterizationReport(
        trace_stats=compute_stats(records),
        monitor_stats=result.monitor_stats,
        top_pairs=frequent[:top],
        rules=rules_from_analyzer(analyzer, min_support=support,
                                  min_confidence=min_confidence)[:top],
        kind_summary=analyzer.kind_summary(),
        pattern_composition=classify_correlations(
            dict(frequent), classifier
        ),
        cdf=correlation_cdf(resident) if resident else None,
        support=support,
        capacity=capacity,
    )


def render_report(report: CharacterizationReport, name: str = "trace") -> str:
    """Render a report as the multi-section text the CLI prints."""
    stats = report.trace_stats
    monitor = report.monitor_stats
    lines: List[str] = []
    lines.append(f"=== Characterization of {name} ===")
    lines.append("")
    lines.append("[workload]")
    lines.append(f"  requests            {stats.requests}")
    lines.append(f"  total data          {stats.total_gb:.3f} GB")
    lines.append(
        f"  unique data         {stats.unique_gb:.3f} GB "
        f"({stats.total_bytes / stats.unique_bytes:.1f}x reuse)"
    )
    lines.append(
        f"  interarrival <100us {stats.fast_interarrival_percent:.1f}%"
    )
    lines.append(f"  reads               {100 * stats.read_fraction:.1f}%")
    lines.append("")
    lines.append("[monitoring]")
    lines.append(f"  transactions        {monitor.transactions_emitted}")
    lines.append(f"  duplicates removed  {monitor.duplicates_removed}")
    lines.append(f"  size splits         {monitor.size_splits}")
    lines.append("")
    lines.append(f"[correlations]  (support >= {report.support}, "
                 f"C = {report.capacity})")
    lines.append(f"  detected            {report.detected_correlations}")
    if report.cdf is not None:
        lines.append(
            f"  resident one-offs   "
            f"{100 * report.cdf.support_one_fraction:.1f}%"
        )
    kinds = report.kind_summary
    lines.append(
        f"  types               read {kinds[CorrelationKind.READ]}, "
        f"write {kinds[CorrelationKind.WRITE]}, "
        f"mixed {kinds[CorrelationKind.MIXED]}"
    )
    composition = report.pattern_composition
    lines.append(
        "  spatial             "
        + ", ".join(
            f"{kind.value} {100 * composition.fraction(kind):.0f}%"
            for kind in PatternKind
        )
    )
    lines.append("")
    lines.append("[top correlations]")
    for pair, tally in report.top_pairs[:10]:
        lines.append(f"  {pair}  x{tally}")
    if not report.top_pairs:
        lines.append("  (none)")
    lines.append("")
    lines.append("[rules]")
    for rule in report.rules[:10]:
        lines.append(f"  {rule}")
    if not report.rules:
        lines.append("  (none)")
    return "\n".join(lines)
