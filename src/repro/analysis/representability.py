"""Representability of the online synopsis versus optimal (paper Fig. 9).

For a correlation table holding a set of resident pairs, the *captured*
fraction is the share of total true pair frequency those residents account
for.  The *optimal* fraction for the same number of entries comes from the
Fig. 6 curve.  Figure 9 plots captured/optimal against table size: low for
tiny tables (valuable pairs get evicted before becoming frequent), rising
to 1.0 once the table can hold every pair, with dips for traces with long
infrequent tails (stg, hm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..core.analyzer import OnlineAnalyzer
from ..core.config import AnalyzerConfig
from ..core.extent import Extent, ExtentPair
from .optimal import OptimalCurve, optimal_curve


@dataclass(frozen=True)
class Representability:
    """One point of the Fig. 9 curve."""

    table_entries: int       # resident pair count actually used
    captured_fraction: float
    optimal_fraction: float

    @property
    def quality(self) -> float:
        """Captured relative to optimal -- the Fig. 9 vertical axis."""
        if self.optimal_fraction == 0.0:
            return 1.0 if self.captured_fraction == 0.0 else 0.0
        return self.captured_fraction / self.optimal_fraction


def representability(
    true_counts: Mapping[ExtentPair, int],
    resident_pairs: Iterable[ExtentPair],
    curve: OptimalCurve = None,
) -> Representability:
    """Score a synopsis's resident pair set against the ground truth."""
    if curve is None:
        curve = optimal_curve(true_counts)
    residents = set(resident_pairs)
    captured = sum(true_counts.get(pair, 0) for pair in residents)
    captured_fraction = (
        captured / curve.total_frequency if curve.total_frequency else 0.0
    )
    optimal_fraction = curve.fraction_for_size(len(residents))
    return Representability(
        table_entries=len(residents),
        captured_fraction=captured_fraction,
        optimal_fraction=optimal_fraction,
    )


def sweep_table_sizes(
    transactions: Sequence[Sequence[Extent]],
    true_counts: Mapping[ExtentPair, int],
    capacities: Sequence[int],
    base_config: AnalyzerConfig = None,
) -> List[Tuple[int, Representability]]:
    """Run the online analyzer at each capacity and score it (Fig. 9).

    ``capacities`` are per-tier correlation-table entry counts ``C`` (the
    paper sweeps powers of two).  The item table is sized to match.  Each
    run is a fresh single pass over the same recorded transactions.
    """
    if base_config is None:
        base_config = AnalyzerConfig()
    curve = optimal_curve(true_counts)
    results: List[Tuple[int, Representability]] = []
    for capacity in capacities:
        config = AnalyzerConfig(
            item_capacity=capacity,
            correlation_capacity=capacity,
            promote_threshold=base_config.promote_threshold,
            t2_ratio=base_config.t2_ratio,
            demote_on_item_eviction=base_config.demote_on_item_eviction,
        )
        analyzer = OnlineAnalyzer(config)
        analyzer.process_stream(transactions)
        resident = list(analyzer.pair_frequencies())
        results.append((capacity, representability(true_counts, resident, curve)))
    return results
