"""Sequential versus semantic correlation classification.

The paper distinguishes two origins of correlations (Sections I, II-A):
*sequential* patterns, "represented by adjacent blocks", and *random*
patterns "commonly formed as a result of semantic relationships that are
harder to infer" (an inode and its data, a web request and its database
table).  The two call for different optimizations -- sequential runs
benefit from readahead and striping, semantic correlations from co-location
or parallel placement -- so this module classifies a correlation set and
summarises its composition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

from ..core.extent import ExtentPair


class PatternKind(enum.Enum):
    """Spatial relationship between a pair's two extents."""

    SEQUENTIAL = "sequential"   # adjacent, or within the near gap
    NEAR = "near"               # same neighbourhood (within locality span)
    SCATTERED = "scattered"     # far apart: semantically correlated


@dataclass(frozen=True)
class ClassifierConfig:
    """Distance thresholds, in blocks.

    ``sequential_gap`` is the maximum gap between extent ends for a pair to
    count as one (possibly split) sequential run -- 0 means strictly
    adjacent; small values tolerate request-merging artefacts.
    ``locality_span`` bounds the NEAR class: correlations within one
    file/database region rather than across the disk.
    """

    sequential_gap: int = 8
    locality_span: int = 2048

    def __post_init__(self) -> None:
        if self.sequential_gap < 0:
            raise ValueError("sequential_gap must be >= 0")
        if self.locality_span <= self.sequential_gap:
            raise ValueError("locality_span must exceed sequential_gap")


def classify_pair(pair: ExtentPair,
                  config: ClassifierConfig = ClassifierConfig()) -> PatternKind:
    """Classify one extent pair by the gap between its members.

    The gap is measured between the lower extent's end and the higher
    extent's start; overlapping extents have gap zero.
    """
    low, high = pair.first, pair.second
    gap = max(0, high.start - low.end)
    if gap <= config.sequential_gap:
        return PatternKind.SEQUENTIAL
    if gap <= config.locality_span:
        return PatternKind.NEAR
    return PatternKind.SCATTERED


@dataclass
class PatternComposition:
    """How a correlation set splits across pattern kinds."""

    counts: Dict[PatternKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in PatternKind}
    )
    weights: Dict[PatternKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in PatternKind}
    )

    @property
    def total_pairs(self) -> int:
        return sum(self.counts.values())

    @property
    def total_weight(self) -> int:
        return sum(self.weights.values())

    def fraction(self, kind: PatternKind) -> float:
        """Share of unique pairs of the given kind."""
        return (
            self.counts[kind] / self.total_pairs if self.total_pairs else 0.0
        )

    def weighted_fraction(self, kind: PatternKind) -> float:
        """Share of total frequency carried by pairs of the given kind."""
        return (
            self.weights[kind] / self.total_weight
            if self.total_weight else 0.0
        )


def classify_correlations(
    counts: Mapping[ExtentPair, int],
    config: ClassifierConfig = ClassifierConfig(),
) -> PatternComposition:
    """Classify every pair of a correlation-count map."""
    composition = PatternComposition()
    for pair, count in counts.items():
        kind = classify_pair(pair, config)
        composition.counts[kind] += 1
        composition.weights[kind] += count
    return composition


def split_by_kind(
    counts: Mapping[ExtentPair, int],
    config: ClassifierConfig = ClassifierConfig(),
) -> Dict[PatternKind, Dict[ExtentPair, int]]:
    """Partition a correlation-count map by pattern kind."""
    partitions: Dict[PatternKind, Dict[ExtentPair, int]] = {
        kind: {} for kind in PatternKind
    }
    for pair, count in counts.items():
        partitions[classify_pair(pair, config)][pair] = count
    return partitions
