"""Time-to-detection: when does a correlation become known?

The paper's core operational argument is *timeliness*: offline analysis
"prevents timely reaction to I/O bottlenecks" because nothing is known
until the trace has been recorded, stored, and mined, whereas the online
synopsis knows a correlation the moment its tally crosses the support
threshold.  This module instruments a transaction stream to record, for a
set of watched pairs, the transaction index (and stream time) at which the
synopsis first reports each one -- the *detection latency* that the
timeliness claim cashes out to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.analyzer import OnlineAnalyzer
from ..core.extent import Extent, ExtentPair, unique_pairs


@dataclass
class DetectionEvent:
    """When one watched pair crossed the support threshold."""

    pair: ExtentPair
    transaction_index: int           # 1-based index in the stream
    occurrence: int                  # how many co-occurrences it had taken
    stream_fraction: float           # position in [0, 1] of the stream


@dataclass
class DetectionTimeline:
    """Detection events for every watched pair (None = never detected)."""

    detections: Dict[ExtentPair, Optional[DetectionEvent]]
    transactions: int

    def detected(self) -> List[DetectionEvent]:
        return [event for event in self.detections.values()
                if event is not None]

    def missed(self) -> List[ExtentPair]:
        return [pair for pair, event in self.detections.items()
                if event is None]

    @property
    def detection_ratio(self) -> float:
        if not self.detections:
            return 1.0
        return len(self.detected()) / len(self.detections)

    def mean_stream_fraction(self) -> float:
        """Average position in the stream at which detection happened.

        0.1 means the framework knew the watched correlations after seeing
        a tenth of the workload; offline analysis by definition sits at
        1.0 (plus mining time).
        """
        events = self.detected()
        if not events:
            return 1.0
        return sum(event.stream_fraction for event in events) / len(events)


def measure_detection_latency(
    transactions: Sequence[Sequence[Extent]],
    watched: Iterable[ExtentPair],
    analyzer: OnlineAnalyzer,
    min_support: int = 5,
) -> DetectionTimeline:
    """Stream transactions and record when each watched pair is detected.

    Detection means the pair is resident in the correlation table with a
    tally of at least ``min_support``.  The analyzer is driven exactly as
    in normal operation; the check is O(watched) per transaction since
    only pairs present in the incoming transaction can newly qualify.
    """
    watched_set: Set[ExtentPair] = set(watched)
    detections: Dict[ExtentPair, Optional[DetectionEvent]] = {
        pair: None for pair in watched_set
    }
    pending = set(watched_set)
    total = len(transactions)

    for index, extents in enumerate(transactions, start=1):
        analyzer.process(extents)
        if not pending:
            continue
        incoming = set(unique_pairs(extents))
        for pair in list(pending & incoming):
            tally = analyzer.correlations.tally(pair)
            if tally is not None and tally >= min_support:
                detections[pair] = DetectionEvent(
                    pair=pair,
                    transaction_index=index,
                    occurrence=tally,
                    stream_fraction=index / total if total else 1.0,
                )
                pending.discard(pair)
    return DetectionTimeline(detections=detections, transactions=total)
