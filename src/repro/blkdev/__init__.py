"""Storage substrate: simulated devices and the trace replayer."""

from .device import (
    DeviceStats,
    HddDevice,
    SimulatedDevice,
    SsdDevice,
    measure_mean_read_latency,
)
from .multidisk import (
    DiskSummary,
    rank_disks,
    replay_multidisk,
    split_by_disk,
)
from .replay import (
    EventListener,
    ReplayResult,
    replay_no_stall,
    replay_speedup,
    replay_timed,
)

__all__ = [
    "DeviceStats",
    "DiskSummary",
    "rank_disks",
    "replay_multidisk",
    "split_by_disk",
    "EventListener",
    "HddDevice",
    "ReplayResult",
    "SimulatedDevice",
    "SsdDevice",
    "measure_mean_read_latency",
    "replay_no_stall",
    "replay_speedup",
    "replay_timed",
]
