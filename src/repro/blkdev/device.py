"""Simulated block devices.

The paper's testbed pairs traces recorded on enterprise HDDs with replay on
a modern NVMe SSD.  Only two device properties feed back into the framework:

* the *measured mean I/O latency*, which drives the dynamic transaction
  window (2x mean latency, Section III-B), and
* the *relative* latency of the traced device versus the replay device,
  which sets the Table II replay speedup.

The device model here is therefore a latency model: given a request (and
the device's recent history), produce a service time.  Determinism is
preserved by seeding each device's private random generator.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Optional

from ..trace.record import BLOCK_SIZE, TraceRecord


@dataclass
class DeviceStats:
    """Counters accumulated across every serviced request."""

    reads: int = 0
    writes: int = 0
    read_latency_total: float = 0.0
    write_latency_total: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def requests(self) -> int:
        return self.reads + self.writes

    @property
    def mean_read_latency(self) -> float:
        return self.read_latency_total / self.reads if self.reads else 0.0

    @property
    def mean_write_latency(self) -> float:
        return self.write_latency_total / self.writes if self.writes else 0.0

    @property
    def mean_latency(self) -> float:
        total = self.read_latency_total + self.write_latency_total
        return total / self.requests if self.requests else 0.0


class SimulatedDevice(abc.ABC):
    """Base class for latency-model block devices."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self.stats = DeviceStats()

    @abc.abstractmethod
    def _service_time(self, record: TraceRecord) -> float:
        """Raw service time for one request, in seconds."""

    def submit(self, record: TraceRecord) -> float:
        """Service one request and return its latency in seconds.

        The latency is also folded into :attr:`stats`.  The device is
        modelled as serving one request at a time (queueing is handled by
        the replayer, which owns the clock).
        """
        latency = self._service_time(record)
        if record.is_read:
            self.stats.reads += 1
            self.stats.read_latency_total += latency
            self.stats.bytes_read += record.size_bytes
        else:
            self.stats.writes += 1
            self.stats.write_latency_total += latency
            self.stats.bytes_written += record.size_bytes
        return latency

    def reset_stats(self) -> None:
        self.stats = DeviceStats()

    def _jitter(self, scale: float) -> float:
        """Multiplicative log-uniform jitter around 1.0 of width ``scale``."""
        if scale <= 0:
            return 1.0
        return 1.0 + self._rng.uniform(-scale, scale)


class SsdDevice(SimulatedDevice):
    """A low-latency flash device, modelled on a consumer NVMe SSD.

    Reads pay a flash array access plus transfer time.  Writes land in the
    device's RAM buffer and are acknowledged quickly -- the paper notes that
    "writes may be cached and reported as complete before actually writing"
    and therefore uses only read latency when measuring the device.
    Occasional garbage-collection stalls make writes heavy-tailed, mirroring
    the unpredictability the paper's introduction motivates.
    """

    def __init__(
        self,
        read_base: float = 45e-6,
        write_base: float = 20e-6,
        read_bandwidth: float = 3.2e9,
        write_bandwidth: float = 1.8e9,
        gc_probability: float = 0.002,
        gc_pause: float = 2e-3,
        jitter: float = 0.15,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        self.read_base = read_base
        self.write_base = write_base
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = write_bandwidth
        self.gc_probability = gc_probability
        self.gc_pause = gc_pause
        self.jitter = jitter

    def _service_time(self, record: TraceRecord) -> float:
        if record.is_read:
            base = self.read_base + record.size_bytes / self.read_bandwidth
            return base * self._jitter(self.jitter)
        base = self.write_base + record.size_bytes / self.write_bandwidth
        latency = base * self._jitter(self.jitter)
        if self._rng.random() < self.gc_probability:
            latency += self.gc_pause * self._jitter(self.jitter)
        return latency


class HddDevice(SimulatedDevice):
    """A mechanical disk with seek, rotation, and transfer components.

    The seek time scales with the square root of the seek distance (a
    standard first-order model) up to ``full_seek``; the rotational delay is
    uniform in one revolution.  With the defaults the mean service time of a
    scattered enterprise workload lands in the low-millisecond range that
    the Microsoft traces report (Table II's 3--19 ms mean trace latencies).
    """

    def __init__(
        self,
        full_seek: float = 8.5e-3,
        rpm: float = 7200.0,
        transfer_bandwidth: float = 150e6,
        capacity_blocks: int = 2 ** 32,
        write_cache_fraction: float = 0.3,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        self.full_seek = full_seek
        self.revolution = 60.0 / rpm
        self.transfer_bandwidth = transfer_bandwidth
        self.capacity_blocks = capacity_blocks
        self.write_cache_fraction = write_cache_fraction
        self._head_position = 0

    def _service_time(self, record: TraceRecord) -> float:
        distance = abs(record.start - self._head_position)
        self._head_position = record.start + record.length
        seek = self.full_seek * (distance / self.capacity_blocks) ** 0.5
        rotation = self._rng.uniform(0, self.revolution)
        transfer = record.size_bytes / self.transfer_bandwidth
        latency = seek + rotation + transfer
        if record.is_write and self._rng.random() < self.write_cache_fraction:
            # Write hit the on-disk cache: acknowledged after transfer only.
            latency = transfer + 0.1e-3
        return latency


def measure_mean_read_latency(
    device: SimulatedDevice,
    records: list,
    repeats: int = 10,
) -> float:
    """Mean read latency across ``repeats`` synchronous no-stall replays.

    This reproduces the paper's Table II measurement methodology: replay the
    trace as synchronous requests ignoring timestamps (fio's
    ``replay_no_stall``), ``repeats`` times, and average the *read* latency
    only (writes may be acknowledged from cache).
    """
    total = 0.0
    reads = 0
    for _ in range(repeats):
        for record in records:
            latency = device.submit(record)
            if record.is_read:
                total += latency
                reads += 1
    if reads == 0:
        raise ValueError("trace contains no reads; cannot measure read latency")
    return total / reads
