"""Multi-disk trace handling (paper Section IV-B2's methodology).

"Each Microsoft trace is composed of multiple disk IDs.  In order to
create the original workload on our single disk test system, for each
Microsoft trace, we replayed the trace of the disk with the greatest
number of requests."  This module provides that workflow as first-class
operations: split a trace by disk, rank disks by traffic, and replay
several disks onto per-disk devices concurrently (each disk is its own
server; events merge into one monitored stream, as one blktrace session
over multiple devices would).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..monitor.events import BlockIOEvent
from ..trace.record import TraceRecord
from .device import SimulatedDevice, SsdDevice
from .replay import EventListener, ReplayResult


def split_by_disk(records: Sequence[TraceRecord]
                  ) -> Dict[int, List[TraceRecord]]:
    """Partition a trace into per-disk record lists (order preserved)."""
    disks: Dict[int, List[TraceRecord]] = {}
    for record in records:
        disks.setdefault(record.disk_id, []).append(record)
    return disks


@dataclass(frozen=True)
class DiskSummary:
    """Traffic summary of one disk within a multi-disk trace."""

    disk_id: int
    requests: int
    total_bytes: int
    request_share: float


def rank_disks(records: Sequence[TraceRecord]) -> List[DiskSummary]:
    """Disks ordered by request count, busiest first."""
    disks = split_by_disk(records)
    total_requests = sum(len(disk_records) for disk_records in disks.values())
    summaries = [
        DiskSummary(
            disk_id=disk_id,
            requests=len(disk_records),
            total_bytes=sum(r.size_bytes for r in disk_records),
            request_share=(
                len(disk_records) / total_requests if total_requests else 0.0
            ),
        )
        for disk_id, disk_records in disks.items()
    ]
    summaries.sort(key=lambda summary: (-summary.requests, summary.disk_id))
    return summaries


def replay_multidisk(
    records: Sequence[TraceRecord],
    device_factory: Optional[Callable[[int], SimulatedDevice]] = None,
    speedup: float = 1.0,
    listeners: Optional[Sequence[EventListener]] = None,
    collect: bool = True,
) -> ReplayResult:
    """Replay a multi-disk trace with one simulated device per disk.

    Each disk serves its own requests independently (they are separate
    spindles/SSDs); the merged issue-event stream is delivered to the
    listeners in global arrival order, which is what a host-wide blktrace
    session observes.
    """
    if speedup <= 0:
        raise ValueError(f"speedup must be > 0, got {speedup}")
    if device_factory is None:
        def device_factory(disk_id: int) -> SimulatedDevice:
            return SsdDevice(seed=disk_id)
    listeners = listeners or ()
    result = ReplayResult()
    devices: Dict[int, SimulatedDevice] = {}
    free_at: Dict[int, float] = {}
    clock = 0.0

    ordered = sorted(records, key=lambda record: record.timestamp)
    for record in ordered:
        disk = record.disk_id
        if disk not in devices:
            devices[disk] = device_factory(disk)
            free_at[disk] = 0.0
        arrival = record.timestamp / speedup
        service = devices[disk].submit(record)
        start_service = max(arrival, free_at[disk])
        completion = start_service + service
        free_at[disk] = completion
        clock = max(clock, completion)
        result.queue_delay_total += start_service - arrival

        event = BlockIOEvent.from_record(
            record, timestamp=arrival, latency=completion - arrival
        )
        if collect:
            result.events.append(event)
        for listener in listeners:
            listener(event)

    result.wall_time = clock
    return result
