"""Trace replay on a simulated clock (the repo's ``fio`` equivalent).

The paper replays workloads with fio on real hardware; here the replayer
advances a virtual clock, asks the device model for service times, and emits
block-layer issue events to any number of listeners (the real-time monitor,
an offline trace writer, or both -- the paper's evaluation runs exactly that
dual pipeline).

Two modes mirror the paper's methodology:

* :func:`replay_timed` honours trace arrival times, optionally accelerated
  by a Table II speedup factor, with a single-server queue in front of the
  device (a request issued while the device is busy waits, and its measured
  latency includes the queueing delay).
* :func:`replay_no_stall` issues requests back-to-back synchronously,
  ignoring timestamps -- fio's ``replay_no_stall`` option, used to measure
  the replay device's intrinsic latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from ..monitor.events import BlockIOEvent
from ..trace.record import TraceRecord
from .device import SimulatedDevice

EventListener = Callable[[BlockIOEvent], None]


@dataclass
class ReplayResult:
    """Summary of one replay run."""

    events: List[BlockIOEvent] = field(default_factory=list)
    wall_time: float = 0.0
    queue_delay_total: float = 0.0

    @property
    def request_count(self) -> int:
        return len(self.events)

    @property
    def mean_latency(self) -> float:
        measured = [e.latency for e in self.events if e.latency is not None]
        return sum(measured) / len(measured) if measured else 0.0

    @property
    def mean_read_latency(self) -> float:
        measured = [
            e.latency for e in self.events if e.latency is not None and e.op.value == "R"
        ]
        return sum(measured) / len(measured) if measured else 0.0


def _notify(listeners: Sequence[EventListener], event: BlockIOEvent) -> None:
    for listener in listeners:
        listener(event)


def replay_timed(
    records: Iterable[TraceRecord],
    device: SimulatedDevice,
    speedup: float = 1.0,
    listeners: Optional[Sequence[EventListener]] = None,
    collect: bool = True,
    queue_depth: int = 1,
) -> ReplayResult:
    """Replay a trace honouring (accelerated) arrival times.

    Each record arrives at ``timestamp / speedup``.  ``queue_depth`` models
    the device's internal parallelism (NVMe devices complete several
    commands concurrently): up to that many requests are in service at
    once, each new arrival taking the earliest-free slot.  A request
    arriving while every slot is busy queues, and its reported latency
    covers queueing plus service (what a host-side probe observes).
    Events are emitted at issue time in arrival order.
    """
    if speedup <= 0:
        raise ValueError(f"speedup must be > 0, got {speedup}")
    if queue_depth < 1:
        raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
    listeners = listeners or ()
    result = ReplayResult()
    slots_free = [0.0] * queue_depth
    clock = 0.0

    ordered = sorted(records, key=lambda record: record.timestamp)
    for record in ordered:
        arrival = record.timestamp / speedup
        service = device.submit(record)
        slot = min(range(queue_depth), key=slots_free.__getitem__)
        start_service = max(arrival, slots_free[slot])
        completion = start_service + service
        slots_free[slot] = completion
        clock = max(clock, completion)
        latency = completion - arrival
        result.queue_delay_total += start_service - arrival

        event = BlockIOEvent.from_record(record, timestamp=arrival, latency=latency)
        if collect:
            result.events.append(event)
        _notify(listeners, event)

    result.wall_time = clock
    return result


def replay_no_stall(
    records: Iterable[TraceRecord],
    device: SimulatedDevice,
    listeners: Optional[Sequence[EventListener]] = None,
    collect: bool = True,
) -> ReplayResult:
    """Replay synchronously back-to-back, ignoring trace timestamps."""
    listeners = listeners or ()
    result = ReplayResult()
    clock = 0.0

    for record in records:
        service = device.submit(record)
        event = BlockIOEvent.from_record(record, timestamp=clock, latency=service)
        clock += service
        if collect:
            result.events.append(event)
        _notify(listeners, event)

    result.wall_time = clock
    return result


def replay_speedup(mean_trace_latency: float, mean_measured_latency: float) -> float:
    """Table II's replay speedup: trace latency over measured latency."""
    if mean_trace_latency <= 0 or mean_measured_latency <= 0:
        raise ValueError("latencies must be positive")
    return mean_trace_latency / mean_measured_latency
