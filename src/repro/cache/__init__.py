"""repro.cache -- the correlation-driven prefetching cache (paper §I/§V).

Everything upstream of this package *detects* correlations; this package
*spends* them.  A block-cache simulator with pluggable eviction policies
(:mod:`~repro.cache.policy`), prefetchers that consume a live synopsis or
a mined trace (:mod:`~repro.cache.prefetcher`, :mod:`~repro.cache.miner`),
the closed-loop driver that interleaves serving with training
(:mod:`~repro.cache.loop`), and the service integration
(:mod:`~repro.cache.service`).  See ``docs/caching.md``.
"""

from .clock2q import Clock2QPolicy
from .loop import (
    DEFAULT_FEEDBACK_INTERVAL,
    CacheDriver,
    run_closed_loop,
    simulate_cache,
)
from .miner import OfflineMiner
from .policy import (
    POLICY_NAMES,
    ArcPolicy,
    EvictionPolicy,
    LruPolicy,
    make_policy,
)
from .prefetcher import (
    CorrelationPrefetcher,
    Prefetcher,
    RulePrefetcher,
    SynopsisPrefetcher,
    correlated_partners,
)
from .service import DEFAULT_CACHE_BLOCKS, CachedCharacterizationService
from .simcache import SimulatedBlockCache
from .stats import CacheStats

__all__ = [
    "ArcPolicy",
    "CacheDriver",
    "CacheStats",
    "CachedCharacterizationService",
    "Clock2QPolicy",
    "CorrelationPrefetcher",
    "DEFAULT_CACHE_BLOCKS",
    "DEFAULT_FEEDBACK_INTERVAL",
    "EvictionPolicy",
    "LruPolicy",
    "OfflineMiner",
    "POLICY_NAMES",
    "Prefetcher",
    "RulePrefetcher",
    "SimulatedBlockCache",
    "SynopsisPrefetcher",
    "correlated_partners",
    "make_policy",
    "run_closed_loop",
    "simulate_cache",
]
