"""A Clock2Q+-style scan-resistant replacement policy.

Zhai et al.'s Clock2Q+ (vSAN metadata cache) combines the 2Q insight --
admit new keys into a small probationary FIFO so one-touch traffic never
pollutes the main cache -- with CLOCK's cheap second-chance approximation
of LRU over the protected region, plus a ghost queue whose hits promote
straight into the protected region.  This module implements that shape:

* **probation** -- a FIFO holding newly admitted keys (a fixed fraction
  of the capacity).  A key re-referenced while on probation is promoted
  to the protected region (the 2Q "A1in -> Am" move); a key that falls
  off the FIFO end leaves residency but its *identity* is remembered in
  the ghost queue.
* **ghost** -- a FIFO of recently evicted keys (no data, identity only).
  Admitting a key found in the ghost queue bypasses probation and lands
  directly in the protected region: being re-requested after eviction is
  the strongest available evidence of reuse.
* **protected** -- a CLOCK ring with one reference bit per slot.  Hits
  set the bit; the victim search sweeps from the hand, clearing set bits
  and stopping at the first clear one.  New promotions enter with the
  bit **clear** and the hand is left pointing at the slot they filled,
  so under heavy promotion churn (a scan flowing through the ghost
  queue) the newest promotions evict *each other* while established
  entries -- whose bits are refreshed by genuine reuse -- survive.  That
  asymmetry is what keeps a cyclic scan larger than the cache from
  flushing the working set, the failure mode that makes plain LRU score
  zero on loops.

Evictions from both resident regions feed the ghost queue, bounded at
``ghost_capacity`` (default: the cache capacity, mirroring ARC's "ghosts
remember one cache-worth of history").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, List, Optional


class _ClockSlot:
    __slots__ = ("key", "referenced")

    def __init__(self, key: Hashable) -> None:
        self.key = key
        self.referenced = False


class Clock2QPolicy:
    """Clock + two-queue ghost promotion (see module docstring)."""

    name = "clock2q"

    def __init__(
        self,
        capacity: int,
        probation_fraction: float = 0.25,
        ghost_capacity: Optional[int] = None,
    ) -> None:
        if capacity < 2:
            raise ValueError(
                f"clock2q needs capacity >= 2, got {capacity}"
            )
        if not 0.0 < probation_fraction < 1.0:
            raise ValueError(
                "probation_fraction must be in (0, 1), "
                f"got {probation_fraction}"
            )
        self.capacity = capacity
        self.probation_capacity = max(1, int(capacity * probation_fraction))
        self.protected_capacity = capacity - self.probation_capacity
        if self.protected_capacity < 1:
            self.probation_capacity = capacity - 1
            self.protected_capacity = 1
        self.ghost_capacity = (
            capacity if ghost_capacity is None else ghost_capacity
        )
        self._probation: "OrderedDict[Hashable, None]" = OrderedDict()
        self._ring: List[_ClockSlot] = []
        self._slots: Dict[Hashable, _ClockSlot] = {}
        self._hand = 0
        self._ghost: "OrderedDict[Hashable, None]" = OrderedDict()

    # -- introspection -----------------------------------------------------

    def __contains__(self, key) -> bool:
        return key in self._slots or key in self._probation

    def __len__(self) -> int:
        return len(self._slots) + len(self._probation)

    def ghost_size(self) -> int:
        return len(self._ghost)

    def in_ghost(self, key) -> bool:
        return key in self._ghost

    def check_invariants(self) -> bool:
        """Size bounds and region disjointness (for tests)."""
        disjoint = not (set(self._slots) & set(self._probation))
        ghost_disjoint = not (
            set(self._ghost) & (set(self._slots) | set(self._probation))
        )
        return (
            len(self._probation) <= self.probation_capacity
            and len(self._ring) <= self.protected_capacity
            and len(self._ghost) <= self.ghost_capacity
            and len(self._ring) == len(self._slots)
            and disjoint
            and ghost_disjoint
        )

    # -- the policy surface ------------------------------------------------

    def touch(self, key) -> List:
        """Demand hit: set the clock bit, or promote out of probation."""
        slot = self._slots.get(key)
        if slot is not None:
            slot.referenced = True
            return []
        # Re-referenced while on probation: earned the protected region.
        del self._probation[key]
        return self._promote(key)

    def admit(self, key) -> List:
        """Demand or prefetch fill of a non-resident key."""
        if key in self._ghost:
            del self._ghost[key]
            return self._promote(key)
        evicted: List = []
        self._probation[key] = None
        while len(self._probation) > self.probation_capacity:
            victim, _none = self._probation.popitem(last=False)
            self._remember(victim)
            evicted.append(victim)
        return evicted

    def reset(self) -> None:
        self._probation.clear()
        self._ring.clear()
        self._slots.clear()
        self._ghost.clear()
        self._hand = 0

    # -- internals ---------------------------------------------------------

    def _remember(self, key) -> None:
        """Record an evicted key's identity in the ghost queue."""
        self._ghost[key] = None
        self._ghost.move_to_end(key)
        while len(self._ghost) > self.ghost_capacity:
            self._ghost.popitem(last=False)

    def _promote(self, key) -> List:
        """Insert ``key`` into the protected clock ring."""
        ring = self._ring
        if len(ring) < self.protected_capacity:
            slot = _ClockSlot(key)
            ring.append(slot)
            self._slots[key] = slot
            return []
        # Victim search: clear set bits from the hand forward; the first
        # clear bit loses its slot.  Freshly promoted keys start clear
        # and the hand stays on their slot, so promotion storms (scans)
        # cannibalize themselves instead of the reused core.
        hand = self._hand
        size = len(ring)
        for _sweep in range(2 * size):
            slot = ring[hand]
            if slot.referenced:
                slot.referenced = False
                hand = (hand + 1) % size
            else:
                break
        victim_slot = ring[hand]
        victim = victim_slot.key
        del self._slots[victim]
        self._remember(victim)
        victim_slot.key = key
        victim_slot.referenced = False
        self._slots[key] = victim_slot
        self._hand = hand
        return [victim]
