"""Closing the loop: drive a cache and the characterization engine together.

The paper's pitch is that *online* characterization lets the system act
on correlations while they still hold.  This module is that action:

* :class:`CacheDriver` feeds each demand access through a
  :class:`~repro.cache.simcache.SimulatedBlockCache`, asks the attached
  prefetcher for the access's correlated partners, issues the prefetches,
  and periodically feeds the measured windowed prefetch accuracy back to
  the prefetcher (the throttling loop of
  :class:`~repro.cache.prefetcher.SynopsisPrefetcher`).
* :func:`run_closed_loop` interleaves that with synopsis training: each
  transaction's extents hit the cache first (prefetching off what the
  synopsis learned from *earlier* transactions -- strictly causal), then
  train the engine.  Any engine with ``process(extents)`` works: a plain
  or typed analyzer, a sharded analyzer, a hosted backend engine, or a
  bare backend.
* :func:`simulate_cache` replays a flat access trace against a fixed
  (pre-built) prefetcher -- the harness for offline baselines like
  :class:`~repro.cache.miner.OfflineMiner` and for no-prefetch runs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from ..core.extent import Extent
from ..telemetry.metrics import MetricsRegistry
from .policy import EvictionPolicy
from .simcache import SimulatedBlockCache
from .stats import CacheStats

#: Accesses between accuracy feedback evaluations.
DEFAULT_FEEDBACK_INTERVAL = 256


class CacheDriver:
    """Runs the access -> prefetch -> feedback cycle for one cache."""

    def __init__(
        self,
        cache: SimulatedBlockCache,
        prefetcher=None,
        feedback_interval: int = DEFAULT_FEEDBACK_INTERVAL,
    ) -> None:
        if feedback_interval < 1:
            raise ValueError("feedback_interval must be >= 1")
        self.cache = cache
        self.prefetcher = prefetcher
        self.feedback_interval = feedback_interval
        self._accesses_in_window = 0
        self._window_issued_base = cache.stats.prefetches_issued
        self._window_hits_base = cache.stats.prefetch_hits

    def on_access(self, extent: Extent) -> int:
        """One demand access; returns the number of block hits."""
        hits = self.cache.access(extent)
        prefetcher = self.prefetcher
        if prefetcher is not None:
            for partner in prefetcher.partners_of(extent):
                self.cache.prefetch(partner)
            self._accesses_in_window += 1
            if self._accesses_in_window >= self.feedback_interval:
                self._feedback()
        return hits

    def on_transaction(self, extents: Sequence[Extent]) -> None:
        for extent in extents:
            self.on_access(extent)

    def _feedback(self) -> None:
        """Feed windowed prefetch accuracy back to the prefetcher."""
        adjust = getattr(self.prefetcher, "adjust", None)
        stats = self.cache.stats
        issued = stats.prefetches_issued - self._window_issued_base
        hits = stats.prefetch_hits - self._window_hits_base
        self._window_issued_base = stats.prefetches_issued
        self._window_hits_base = stats.prefetch_hits
        self._accesses_in_window = 0
        if adjust is not None:
            accuracy = hits / issued if issued else 0.0
            adjust(accuracy, issued=issued)

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats


def simulate_cache(
    accesses: Iterable[Extent],
    capacity_blocks: int,
    policy: Union[str, EvictionPolicy] = "lru",
    prefetcher=None,
    feedback_interval: int = DEFAULT_FEEDBACK_INTERVAL,
    registry: Optional[MetricsRegistry] = None,
) -> CacheStats:
    """Replay a flat access trace through a cache, with/without prefetch."""
    cache = SimulatedBlockCache(capacity_blocks, policy=policy,
                                registry=registry)
    driver = CacheDriver(cache, prefetcher,
                         feedback_interval=feedback_interval)
    for extent in accesses:
        driver.on_access(extent)
    return cache.stats


def run_closed_loop(
    transactions: Iterable[Sequence[Extent]],
    engine,
    cache: SimulatedBlockCache,
    prefetcher=None,
    feedback_interval: int = DEFAULT_FEEDBACK_INTERVAL,
) -> CacheStats:
    """Interleave cache serving with online synopsis training.

    For each transaction the extents are served (and prefetched on)
    first, *then* the engine trains on the transaction -- so every
    prefetch decision uses only correlations detected in strictly
    earlier transactions, exactly the information a production cache
    would have had at that moment.

    ``prefetcher`` defaults to a
    :class:`~repro.cache.prefetcher.SynopsisPrefetcher` wrapping
    ``engine``; pass an explicit prefetcher to tune its budget and
    thresholds, or ``prefetcher=None`` after building one externally.
    """
    from .prefetcher import SynopsisPrefetcher

    if prefetcher is None:
        prefetcher = SynopsisPrefetcher(engine)
    driver = CacheDriver(cache, prefetcher,
                         feedback_interval=feedback_interval)
    train = engine.process
    for extents in transactions:
        driver.on_transaction(extents)
        train(extents)
    return cache.stats
