"""MITHRIL-style offline association mining (the baseline to beat).

Yang et al.'s MITHRIL mines block-level prefetch associations from a
*recorded* trace: two addresses accessed repeatedly within a short
lookahead window of each other are associated, and future accesses to
one trigger a prefetch of the other.  It is the natural offline
counterpart to this repo's online synopsis -- the whole trace is
available up front, so the miner sees every cooccurrence the two-tier
tables may have evicted -- but it is also frozen: mined on yesterday's
trace, serving today's.

The implementation here mines at extent granularity so it plugs into the
same :class:`~repro.cache.prefetcher.Prefetcher` seam as the online
prefetchers:

* Slide a window of ``lookahead`` accesses over the trace; every ordered
  (current, upcoming) extent pair inside the window scores one
  cooccurrence (deduplicated per position, so a burst of ``A B B B``
  counts A->B once per A, as MITHRIL's per-block timestamp lists do).
* Keep associations with at least ``min_support`` cooccurrences.
* Optionally drop heads seen fewer than ``min_head_support`` times --
  MITHRIL's "sporadic block" focus inverted: extremely rare heads have
  too little evidence to prefetch on.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.extent import Extent


class OfflineMiner:
    """Lookahead-window association mining over a recorded extent trace."""

    def __init__(
        self,
        lookahead: int = 8,
        min_support: int = 2,
        fanout: int = 2,
        min_head_support: int = 1,
    ) -> None:
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.lookahead = lookahead
        self.min_support = min_support
        self.fanout = fanout
        self.min_head_support = min_head_support
        self.accesses_mined = 0
        self._rules: Dict[Extent, List[Tuple[Extent, int]]] = {}

    def mine(self, accesses: Iterable[Extent]) -> "OfflineMiner":
        """Mine association rules from a recorded access trace.

        Replaces any previously mined rules; returns ``self`` so
        ``OfflineMiner(...).mine(trace)`` reads naturally.
        """
        cooccurrence: Dict[Extent, Dict[Extent, int]] = {}
        head_counts: Dict[Extent, int] = {}
        window: "deque[Extent]" = deque(maxlen=self.lookahead)
        mined = 0
        for access in accesses:
            mined += 1
            head_counts[access] = head_counts.get(access, 0) + 1
            for head in reversed(window):
                if head == access:
                    # Self-reuse inside the window is recency, not an
                    # association -- and it also shadows: an earlier
                    # occurrence of the same head already scored this
                    # follower once.
                    break
                partners = cooccurrence.setdefault(head, {})
                partners[access] = partners.get(access, 0) + 1
            window.append(access)

        self.accesses_mined = mined
        min_head = self.min_head_support
        min_support = self.min_support
        rules: Dict[Extent, List[Tuple[Extent, int]]] = {}
        for head, partners in cooccurrence.items():
            if head_counts.get(head, 0) < min_head:
                continue
            kept = [
                (partner, count)
                for partner, count in partners.items()
                if count >= min_support
            ]
            if kept:
                kept.sort(key=lambda entry: (-entry[1], entry[0]))
                rules[head] = kept
        self._rules = rules
        return self

    # -- the Prefetcher surface -------------------------------------------

    def partners_of(self, extent: Extent) -> List[Extent]:
        return [
            partner for partner, _count in self._rules.get(extent, [])
        ][: self.fanout]

    # -- introspection -----------------------------------------------------

    def rule_count(self) -> int:
        return sum(len(partners) for partners in self._rules.values())

    def rules_for(self, extent: Extent) -> List[Tuple[Extent, int]]:
        """All mined associations for ``extent`` with their support."""
        return list(self._rules.get(extent, []))
