"""Pluggable eviction policies for the block-cache simulator.

The cache core (:mod:`repro.cache.simcache`) is policy-agnostic: it does
hit/miss/prefetch accounting and delegates *which block to evict* to an
:class:`EvictionPolicy`.  Three policies ship:

* ``lru`` -- classic least-recently-used, the baseline every cache paper
  measures against (and the semantics of the legacy
  ``repro.optimize.prefetch.BlockCache``);
* ``arc`` -- the real Adaptive Replacement Cache, reusing
  :class:`repro.core.arc.ArcTable` (Megiddo & Modha) so the synopsis
  benchmark's ARC implementation doubles as a cache policy;
* ``clock2q`` -- a Clock2Q+-style scan-resistant policy (clock
  second-chance over a protected region, FIFO probation, ghost-queue
  promotion), in :mod:`repro.cache.clock2q`.

The protocol is deliberately small.  Residency is owned by the policy;
every mutating call returns the keys it evicted so the cache core can
keep its own per-block metadata (the prefetched flag) in sync -- the flag
must die with the resident entry, or a block prefetched, evicted unused,
and re-fetched on demand would still read as "prefetched" and
double-count (see :mod:`repro.cache.stats`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Hashable, List, Union

try:
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8 fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from ..core.arc import ArcTable


@runtime_checkable
class EvictionPolicy(Protocol):
    """What the cache simulator requires of a replacement policy.

    A key is *resident* when ``key in policy``.  :meth:`admit` makes a
    missing key resident (demand fill and prefetch fill both land here);
    :meth:`touch` records a demand hit on a resident key.  Both return
    the keys evicted as a consequence -- possibly none, never the key
    itself.
    """

    capacity: int

    def __contains__(self, key) -> bool:
        ...

    def __len__(self) -> int:
        ...

    def touch(self, key) -> List:
        """Record a demand hit on a resident key; returns evicted keys."""
        ...

    def admit(self, key) -> List:
        """Make a missing key resident; returns evicted keys."""
        ...

    def reset(self) -> None:
        ...


class LruPolicy:
    """Least-recently-used over a single recency queue."""

    name = "lru"

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache needs >= 1 block of capacity")
        self.capacity = capacity
        self._blocks: "OrderedDict[Hashable, None]" = OrderedDict()

    def __contains__(self, key) -> bool:
        return key in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def touch(self, key) -> List:
        self._blocks.move_to_end(key)
        return []

    def admit(self, key) -> List:
        if key in self._blocks:
            self._blocks.move_to_end(key)
            return []
        evicted = []
        while len(self._blocks) >= self.capacity:
            victim, _none = self._blocks.popitem(last=False)
            evicted.append(victim)
        self._blocks[key] = None
        return evicted

    def reset(self) -> None:
        self._blocks.clear()


class ArcPolicy:
    """The real ARC algorithm as a cache replacement policy.

    Reuses :class:`repro.core.arc.ArcTable` (T1/T2 resident lists, B1/B2
    ghosts, adaptive target ``p``); the table's eviction listener feeds
    the evicted-keys return channel the simulator needs.  ARC requires
    capacity >= 2.
    """

    name = "arc"

    def __init__(self, capacity: int) -> None:
        if capacity < 2:
            raise ValueError(f"ARC needs capacity >= 2, got {capacity}")
        self.capacity = capacity
        self._evicted: List = []
        self._table: ArcTable = ArcTable(
            capacity, evict_listener=self._evicted.append
        )

    def __contains__(self, key) -> bool:
        return key in self._table

    def __len__(self) -> int:
        return len(self._table)

    def _drain(self) -> List:
        evicted, self._evicted[:] = list(self._evicted), []
        return evicted

    def touch(self, key) -> List:
        self._table.access(key)
        return self._drain()

    def admit(self, key) -> List:
        self._table.access(key)
        return self._drain()

    def reset(self) -> None:
        self._evicted.clear()
        self._table = ArcTable(
            self.capacity, evict_listener=self._evicted.append
        )


def _make_clock2q(capacity: int) -> EvictionPolicy:
    from .clock2q import Clock2QPolicy
    return Clock2QPolicy(capacity)


#: Policy registry: name -> factory taking the capacity in blocks.
POLICY_FACTORIES: Dict[str, Callable[[int], EvictionPolicy]] = {
    "lru": LruPolicy,
    "arc": ArcPolicy,
    "clock2q": _make_clock2q,
}

POLICY_NAMES = tuple(POLICY_FACTORIES)


def make_policy(policy: Union[str, EvictionPolicy],
                capacity: int) -> EvictionPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, str):
        factory = POLICY_FACTORIES.get(policy)
        if factory is None:
            raise ValueError(
                f"unknown eviction policy {policy!r}; know {POLICY_NAMES}"
            )
        return factory(capacity)
    return policy
