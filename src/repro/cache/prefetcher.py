"""Prefetch policies that consume detected correlations.

The paper's introduction motivates real-time characterization with
exactly this consumer: "once the framework knows that extent A is
frequently followed by extent B, a cache can pull B in when A is
requested".  Three prefetchers implement that idea at different points
of the online/offline spectrum:

* :class:`SynopsisPrefetcher` -- the **online** closed loop.  On every
  miss it queries a *live* synopsis (any
  :class:`~repro.engine.backends.base.SynopsisBackend`, a hosted
  :class:`~repro.engine.backends.host.BackendEngine`, or a plain
  (typed/sharded) analyzer) for the missed extent's strongest partners,
  under a prefetch ``budget``, a ``min_support`` confidence floor, and
  accuracy-driven throttling: when the cache's measured
  ``prefetch_accuracy`` drops below a watermark the effective budget
  backs off multiplicatively, and recovers once accuracy does.
* :class:`CorrelationPrefetcher` -- a **frozen** table of partners built
  once from an analyzer's frequent pairs (the legacy
  ``repro.optimize.prefetch`` behavior, kept for comparison: it cannot
  adapt to drift).
* :class:`RulePrefetcher` -- directional ``A -> B`` association rules
  only (no reverse prefetch below confidence).

The MITHRIL-style offline baseline lives in :mod:`repro.cache.miner`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.analyzer import OnlineAnalyzer
from ..core.extent import Extent

try:
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8 fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@runtime_checkable
class Prefetcher(Protocol):
    """What the cache driver requires of a prefetch policy."""

    def partners_of(self, extent: Extent) -> List[Extent]:
        """Extents to prefetch when ``extent`` is demand-accessed."""
        ...


def correlated_partners(synopsis, extent: Extent, k: int
                        ) -> List[Tuple[Extent, int]]:
    """Query any synopsis representation for an extent's partners.

    Dispatches on capability: backends and analyzers expose an indexed
    ``correlated_with``; anything else that can enumerate
    ``pair_frequencies`` gets a (slow) scan fallback, so even a
    process-sharded engine can serve a prefetcher.
    """
    query = getattr(synopsis, "correlated_with", None)
    if query is not None:
        return query(extent, k)
    partners: Dict[Extent, int] = {}
    for pair, count in synopsis.pair_frequencies().items():
        if pair.first == extent:
            other = pair.second
        elif pair.second == extent:
            other = pair.first
        else:
            continue
        if count > partners.get(other, 0):
            partners[other] = count
    ranked = sorted(partners.items(), key=lambda entry: (-entry[1], entry[0]))
    return ranked[:k]


class SynopsisPrefetcher:
    """Online prefetching straight off the live synopsis.

    ``budget`` bounds partners prefetched per miss (cache-pollution
    control); ``min_support`` is the confidence floor -- a partner whose
    tally is below it is never speculated on.  Throttling watches the
    accuracy the attached cache measures (fed via :meth:`adjust`): below
    ``backoff_accuracy`` the effective budget halves (to zero, i.e.
    fully paused, if accuracy stays bad); at or above
    ``restore_accuracy`` it recovers one step per adjustment.  A paused
    prefetcher keeps re-evaluating, so a workload whose correlations
    become predictive again turns prefetching back on.
    """

    def __init__(
        self,
        synopsis,
        budget: int = 2,
        min_support: int = 2,
        backoff_accuracy: float = 0.2,
        restore_accuracy: float = 0.5,
    ) -> None:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        if not 0.0 <= backoff_accuracy <= restore_accuracy <= 1.0:
            raise ValueError(
                "need 0 <= backoff_accuracy <= restore_accuracy <= 1, got "
                f"{backoff_accuracy} / {restore_accuracy}"
            )
        self.synopsis = synopsis
        self.budget = budget
        self.min_support = min_support
        self.backoff_accuracy = backoff_accuracy
        self.restore_accuracy = restore_accuracy
        self._effective_budget = budget
        self.adjustments = 0
        self.backoffs = 0

    @property
    def effective_budget(self) -> int:
        """The throttled per-miss budget right now."""
        return self._effective_budget

    @property
    def paused(self) -> bool:
        return self._effective_budget == 0

    def partners_of(self, extent: Extent) -> List[Extent]:
        budget = self._effective_budget
        if budget == 0:
            return []
        ranked = correlated_partners(self.synopsis, extent, budget)
        min_support = self.min_support
        return [partner for partner, count in ranked
                if count >= min_support][:budget]

    def adjust(self, accuracy: float, issued: int = 1) -> None:
        """Feed back the cache's measured prefetch accuracy.

        Called periodically by the cache driver with the accuracy over
        the most recent feedback window; ``issued`` is the number of
        prefetches issued in that window (no prefetches -> no evidence,
        except that a paused prefetcher uses the quiet window to probe
        its way back up).
        """
        self.adjustments += 1
        if issued == 0:
            # Nothing speculated: no accuracy evidence.  If paused, use
            # the quiet window to probe with a minimal budget again.
            if self._effective_budget == 0:
                self._effective_budget = 1
            return
        if accuracy < self.backoff_accuracy:
            if self._effective_budget > 0:
                self._effective_budget //= 2
                self.backoffs += 1
        elif accuracy >= self.restore_accuracy:
            if self._effective_budget < self.budget:
                self._effective_budget += 1


class CorrelationPrefetcher:
    """Prefetches the frequent partners of each accessed extent.

    Built **once** from an analyzer's correlation table; ``fanout``
    bounds how many partners are prefetched per access (strongest
    first), keeping cache pollution in check.  Unlike
    :class:`SynopsisPrefetcher` the partner table is frozen at
    construction time.
    """

    def __init__(
        self,
        analyzer: OnlineAnalyzer,
        min_support: int = 2,
        fanout: int = 2,
    ) -> None:
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.fanout = fanout
        self._partners: Dict[Extent, List[Tuple[Extent, int]]] = {}
        for pair, tally in analyzer.frequent_pairs(min_support):
            self._partners.setdefault(pair.first, []).append(
                (pair.second, tally))
            self._partners.setdefault(pair.second, []).append(
                (pair.first, tally))
        for partners in self._partners.values():
            partners.sort(key=lambda entry: (-entry[1], entry[0]))

    def partners_of(self, extent: Extent) -> List[Extent]:
        return [
            partner for partner, _tally in self._partners.get(extent, [])
        ][: self.fanout]


class RulePrefetcher:
    """Directional prefetching from association rules.

    Unlike :class:`CorrelationPrefetcher`, which prefetches the partners
    of a pair in both directions, a rule prefetcher follows ``A -> B``
    rules only in their mined direction and only above a confidence
    threshold -- so an extent that *follows* a popular extent, but
    rarely precedes it, does not trigger wasted prefetches of the
    popular one.
    """

    def __init__(self, rule_index, fanout: int = 2) -> None:
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self._rules = rule_index
        self.fanout = fanout

    def partners_of(self, extent: Extent) -> List[Extent]:
        return self._rules.consequents_of(extent, limit=self.fanout)
