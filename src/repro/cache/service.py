"""A characterization service with the prefetching cache attached.

:class:`CachedCharacterizationService` is the deployed shape of the
closed loop: the same ingest -> characterize -> notify service as
:class:`~repro.service.CharacterizationService`, plus a simulated block
cache that serves every transaction's extents *before* the synopsis
trains on them.  Prefetch decisions therefore only ever use
correlations detected in strictly earlier traffic -- the information a
production cache would actually have had -- and the cache's hit/miss/
prefetch counters ride the same metrics registry as the rest of the
stack, so ``/metrics`` shows the synopsis and its payoff side by side.
"""

from __future__ import annotations

from typing import Optional, Union

from ..monitor.batch import TransactionBatch
from ..monitor.transaction import Transaction
from ..service import CharacterizationService
from .loop import DEFAULT_FEEDBACK_INTERVAL, CacheDriver
from .prefetcher import SynopsisPrefetcher
from .simcache import SimulatedBlockCache
from .stats import CacheStats

#: Default simulated cache size when only ``cache=True`` is requested.
DEFAULT_CACHE_BLOCKS = 4096


class CachedCharacterizationService(CharacterizationService):
    """Characterization service driving a correlation-prefetching cache.

    ``cache`` selects the cache: ``True`` for a default-sized LRU cache,
    an ``int`` for a capacity in blocks, or a ready
    :class:`SimulatedBlockCache` for full control.  ``cache_policy``
    picks the eviction policy for the first two forms.  ``prefetch``
    enables the synopsis prefetcher (on by default -- a cached service
    without it is just a baseline measurement rig), with
    ``prefetch_budget`` / ``prefetch_min_support`` forwarded to
    :class:`SynopsisPrefetcher`.
    """

    def __init__(
        self,
        *args,
        cache: Union[bool, int, SimulatedBlockCache] = True,
        cache_policy: str = "lru",
        prefetch: bool = True,
        prefetch_budget: int = 2,
        prefetch_min_support: int = 2,
        feedback_interval: int = DEFAULT_FEEDBACK_INTERVAL,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if cache is True:
            cache = DEFAULT_CACHE_BLOCKS
        if isinstance(cache, bool) or cache is None:
            raise ValueError(
                "cache must be True, a block capacity, or a "
                "SimulatedBlockCache (use CharacterizationService for "
                "an uncached service)"
            )
        if isinstance(cache, int):
            cache = SimulatedBlockCache(
                cache, policy=cache_policy, registry=self.registry
            )
        self.cache = cache
        self.prefetcher: Optional[SynopsisPrefetcher] = None
        if prefetch:
            self.prefetcher = SynopsisPrefetcher(
                self.analyzer,
                budget=prefetch_budget,
                min_support=prefetch_min_support,
            )
        self._cache_driver = CacheDriver(
            cache, self.prefetcher, feedback_interval=feedback_interval
        )

    @property
    def cache_stats(self) -> CacheStats:
        """The cache's hit/miss/prefetch counters so far."""
        return self.cache.stats

    # -- transaction interception ------------------------------------------
    #
    # Both sink routes serve the cache at monitor-emit time, before the
    # base class buffers/trains -- the cache always runs ahead of the
    # synopsis it queries, never behind.  Note the granularity: on the
    # columnar lane one whole TransactionBatch is served before any of
    # it trains, so a submit_many call is a single causality step --
    # chunk large streams to keep the loop tight.

    def _on_transaction(self, transaction: Transaction) -> None:
        self._cache_driver.on_transaction(transaction.extents)
        super()._on_transaction(transaction)

    def _on_transaction_batch(self, batch: TransactionBatch) -> None:
        on_transaction = self._cache_driver.on_transaction
        for transaction in batch.transactions():
            on_transaction(transaction.extents)
        super()._on_transaction_batch(batch)

    # -- persistence --------------------------------------------------------

    def restore(self, stream) -> None:
        """Restore the synopsis and re-point the prefetcher at it.

        The base restore may *replace* ``self.analyzer``; a prefetcher
        still holding the old engine would silently keep serving stale
        correlations.
        """
        super().restore(stream)
        if self.prefetcher is not None:
            self.prefetcher.synopsis = self.analyzer
