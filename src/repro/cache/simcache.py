"""The block-cache simulator core.

A :class:`SimulatedBlockCache` tracks block *residency* (metadata, not
data) under a pluggable :class:`~repro.cache.policy.EvictionPolicy` and
does the hit/miss/prefetch accounting of :class:`~repro.cache.stats.
CacheStats`.  Capacity is in 512-byte blocks; a demand access looks up
every block of the extent, a prefetch speculatively loads the missing
ones (marked, so prefetch hits can be attributed).

Prefetch attribution is once per issued prefetch: the prefetched flag
lives in a side set that is *always* cleared when the block leaves
residency (the policy reports its evictions) and when a demand fill
re-admits the block -- so a block prefetched, evicted unused, and then
re-fetched on demand counts as a ``demand_refetch``, never a second
prefetch hit.

The optional ``registry`` publishes the counters as ``repro_cache_*``
series (labelled by policy), so a cache attached to a service shows up
on ``/metrics`` next to the synopsis it consumes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Set, Union

from ..core.extent import Extent
from ..telemetry.metrics import MetricsRegistry
from .policy import EvictionPolicy, make_policy
from .stats import CacheStats

#: The refetch memory (blocks whose prefetch was evicted unused) is a
#: diagnostic ring; it is bounded at this multiple of the cache capacity.
_REFETCH_MEMORY_FACTOR = 4


class SimulatedBlockCache:
    """A block cache with pluggable eviction and attributed prefetching."""

    def __init__(
        self,
        capacity_blocks: int,
        policy: Union[str, EvictionPolicy] = "lru",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity_blocks < 1:
            raise ValueError("cache needs >= 1 block of capacity")
        self.capacity = capacity_blocks
        self.policy = make_policy(policy, capacity_blocks)
        self.stats = CacheStats()
        #: Resident blocks that entered via prefetch and have not yet
        #: seen their first demand access.
        self._prefetched: Set[int] = set()
        #: Identities of prefetched blocks evicted unused (bounded), so
        #: the later demand re-fetch can be diagnosed as "prefetched too
        #: early" rather than silently folded into the miss count.
        self._refetch_memory: "OrderedDict[int, None]" = OrderedDict()
        self._refetch_capacity = _REFETCH_MEMORY_FACTOR * capacity_blocks
        self._bind_metrics(registry)

    def _bind_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        if registry is None or not registry.enabled:
            self._metrics = None
            return
        policy_name = getattr(self.policy, "name", "custom")
        labels = {"policy": policy_name}
        self._metrics = {
            "hits": registry.counter(
                "repro_cache_hits_total", "Demand block hits",
                labelnames=("policy",)).labels(**labels),
            "misses": registry.counter(
                "repro_cache_misses_total", "Demand block misses",
                labelnames=("policy",)).labels(**labels),
            "prefetches": registry.counter(
                "repro_cache_prefetches_total",
                "Prefetched blocks issued",
                labelnames=("policy",)).labels(**labels),
            "prefetch_hits": registry.counter(
                "repro_cache_prefetch_hits_total",
                "Demand hits served by a prefetched block",
                labelnames=("policy",)).labels(**labels),
        }
        occupancy = registry.gauge(
            "repro_cache_occupancy_blocks", "Resident blocks",
            labelnames=("policy",)).labels(**labels)

        def _collect(cache=self, gauge=occupancy):
            gauge.set(len(cache.policy))

        registry.register_collector(_collect)
        self._collector = _collect  # keep the weakly-held collector alive

    def __len__(self) -> int:
        return len(self.policy)

    def __contains__(self, block: int) -> bool:
        return block in self.policy

    # -- the two operations ------------------------------------------------

    def access(self, extent: Extent) -> int:
        """Demand access; returns the number of block hits."""
        stats = self.stats
        policy = self.policy
        prefetched = self._prefetched
        metrics = self._metrics
        hits = 0
        for block in extent.blocks():
            if block in policy:
                hits += 1
                stats.hits += 1
                if block in prefetched:
                    stats.prefetch_hits += 1
                    # Attribute each issued prefetch at most once.
                    prefetched.discard(block)
                    if metrics is not None:
                        metrics["prefetch_hits"].inc()
                self._evictions(policy.touch(block))
            else:
                stats.misses += 1
                if block in self._refetch_memory:
                    del self._refetch_memory[block]
                    stats.demand_refetches += 1
                self._evictions(policy.admit(block))
                # A demand fill is never a prefetch, even if the policy
                # readmitted an identity it remembered (ghost promotion):
                # any stale flag would double-count the old prefetch.
                prefetched.discard(block)
        if metrics is not None:
            metrics["hits"].inc(hits)
            metrics["misses"].inc(extent.length - hits)
        return hits

    def prefetch(self, extent: Extent) -> int:
        """Speculatively load an extent's blocks (no hit/miss accounting).

        Returns the number of blocks actually issued (already-resident
        blocks are left untouched -- a prefetch must not refresh
        recency, or it would perturb the eviction order it rides on).
        """
        stats = self.stats
        policy = self.policy
        issued = 0
        for block in extent.blocks():
            if block not in policy:
                issued += 1
                stats.prefetches_issued += 1
                self._evictions(policy.admit(block))
                self._prefetched.add(block)
        if issued and self._metrics is not None:
            self._metrics["prefetches"].inc(issued)
        return issued

    def reset(self) -> None:
        self.policy.reset()
        self.stats = CacheStats()
        self._prefetched.clear()
        self._refetch_memory.clear()

    # -- internals ---------------------------------------------------------

    def _evictions(self, evicted) -> None:
        if not evicted:
            return
        prefetched = self._prefetched
        memory = self._refetch_memory
        for block in evicted:
            if block in prefetched:
                prefetched.discard(block)
                self.stats.prefetch_evicted_unused += 1
                memory[block] = None
        while len(memory) > self._refetch_capacity:
            memory.popitem(last=False)
