"""Cache hit/miss accounting with prefetch effectiveness split out.

This is the statistics surface of the cache subsystem (paper Section I /
Section V: "caching & prefetching" is the first optimization the framework
is built to enable).  It supersedes the dataclass that used to live in
``repro.optimize.prefetch`` with tightened prefetch-attribution semantics:

* ``prefetches_issued`` counts *blocks* speculatively loaded;
* ``prefetch_hits`` counts blocks whose **first demand access after the
  prefetch that loaded them** was a hit -- each issued prefetch is
  attributed at most once, and a block that was prefetched, evicted
  unused, and then *re-fetched on demand* is a plain demand fill: later
  hits on it must not be re-counted as prefetch hits (the accounting bug
  this port fixes -- keeping the prefetched flag anywhere but on the
  resident entry itself lets it survive eviction and double-count);
* ``prefetch_evicted_unused`` counts prefetched blocks that left the
  cache without ever being demanded (pure pollution);
* ``demand_refetches`` counts demand misses on blocks that had been
  prefetched earlier but were evicted before use -- the "too early"
  failure mode, useful when tuning the prefetch budget.

Together these guarantee the invariant::

    prefetch_hits + prefetch_evicted_unused + (still-resident unused)
        == prefetches_issued

so ``prefetch_accuracy`` can never exceed 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hit/miss accounting, with prefetch effectiveness split out."""

    hits: int = 0
    misses: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0   # hits on blocks that entered via prefetch
    prefetch_evicted_unused: int = 0  # prefetched blocks evicted untouched
    demand_refetches: int = 0  # demand misses on evicted-unused prefetches

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetched blocks that saw a demand hit.

        Attribution is once per issued prefetch: a prefetched block that
        is evicted unused and later re-fetched on demand contributes a
        ``demand_refetches`` tick, never a second ``prefetch_hits`` one.
        """
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetch_hits / self.prefetches_issued

    def merged(self, other: "CacheStats") -> "CacheStats":
        """A new ``CacheStats`` with both sets of counters summed."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            prefetches_issued=self.prefetches_issued
            + other.prefetches_issued,
            prefetch_hits=self.prefetch_hits + other.prefetch_hits,
            prefetch_evicted_unused=self.prefetch_evicted_unused
            + other.prefetch_evicted_unused,
            demand_refetches=self.demand_refetches + other.demand_refetches,
        )

    def as_dict(self) -> dict:
        """A JSON-friendly view (benchmarks and the CLI record this)."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": round(self.hit_ratio, 6),
            "prefetches_issued": self.prefetches_issued,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_accuracy": round(self.prefetch_accuracy, 6),
            "prefetch_evicted_unused": self.prefetch_evicted_unused,
            "demand_refetches": self.demand_refetches,
        }
