"""Command-line interface for the characterization framework.

Subcommands mirror the workflows of the paper's evaluation:

* ``repro generate``     -- produce a synthetic or enterprise workload trace
* ``repro stats``        -- Table I-style statistics of a trace file
* ``repro characterize`` -- replay a trace through the real-time pipeline
  and report the detected correlations (optionally as association rules)
* ``repro mine``         -- offline FIM over a trace's transactions (the
  ground-truth path)
* ``repro serve``        -- run the streaming ingest/query server
* ``repro send``         -- stream a trace into a running server

Trace files are detected by suffix: ``.csv`` (MSR Cambridge convention),
``.bin`` (this repo's binary format), ``.txt`` (blkparse-style text).
A trailing ``.gz`` on any of them reads/writes through gzip.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..analysis.cdf import correlation_cdf
from ..analysis.report import build_report, render_report
from ..core.config import BACKEND_NAMES, AnalyzerConfig
from ..fim.apriori import apriori
from ..fim.eclat import eclat
from ..fim.fpgrowth import fpgrowth
from ..fim.itemset import frequent_pairs
from ..fim.pairs import exact_pair_counts, sorted_by_frequency
from ..fim.rules import rules_from_analyzer
from ..monitor.window import DynamicLatencyWindow, StaticWindow
from ..pipeline import run_pipeline
from ..telemetry.export import render_digest, render_json, render_prometheus
from ..telemetry.metrics import MetricsRegistry
from ..trace.errors import ErrorPolicy, IngestReport
from ..trace.io import (
    load_binary,
    load_blkparse_text,
    load_msr_csv,
    save_binary,
    save_blkparse_text,
    save_msr_csv,
    trace_format_suffix,
)
from ..trace.record import TraceRecord
from ..trace.stats import compute_stats
from ..workloads.enterprise import PROFILES, generate_named
from ..workloads.synthetic import (
    SyntheticKind,
    SyntheticSpec,
    generate_synthetic,
)

_MINERS = {"apriori": apriori, "eclat": eclat, "fpgrowth": fpgrowth}


def load_trace(path: str,
               policy: ErrorPolicy = ErrorPolicy.STRICT,
               dead_letters_path: Optional[str] = None) -> List[TraceRecord]:
    """Load a trace file, dispatching on its suffix.

    Under a non-strict ``policy``, malformed rows are skipped (and sampled
    into a dead-letter buffer under ``quarantine``) with a summary printed
    to stderr instead of aborting the run; ``dead_letters_path`` addition-
    ally dumps the quarantined sample as NDJSON.  A ``.gz`` suffix on any
    format reads through gzip (``trace.csv.gz`` etc.).
    """
    suffix = trace_format_suffix(path)
    report = IngestReport()
    if suffix == ".csv":
        records = load_msr_csv(path, policy=policy, report=report)
    elif suffix == ".bin":
        records = load_binary(path, policy=policy, report=report)
    elif suffix in (".txt", ".blkparse"):
        records = load_blkparse_text(path)
    else:
        raise SystemExit(
            f"cannot infer trace format of {path!r}; "
            f"use .csv (MSR), .bin (binary), or .txt (blkparse), "
            f"optionally with a .gz suffix"
        )
    if report.rows_bad:
        print(
            f"warning: skipped {report.rows_bad} malformed rows "
            f"({100 * report.error_rate:.2f}% of {report.rows_total})",
            file=sys.stderr,
        )
        if report.dead_letters is not None and len(report.dead_letters):
            sample = report.dead_letters.rows()[0]
            print(
                f"warning: first quarantined row (line {sample.line_number}): "
                f"{sample.error}",
                file=sys.stderr,
            )
            if dead_letters_path:
                dumped = report.dead_letters.dump_ndjson(dead_letters_path)
                print(f"wrote {dumped} quarantined rows to "
                      f"{dead_letters_path}", file=sys.stderr)
    return records


def _policy_from(args: argparse.Namespace) -> ErrorPolicy:
    return ErrorPolicy.parse(getattr(args, "error_policy", "strict"))


def _add_error_policy_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--error-policy",
        choices=[policy.value for policy in ErrorPolicy],
        default="strict",
        help="malformed trace rows: strict=abort (default), "
             "lenient=count+skip, quarantine=count+skip+sample",
    )


def save_trace(records: List[TraceRecord], path: str) -> None:
    suffix = trace_format_suffix(path)
    if suffix == ".csv":
        save_msr_csv(records, path)
    elif suffix == ".bin":
        save_binary(records, path)
    elif suffix in (".txt", ".blkparse"):
        save_blkparse_text(records, path)
    else:
        raise SystemExit(
            f"cannot infer trace format of {path!r}; "
            f"use .csv (MSR), .bin (binary), or .txt (blkparse), "
            f"optionally with a .gz suffix"
        )


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def cmd_generate(args: argparse.Namespace) -> int:
    synthetic_kinds = {kind.value: kind for kind in SyntheticKind}
    if args.workload in synthetic_kinds:
        spec = SyntheticSpec(
            kind=synthetic_kinds[args.workload],
            duration=args.duration,
            seed=args.seed,
        )
        records, _truth = generate_synthetic(spec)
    elif args.workload in PROFILES:
        records, _truth = generate_named(
            args.workload, requests=args.requests, seed=args.seed
        )
    else:
        known = sorted(synthetic_kinds) + sorted(PROFILES)
        raise SystemExit(f"unknown workload {args.workload!r}; know {known}")
    save_trace(records, args.output)
    print(f"wrote {len(records)} requests to {args.output}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    records = load_trace(args.trace, _policy_from(args))
    stats = compute_stats(records)
    print(f"requests            : {stats.requests}")
    print(f"duration            : {stats.duration:.3f} s")
    print(f"total data          : {stats.total_gb:.3f} GB")
    print(f"unique data         : {stats.unique_gb:.3f} GB")
    print(f"total/unique        : "
          f"{stats.total_bytes / stats.unique_bytes:.1f}x")
    print(f"interarrival <100us : {stats.fast_interarrival_percent:.1f}%")
    print(f"read fraction       : {100 * stats.read_fraction:.1f}%")
    if stats.mean_latency is not None:
        print(f"mean trace latency  : {stats.mean_latency * 1e3:.3f} ms")
    return 0


def _window_from(args: argparse.Namespace):
    if args.window is None:
        return DynamicLatencyWindow()
    return StaticWindow(args.window)


def _wants_metrics(args: argparse.Namespace) -> bool:
    return bool(args.metrics or args.metrics_json or
                args.metrics_prometheus or
                getattr(args, "metrics_http", None) is not None)


def _export_metrics(registry: MetricsRegistry,
                    args: argparse.Namespace) -> None:
    """Write the run's telemetry wherever the flags asked for it."""
    if args.metrics_json:
        Path(args.metrics_json).write_text(render_json(registry) + "\n")
        print(f"wrote metrics snapshot to {args.metrics_json}")
    if args.metrics_prometheus:
        Path(args.metrics_prometheus).write_text(render_prometheus(registry))
        print(f"wrote Prometheus exposition to {args.metrics_prometheus}")
    if args.metrics:
        print("\ntelemetry:")
        for line in render_digest(registry).splitlines():
            print(f"  {line}")


def cmd_characterize(args: argparse.Namespace) -> int:
    from ..engine.checkpoint import dump_engine, load_engine

    records = load_trace(args.trace, _policy_from(args),
                         dead_letters_path=args.dead_letters)
    # A fresh registry per run keeps the export scoped to this trace
    # instead of whatever the process-local default accumulated.
    registry = MetricsRegistry() if _wants_metrics(args) else None
    ops = None
    if args.metrics_http is not None:
        from ..telemetry.httpd import OpsServer
        ops = OpsServer(registry=registry, port=args.metrics_http).start()
        print(f"ops endpoint on {ops.address} "
              f"(/metrics /healthz /readyz /vars)", flush=True)
    analyzer = None
    config = None
    if args.load_synopsis:
        with open(args.load_synopsis, "rb") as stream:
            analyzer = load_engine(stream).engine
    else:
        config = AnalyzerConfig(
            item_capacity=args.capacity,
            correlation_capacity=args.capacity,
            promote_threshold=args.promote_threshold,
            backend=args.backend,
        )
    result = run_pipeline(
        records,
        config=config,
        analyzer=analyzer,
        window=_window_from(args),
        max_transaction_size=args.max_transaction,
        dedup=not args.no_dedup,
        record_offline=False,
        shards=args.shards,
        batch_size=args.batch_size,
        parallel=args.parallel,
        registry=registry,
    )
    if args.save_synopsis:
        with open(args.save_synopsis, "wb") as stream:
            written = dump_engine(result.analyzer, stream)
        print(f"saved synopsis ({written} bytes) to {args.save_synopsis}")
    monitor = result.monitor_stats
    print(f"processed {monitor.events_seen} events into "
          f"{monitor.transactions_emitted} transactions "
          f"({monitor.duplicates_removed} duplicates removed)")
    detected = result.frequent_pairs(min_support=args.support)
    print(f"\ntop correlations (support >= {args.support}):")
    for pair, tally in detected[:args.top]:
        print(f"  {pair}  x{tally}")
    if not detected:
        print("  (none)")
    if args.rules:
        print(f"\nassociation rules (confidence >= {args.min_confidence}):")
        rules = rules_from_analyzer(
            result.analyzer,
            min_support=args.support,
            min_confidence=args.min_confidence,
        )
        for rule in rules[:args.top]:
            print(f"  {rule}")
        if not rules:
            print("  (none)")
    if registry is not None:
        _export_metrics(registry, args)
    result.release()  # shut down process-shard workers, if any
    if ops is not None:
        ops.stop()
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    records = load_trace(args.trace, _policy_from(args))
    report = build_report(
        records,
        support=args.support,
        capacity=args.capacity,
        top=args.top,
        window=_window_from(args),
    )
    print(render_report(report, name=Path(args.trace).name))
    return 0


def cmd_drift(args: argparse.Namespace) -> int:
    """The Fig. 10 experiment on two trace files: A -> B -> A."""
    from ..analysis.diff import diff_snapshots
    from ..blkdev.device import SsdDevice
    from ..blkdev.replay import replay_timed
    from ..core.analyzer import OnlineAnalyzer
    from ..monitor.monitor import Monitor
    from ..workloads.composite import drift_workload

    first = load_trace(args.trace_a, _policy_from(args))
    second = load_trace(args.trace_b, _policy_from(args))
    segment = args.segment or min(len(first) // 2, len(second))
    if len(first) < 2 * segment or len(second) < segment:
        raise SystemExit(
            f"need >= {2 * segment} requests in A and >= {segment} in B"
        )
    _flat, segments = drift_workload(first, second, segment,
                                     labels=("A", "B"))
    analyzer = OnlineAnalyzer(AnalyzerConfig(
        item_capacity=args.capacity, correlation_capacity=args.capacity
    ))
    monitor = Monitor(window=_window_from(args))
    monitor.add_sink(lambda txn: analyzer.process(txn.extents))
    device = SsdDevice(seed=1)

    previous = None
    for part in segments:
        replay_timed(part.records, device,
                     listeners=[monitor.on_event], collect=False)
        monitor.flush()
        snapshot = dict(analyzer.pair_frequencies())
        line = f"after {part.label}: {len(snapshot)} resident pairs"
        if previous is not None:
            delta = diff_snapshots(previous, snapshot)
            line += (f"  (+{len(delta.appeared)} new, "
                     f"-{len(delta.vanished)} gone, "
                     f"stability {delta.stability:.2f})")
        print(line)
        previous = snapshot
    return 0


def cmd_mine(args: argparse.Namespace) -> int:
    records = load_trace(args.trace, _policy_from(args))
    result = run_pipeline(records, window=_window_from(args),
                          max_transaction_size=args.max_transaction)
    transactions = result.offline_transactions()
    miner = _MINERS[args.algorithm]
    itemsets = miner(transactions, min_support=args.support, max_size=2)
    pairs = frequent_pairs(itemsets)
    print(f"{args.algorithm}: {len(pairs)} frequent pairs at "
          f"support {args.support} over {len(transactions)} transactions")
    counts = exact_pair_counts(transactions)
    cdf = correlation_cdf(counts) if counts else None
    if cdf is not None:
        print(f"unique pairs {cdf.total_pairs}, "
              f"{100 * cdf.support_one_fraction:.1f}% occur once")
    ranked = sorted(pairs.items(), key=lambda entry: -entry[1])
    for itemset, support in ranked[:args.top]:
        a, b = sorted(itemset)
        print(f"  ({a}, {b})  x{support}")
    return 0


def cmd_cache_sim(args: argparse.Namespace) -> int:
    """Hit-ratio sweep of the correlation-driven prefetching cache.

    The trace is monitored once (same windowing as ``characterize``) to
    recover its transactions; every (cache size, eviction policy,
    prefetch mode) combination then replays those transactions through a
    fresh cache -- and, for the ``synopsis`` mode, a fresh synopsis
    backend trained online behind the cache (strictly causal).
    """
    import json

    from ..cache import (
        OfflineMiner,
        SimulatedBlockCache,
        SynopsisPrefetcher,
        run_closed_loop,
        simulate_cache,
    )
    from ..engine.backends import create_backend

    records = load_trace(args.trace, _policy_from(args))
    pipeline = run_pipeline(
        records,
        window=_window_from(args),
        max_transaction_size=args.max_transaction,
        record_offline=True,
    )
    transactions = pipeline.offline_transactions()
    accesses = [extent for extents in transactions for extent in extents]
    config = AnalyzerConfig(
        item_capacity=args.capacity,
        correlation_capacity=args.capacity,
        backend=args.backend,
    )

    print(f"{len(records)} requests -> {len(transactions)} transactions, "
          f"{len(accesses)} cached accesses "
          f"(backend={args.backend}, budget={args.budget}, "
          f"min-support={args.min_support})")
    header = (f"{'size':>8}  {'policy':<8} {'prefetch':<9} "
              f"{'hit_ratio':>9} {'accuracy':>9} {'issued':>9}")
    print(header)
    print("-" * len(header))

    results = []
    for size in args.sizes:
        for policy in args.policies:
            for mode in args.modes:
                if mode == "none":
                    stats = simulate_cache(accesses, size, policy=policy)
                elif mode == "synopsis":
                    engine = create_backend(args.backend, config)
                    cache = SimulatedBlockCache(size, policy=policy)
                    stats = run_closed_loop(
                        transactions, engine, cache,
                        SynopsisPrefetcher(
                            engine,
                            budget=args.budget,
                            min_support=args.min_support,
                        ),
                    )
                else:  # offline: MITHRIL-style mined-trace baseline
                    miner = OfflineMiner(
                        lookahead=args.lookahead,
                        min_support=args.min_support,
                        fanout=args.budget,
                    ).mine(accesses)
                    stats = simulate_cache(
                        accesses, size, policy=policy, prefetcher=miner
                    )
                entry = {
                    "cache_blocks": size,
                    "policy": policy,
                    "prefetch": mode,
                    "backend": args.backend if mode == "synopsis" else None,
                    **stats.as_dict(),
                }
                results.append(entry)
                print(f"{size:>8}  {policy:<8} {mode:<9} "
                      f"{stats.hit_ratio:>9.4f} "
                      f"{stats.prefetch_accuracy:>9.4f} "
                      f"{stats.prefetches_issued:>9}")

    if args.json:
        payload = {}
        path = Path(args.json)
        if path.exists():
            try:
                payload = json.loads(path.read_text())
            except ValueError:
                payload = {}
        payload["cache_sim"] = {
            "trace": Path(args.trace).name,
            "requests": len(records),
            "transactions": len(transactions),
            "backend": args.backend,
            "budget": args.budget,
            "min_support": args.min_support,
            "results": results,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"\nwrote {len(results)} results to {args.json}")
    return 0


def _address_from(args: argparse.Namespace):
    if args.unix:
        return args.unix
    if args.port is None:
        raise SystemExit("need --unix PATH or --port N")
    return (args.host, args.port)


def cmd_serve(args: argparse.Namespace) -> int:
    from ..resilience.service import ResilientCharacterizationService
    from ..server.server import CharacterizationServer
    from ..telemetry.metrics import get_default_registry

    if args.supervise:
        return _serve_supervised(args)

    if args.trace_log:
        from ..telemetry.tracelog import TraceLog, install_tracelog
        install_tracelog(TraceLog(
            args.trace_log,
            sample_rate=args.trace_sample,
            slow_threshold=args.trace_slow,
        ))
    registry = get_default_registry()
    config = AnalyzerConfig(
        item_capacity=args.capacity,
        correlation_capacity=args.capacity,
        backend=args.backend,
    )

    def service_factory():
        return ResilientCharacterizationService(
            config=AnalyzerConfig(
                item_capacity=args.capacity,
                correlation_capacity=args.capacity,
                backend=args.backend,
            ),
            min_support=args.support,
            shards=args.shards,
            shard_processes=args.shard_processes,
            snapshot_interval=args.snapshot_interval,
            registry=registry,
        )

    service = ResilientCharacterizationService(
        config=config,
        min_support=args.support,
        shards=args.shards,
        shard_processes=args.shard_processes,
        snapshot_interval=args.snapshot_interval,
        registry=registry,
    )
    server = CharacterizationServer(
        service,
        unix_path=args.unix,
        host=args.host,
        port=args.port if args.port is not None else 0,
        soft_limit=args.soft_limit,
        hard_limit=args.hard_limit,
        checkpoint_path=args.checkpoint,
        service_factory=service_factory,
        max_tenants=args.max_tenants,
        registry=registry,
        wal_dir=args.wal_dir,
        fsync=args.fsync,
        fsync_interval=args.fsync_interval,
        wal_truncate=not args.keep_wal,
        heartbeat_path=args.heartbeat,
        dead_letter_path=args.dead_letters,
        http_port=args.http_port,
        http_host=args.http_host,
    )
    where = args.unix if args.unix else f"{args.host}:{args.port}"
    durability = f", wal={args.wal_dir} fsync={args.fsync}" \
        if args.wal_dir else ""
    ops = f", ops http://{args.http_host}:{args.http_port}" \
        if args.http_port is not None else ""
    print(f"serving on {where} "
          f"(shards={args.shards}, capacity={args.capacity}, "
          f"soft={args.soft_limit}, hard={args.hard_limit}"
          f"{durability}{ops}); "
          f"Ctrl-C to drain and exit", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    stats = service.monitor.stats
    print(f"drained: {stats.events_seen} events, "
          f"{service.transactions} transactions characterized")
    if args.checkpoint:
        print(f"checkpointed to {args.checkpoint}")
    return 0


def _serve_supervised(args: argparse.Namespace) -> int:
    """Run the server under the in-tree supervisor: the worker process is
    restarted (with backoff) when it crashes or its heartbeat goes stale,
    until it exits cleanly or crash-loops past the restart budget."""
    from ..server.supervisor import (
        Supervisor,
        SupervisorGaveUp,
        WorkerConfig,
    )

    if not args.wal_dir:
        print("warning: --supervise without --wal-dir restarts workers "
              "but cannot recover acknowledged events", file=sys.stderr)
    heartbeat = args.heartbeat
    if heartbeat is None and args.wal_dir:
        heartbeat = str(Path(args.wal_dir) / "heartbeat.json")
    config = WorkerConfig(
        unix_path=args.unix,
        host=args.host,
        port=args.port if args.port is not None else 0,
        checkpoint_path=args.checkpoint,
        wal_dir=args.wal_dir,
        fsync=args.fsync,
        fsync_interval=args.fsync_interval,
        wal_truncate=not args.keep_wal,
        heartbeat_path=heartbeat,
        dead_letter_path=args.dead_letters,
        soft_limit=args.soft_limit,
        hard_limit=args.hard_limit,
        max_tenants=args.max_tenants,
        capacity=args.capacity,
        support=args.support,
        shards=args.shards,
        shard_processes=args.shard_processes,
        snapshot_interval=args.snapshot_interval,
        http_port=args.http_port,
        http_host=args.http_host,
        trace_log=args.trace_log,
        trace_sample_rate=args.trace_sample,
        trace_slow_threshold=args.trace_slow,
    )
    supervisor = Supervisor(
        config,
        max_restarts=args.max_restarts,
        restart_window=args.restart_window,
        heartbeat_timeout=args.heartbeat_timeout,
    )
    where = args.unix if args.unix else f"{args.host}:{args.port}"
    print(f"supervising server on {where} "
          f"(wal={args.wal_dir}, fsync={args.fsync}, "
          f"restart budget {args.max_restarts}/{args.restart_window}s); "
          f"Ctrl-C to stop", flush=True)
    try:
        code = supervisor.run()
    except KeyboardInterrupt:
        code = supervisor.stop()
    except SupervisorGaveUp as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if supervisor.restarts:
        print(f"worker restarted {supervisor.restarts} time(s); "
              f"last reason: {supervisor.last_restart_reason}")
    return 0 if code in (0, None) else 1


def cmd_send(args: argparse.Namespace) -> int:
    from ..monitor.events import BlockIOEvent
    from ..resilience.policy import BackoffPolicy
    from ..server.circuit import CircuitBreaker
    from ..server.client import BatchingWriter, CharacterizationClient

    records = load_trace(args.trace, _policy_from(args))
    client = CharacterizationClient(
        _address_from(args), tenant=args.tenant,
        request_deadline=args.deadline,
        policy=BackoffPolicy(retries=args.retries),
        breaker=CircuitBreaker() if args.breaker else None,
    )
    with client:
        with BatchingWriter(client, max_batch=args.batch_size) as writer:
            for record in records:
                writer.add(BlockIOEvent.from_record(record))
        print(f"sent {client.events_sent} events in "
              f"{client.frames_sent} frames "
              f"({client.throttle_count} throttles, "
              f"{client.reconnects} reconnects, "
              f"{client.duplicates_acked} duplicate acks)")
        if args.top:
            detected = client.query_top(k=args.top,
                                        min_support=args.support)
            print(f"\ntop correlations (support >= {args.support}):")
            for pair, tally in detected:
                print(f"  {pair}  x{tally}")
            if not detected:
                print("  (none)")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Real-time data access correlation characterization",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a workload trace file"
    )
    generate.add_argument("workload",
                          help="one-to-one | one-to-many | many-to-many | "
                               "wdev | src2 | rsrch | stg | hm")
    generate.add_argument("output", help="trace path (.csv/.bin/.txt)")
    generate.add_argument("--requests", type=int, default=20000,
                          help="enterprise workload length (default 20000)")
    generate.add_argument("--duration", type=float, default=120.0,
                          help="synthetic workload seconds (default 120)")
    generate.add_argument("--seed", type=int, default=42)
    generate.set_defaults(handler=cmd_generate)

    stats = subparsers.add_parser("stats", help="Table I-style statistics")
    stats.add_argument("trace")
    _add_error_policy_flag(stats)
    stats.set_defaults(handler=cmd_stats)

    characterize = subparsers.add_parser(
        "characterize", help="real-time online characterization"
    )
    characterize.add_argument("trace")
    _add_error_policy_flag(characterize)
    characterize.add_argument("--support", type=int, default=5)
    characterize.add_argument("--capacity", type=int, default=16 * 1024,
                              help="per-tier table entries C (default 16K)")
    characterize.add_argument("--promote-threshold", type=int, default=2)
    characterize.add_argument("--window", type=float, default=None,
                              help="static window seconds "
                                   "(default: dynamic 2x latency)")
    characterize.add_argument("--max-transaction", type=int, default=8)
    characterize.add_argument("--backend", choices=list(BACKEND_NAMES),
                              default="two-tier",
                              help="synopsis backend: the paper's two-tier "
                                   "LRU tables (exact, largest), chh "
                                   "(correlated heavy hitters), or cms "
                                   "(count-min pair sketch)")
    characterize.add_argument("--shards", type=int, default=1,
                              help="hash-partition the synopsis across N "
                                   "shard table pairs at capacity/N each "
                                   "(default 1: single analyzer)")
    characterize.add_argument("--parallel", choices=["thread", "process"],
                              default=None,
                              help="process shard batches with one worker "
                                   "thread per shard, or back the run with "
                                   "one worker process per shard "
                                   "(GIL-free; pair with --shards/"
                                   "--batch-size)")
    characterize.add_argument("--batch-size", type=int, default=None,
                              help="feed events to the monitor in batches "
                                   "of this size (default: per-event)")
    characterize.add_argument("--no-dedup", action="store_true")
    characterize.add_argument("--top", type=int, default=20)
    characterize.add_argument("--rules", action="store_true",
                              help="also print association rules")
    characterize.add_argument("--min-confidence", type=float, default=0.5)
    characterize.add_argument("--save-synopsis", metavar="PATH",
                              help="checkpoint the synopsis after the run")
    characterize.add_argument("--load-synopsis", metavar="PATH",
                              help="resume from a checkpointed synopsis")
    characterize.add_argument("--metrics", action="store_true",
                              help="print a telemetry digest after the run")
    characterize.add_argument("--metrics-json", metavar="PATH",
                              help="write the run's metrics snapshot "
                                   "as JSON")
    characterize.add_argument("--metrics-prometheus", metavar="PATH",
                              help="write the run's metrics in Prometheus "
                                   "text exposition format")
    characterize.add_argument("--metrics-http", metavar="PORT", type=int,
                              default=None,
                              help="serve /metrics, /healthz, /readyz and "
                                   "/vars on 127.0.0.1:PORT for the "
                                   "duration of the run (0: ephemeral)")
    characterize.add_argument("--dead-letters", metavar="PATH",
                              default=None,
                              help="with --error-policy quarantine: dump "
                                   "the quarantined row sample to PATH as "
                                   "NDJSON")
    characterize.set_defaults(handler=cmd_characterize)

    report = subparsers.add_parser(
        "report", help="full characterization report"
    )
    report.add_argument("trace")
    _add_error_policy_flag(report)
    report.add_argument("--support", type=int, default=5)
    report.add_argument("--capacity", type=int, default=16 * 1024)
    report.add_argument("--top", type=int, default=20)
    report.add_argument("--window", type=float, default=None)
    report.set_defaults(handler=cmd_report)

    drift = subparsers.add_parser(
        "drift", help="concept-drift experiment: A -> B -> A (Fig. 10)"
    )
    drift.add_argument("trace_a")
    drift.add_argument("trace_b")
    _add_error_policy_flag(drift)
    drift.add_argument("--segment", type=int, default=None,
                       help="requests per segment (default: fits the traces)")
    drift.add_argument("--capacity", type=int, default=1024)
    drift.add_argument("--window", type=float, default=None)
    drift.set_defaults(handler=cmd_drift)

    mine = subparsers.add_parser(
        "mine", help="offline frequent itemset mining (ground truth)"
    )
    mine.add_argument("trace")
    _add_error_policy_flag(mine)
    mine.add_argument("--algorithm", choices=sorted(_MINERS),
                      default="eclat")
    mine.add_argument("--support", type=int, default=5)
    mine.add_argument("--window", type=float, default=None)
    mine.add_argument("--max-transaction", type=int, default=8)
    mine.add_argument("--top", type=int, default=20)
    mine.set_defaults(handler=cmd_mine)

    cache_sim = subparsers.add_parser(
        "cache-sim",
        help="hit-ratio sweep of the correlation-prefetching cache",
    )
    cache_sim.add_argument("trace")
    _add_error_policy_flag(cache_sim)
    cache_sim.add_argument("--sizes", type=int, nargs="+",
                           default=[1024, 4096],
                           help="cache capacities in blocks to sweep "
                                "(default: 1024 4096)")
    cache_sim.add_argument("--policies", nargs="+",
                           choices=["lru", "arc", "clock2q"],
                           default=["lru", "clock2q"],
                           help="eviction policies to sweep "
                                "(default: lru clock2q)")
    cache_sim.add_argument("--modes", nargs="+",
                           choices=["none", "synopsis", "offline"],
                           default=["none", "synopsis", "offline"],
                           help="prefetch modes: none (baseline), synopsis "
                                "(online closed loop), offline "
                                "(MITHRIL-style mined-trace baseline)")
    cache_sim.add_argument("--backend", choices=list(BACKEND_NAMES),
                           default="two-tier",
                           help="synopsis backend for the online mode")
    cache_sim.add_argument("--capacity", type=int, default=16 * 1024,
                           help="synopsis per-tier table entries "
                                "(default 16K)")
    cache_sim.add_argument("--budget", type=int, default=2,
                           help="partners prefetched per access "
                                "(default 2)")
    cache_sim.add_argument("--min-support", type=int, default=2,
                           help="confidence floor on a partner's tally "
                                "(default 2)")
    cache_sim.add_argument("--lookahead", type=int, default=8,
                           help="offline miner association window "
                                "(default 8)")
    cache_sim.add_argument("--window", type=float, default=None,
                           help="static window seconds "
                                "(default: dynamic 2x latency)")
    cache_sim.add_argument("--max-transaction", type=int, default=8)
    cache_sim.add_argument("--json", metavar="PATH",
                           help="merge results into PATH as JSON "
                                "(BENCH_cache.json convention)")
    cache_sim.set_defaults(handler=cmd_cache_sim)

    serve = subparsers.add_parser(
        "serve", help="run the streaming ingest/query server"
    )
    serve.add_argument("--unix", metavar="PATH",
                       help="serve on a Unix socket at PATH")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None,
                       help="serve on TCP host:port (ignored with --unix)")
    serve.add_argument("--capacity", type=int, default=16 * 1024)
    serve.add_argument("--support", type=int, default=5)
    serve.add_argument("--shards", type=int, default=1)
    serve.add_argument("--backend", choices=list(BACKEND_NAMES),
                       default="two-tier",
                       help="synopsis backend (see characterize --backend)")
    serve.add_argument("--shard-processes", action="store_true",
                       help="back each tenant's shards with one worker "
                            "process per shard (GIL-free ingest)")
    serve.add_argument("--snapshot-interval", type=int, default=1000)
    serve.add_argument("--soft-limit", type=int, default=8192,
                       help="queued events per connection before THROTTLE "
                            "replies (default 8192)")
    serve.add_argument("--hard-limit", type=int, default=65536,
                       help="queued events per connection before frames "
                            "are rejected (default 65536)")
    serve.add_argument("--checkpoint", metavar="PATH",
                       help="restore from PATH at startup if present; "
                            "checkpoint there on shutdown and on "
                            "CHECKPOINT frames")
    serve.add_argument("--max-tenants", type=int, default=16)
    serve.add_argument("--wal-dir", metavar="DIR", default=None,
                       help="journal every accepted frame to a write-ahead "
                            "log in DIR and recover from it at startup")
    serve.add_argument("--fsync", choices=["always", "interval", "never"],
                       default="interval",
                       help="WAL durability: always=fsync per frame, "
                            "interval=fsync on a timer (default; survives "
                            "process death), never=OS flush only")
    serve.add_argument("--fsync-interval", type=float, default=0.05,
                       help="seconds between WAL fsyncs with "
                            "--fsync interval (default 0.05)")
    serve.add_argument("--keep-wal", action="store_true",
                       help="retain checkpoint-covered WAL segments "
                            "instead of truncating them (full history; "
                            "lets an intact journal rescue a corrupt "
                            "checkpoint)")
    serve.add_argument("--heartbeat", metavar="PATH", default=None,
                       help="touch PATH periodically for an external "
                            "supervisor to watch")
    serve.add_argument("--dead-letters", metavar="PATH", default=None,
                       help="dump backpressure-rejected frames here as "
                            "NDJSON on shutdown (default: "
                            "<wal-dir>/dead-letters.ndjson)")
    serve.add_argument("--supervise", action="store_true",
                       help="run the server in a supervised worker "
                            "process: restart on crash or stale "
                            "heartbeat, give up on a crash loop")
    serve.add_argument("--max-restarts", type=int, default=5,
                       help="restart budget within --restart-window "
                            "before the supervisor gives up (default 5)")
    serve.add_argument("--restart-window", type=float, default=30.0,
                       help="crash-loop detection window, seconds "
                            "(default 30)")
    serve.add_argument("--heartbeat-timeout", type=float, default=None,
                       help="with --supervise: restart a worker whose "
                            "heartbeat is older than this many seconds "
                            "(default: liveness only)")
    serve.add_argument("--http-port", type=int, default=None,
                       help="serve the ops endpoint (/metrics /healthz "
                            "/readyz /vars) on this port (0: ephemeral); "
                            "with --supervise the worker process binds it")
    serve.add_argument("--http-host", default="127.0.0.1",
                       help="bind address for --http-port "
                            "(default 127.0.0.1)")
    serve.add_argument("--trace-log", metavar="PATH", default=None,
                       help="append sampled request-trace spans to PATH "
                            "as NDJSON (client/server/shard span tree)")
    serve.add_argument("--trace-sample", type=float, default=0.01,
                       help="fraction of requests to trace (default 0.01; "
                            "slow requests are always recorded)")
    serve.add_argument("--trace-slow", type=float, default=0.25,
                       help="spans at least this many seconds long are "
                            "recorded regardless of sampling "
                            "(default 0.25)")
    serve.set_defaults(handler=cmd_serve)

    send = subparsers.add_parser(
        "send", help="stream a trace file into a running server"
    )
    send.add_argument("trace")
    _add_error_policy_flag(send)
    send.add_argument("--unix", metavar="PATH",
                      help="connect to a Unix socket at PATH")
    send.add_argument("--host", default="127.0.0.1")
    send.add_argument("--port", type=int, default=None)
    send.add_argument("--batch-size", type=int, default=512,
                      help="events per BATCH frame (default 512)")
    send.add_argument("--tenant", default=None,
                      help="route events onto this tenant's engine")
    send.add_argument("--top", type=int, default=0,
                      help="after streaming, query and print the top-K "
                           "correlations (default 0: skip)")
    send.add_argument("--support", type=int, default=5)
    send.add_argument("--deadline", type=float, default=None,
                      help="per-request deadline in seconds, retries and "
                           "backoff included (default: unbounded)")
    send.add_argument("--retries", type=int, default=3,
                      help="reconnect/overload retries per request "
                           "(default 3)")
    send.add_argument("--breaker", action="store_true",
                      help="fail fast through a circuit breaker while "
                           "the server is down")
    send.set_defaults(handler=cmd_send)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
