"""Core contribution: extents, the two-tier synopsis, and the online analyzer."""

from .adaptive import AdaptivePolicy, AdaptiveTwoTierTable
from .analyzer import AnalyzerReport, OnlineAnalyzer
from .arc import ArcStats, ArcTable
from .config import AnalyzerConfig
from .correlation_table import CorrelationTable
from .extent import Extent, ExtentPair, block_correlations, unique_pairs
from .item_table import ItemTable
from .lru import LruQueue
from .serialize import (
    CheckpointCorruptError,
    dump_analyzer,
    dumps_analyzer,
    load_analyzer,
    load_checkpoint,
    loads_analyzer,
    save_checkpoint,
    synopsis_size_bytes,
)
from .memory_model import (
    EXTENT_BYTES,
    ITEM_ENTRY_BYTES,
    PAIR_ENTRY_BYTES,
    SynopsisMemoryModel,
    capacity_for_budget,
)
from .two_tier import TIER1, TIER2, AccessResult, TableStats, TwoTierTable
from .typed import CorrelationKind, TypedOnlineAnalyzer, TypeTally

__all__ = [
    "AdaptivePolicy",
    "AdaptiveTwoTierTable",
    "AnalyzerConfig",
    "AnalyzerReport",
    "ArcStats",
    "ArcTable",
    "AccessResult",
    "CorrelationTable",
    "Extent",
    "ExtentPair",
    "ItemTable",
    "LruQueue",
    "OnlineAnalyzer",
    "SynopsisMemoryModel",
    "TableStats",
    "TwoTierTable",
    "CorrelationKind",
    "TypedOnlineAnalyzer",
    "TypeTally",
    "TIER1",
    "TIER2",
    "EXTENT_BYTES",
    "ITEM_ENTRY_BYTES",
    "PAIR_ENTRY_BYTES",
    "block_correlations",
    "capacity_for_budget",
    "unique_pairs",
    "CheckpointCorruptError",
    "dump_analyzer",
    "dumps_analyzer",
    "load_analyzer",
    "load_checkpoint",
    "loads_analyzer",
    "save_checkpoint",
    "synopsis_size_bytes",
]
