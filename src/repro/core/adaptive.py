"""Adaptive T1/T2 sizing for the two-tier synopsis.

The paper fixes equal tier sizes but notes that "their ratio can be
adjusted dynamically for specific applications", with one hard-won caveat
(Section IV-C1): the structure "needs to have a sufficiently large T1" to
absorb infrequent noise, so any dynamic resizing must respect minimum
fixed sizes for both tiers -- otherwise the feedback loop "would end up
favoring T2" (every promotion looks like a T2 success, starving the very
tier that feeds promotions).

:class:`AdaptiveTwoTierTable` implements that design: total capacity is
fixed; every ``adjust_interval`` lookups it compares the tiers' hit
densities (hits per entry of capacity) over the last window and shifts one
``step`` of capacity towards the denser tier, clamped to the minimum
sizes.  With adaptation disabled it behaves exactly like the fixed table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Hashable, List, Optional, Tuple, TypeVar

from .two_tier import AccessResult, TIER1, TIER2, TwoTierTable

K = TypeVar("K", bound=Hashable)


@dataclass(frozen=True)
class AdaptivePolicy:
    """Knobs of the adaptive resizer."""

    adjust_interval: int = 256   # lookups between adjustments
    step_fraction: float = 0.05  # share of total capacity moved per step
    min_tier_fraction: float = 0.2  # floor for each tier's share

    def __post_init__(self) -> None:
        if self.adjust_interval < 1:
            raise ValueError("adjust_interval must be >= 1")
        if not 0.0 < self.step_fraction < 0.5:
            raise ValueError("step_fraction must be in (0, 0.5)")
        if not 0.0 < self.min_tier_fraction <= 0.5:
            raise ValueError("min_tier_fraction must be in (0, 0.5]")


class AdaptiveTwoTierTable(TwoTierTable[K], Generic[K]):
    """A two-tier table that shifts capacity between tiers at runtime."""

    def __init__(
        self,
        t1_capacity: int,
        t2_capacity: Optional[int] = None,
        promote_threshold: int = 2,
        policy: Optional[AdaptivePolicy] = None,
    ) -> None:
        super().__init__(t1_capacity, t2_capacity, promote_threshold)
        self.policy = policy or AdaptivePolicy()
        self._total_capacity = self._t1.capacity + self._t2.capacity
        minimum = max(1, round(self._total_capacity
                               * self.policy.min_tier_fraction))
        self._min_tier = min(minimum, self._total_capacity - 1)
        self._window_t1_hits = 0
        self._window_t2_hits = 0
        self._window_lookups = 0
        self.adjustments = 0

    # -- adaptation ---------------------------------------------------------

    def _step_size(self) -> int:
        return max(1, round(self._total_capacity * self.policy.step_fraction))

    def _shift(self, towards_t1: bool) -> List[Tuple[K, int]]:
        """Move one step of capacity; returns entries evicted by shrinking."""
        step = self._step_size()
        if towards_t1:
            new_t2 = max(self._min_tier, self._t2.capacity - step)
            step = self._t2.capacity - new_t2
            if step == 0:
                return []
            evicted = self._t2.resize(new_t2)
            self._t1.resize(self._t1.capacity + step)
        else:
            new_t1 = max(self._min_tier, self._t1.capacity - step)
            step = self._t1.capacity - new_t1
            if step == 0:
                return []
            evicted = self._t1.resize(new_t1)
            self._t2.resize(self._t2.capacity + step)
        self.adjustments += 1
        return evicted

    def _maybe_adjust(self) -> List[Tuple[K, int]]:
        if self._window_lookups < self.policy.adjust_interval:
            return []
        t1_density = self._window_t1_hits / max(1, self._t1.capacity)
        t2_density = self._window_t2_hits / max(1, self._t2.capacity)
        self._window_t1_hits = 0
        self._window_t2_hits = 0
        self._window_lookups = 0
        if t1_density == t2_density:
            return []
        return self._shift(towards_t1=t1_density > t2_density)

    # -- overridden access -----------------------------------------------------

    def access(self, key: K) -> AccessResult[K]:
        result = super().access(key)
        self._window_lookups += 1
        if result.hit:
            if result.tier == TIER2 and not result.promoted:
                self._window_t2_hits += 1
            elif result.tier == TIER1 or result.promoted:
                self._window_t1_hits += 1
        evicted = self._maybe_adjust()
        for key_evicted, tally, in evicted:
            result.evicted.append(
                (key_evicted, tally, TIER1)  # shrink evictions act like T1
            )
        return result

    @property
    def tier_split(self) -> Tuple[int, int]:
        """Current (T1, T2) capacities."""
        return self._t1.capacity, self._t2.capacity
