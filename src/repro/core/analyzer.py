"""The online analysis module (paper Section III-D).

A single pass over the transaction stream maintains the synopsis: every
extent of a transaction is recorded in the item table, every unique extent
pair in the correlation table, and item-table evictions demote the pairs
that involve the evicted extent.  The per-transaction cost is Θ(N²) for N
extents, which the monitoring module bounds by capping transactions at a
configurable size (8 in the paper's evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .config import AnalyzerConfig
from .correlation_table import CorrelationTable
from .extent import Extent, ExtentPair, unique_pairs
from .item_table import ItemTable
from .two_tier import TableStats


@dataclass
class AnalyzerReport:
    """Aggregate counters over an analyzer's lifetime."""

    transactions: int = 0
    extents_seen: int = 0
    pairs_seen: int = 0
    item_stats: TableStats = field(default_factory=TableStats)
    correlation_stats: TableStats = field(default_factory=TableStats)


class OnlineAnalyzer:
    """Single-pass data access characterization over extent transactions.

    The analyzer is deliberately decoupled from the monitoring module: it
    accepts any sequence of :class:`Extent` objects as one transaction, so
    it can be driven by the live monitor, by recorded transactions, or by
    synthetic streams in tests.
    """

    def __init__(self, config: Optional[AnalyzerConfig] = None) -> None:
        self.config = config or AnalyzerConfig()
        item_t1, item_t2 = self.config.split(self.config.item_capacity)
        corr_t1, corr_t2 = self.config.split(self.config.correlation_capacity)
        self.items = ItemTable(item_t1, item_t2, self.config.promote_threshold)
        self.correlations = CorrelationTable(
            corr_t1, corr_t2, self.config.promote_threshold
        )
        self._transactions = 0
        self._extents_seen = 0
        self._pairs_seen = 0

    # -- stream processing ------------------------------------------------------

    def process(self, extents: Sequence[Extent]) -> None:
        """Process one transaction's extents.

        Duplicates are collapsed (the monitor already deduplicates, but the
        analyzer tolerates raw input), each distinct extent is recorded in
        the item table, and every unique pair is recorded in the correlation
        table.  Item-table evictions trigger correlation-table demotions.
        """
        distinct = sorted(set(extents))
        self._transactions += 1
        self._extents_seen += len(distinct)

        for extent in distinct:
            result = self.items.access(extent)
            if self.config.demote_on_item_eviction:
                for evicted in self.items.evicted_from(result):
                    self.correlations.demote_involving(evicted)

        for pair in unique_pairs(distinct):
            self.correlations.access(pair)
            self._pairs_seen += 1

    def process_stream(self, transactions: Iterable[Sequence[Extent]]) -> None:
        """Process a whole stream of transactions."""
        for extents in transactions:
            self.process(extents)

    # -- results ------------------------------------------------------------------

    def frequent_pairs(self, min_support: int = 2) -> List[Tuple[ExtentPair, int]]:
        """Detected correlations with tally >= ``min_support``, strongest first."""
        return self.correlations.frequent(min_support)

    def frequent_extents(self, min_support: int = 2) -> List[Tuple[Extent, int]]:
        """Frequent individual extents, strongest first."""
        return self.items.frequent(min_support)

    def pair_frequencies(self) -> Dict[ExtentPair, int]:
        """Every resident pair and its tally."""
        return self.correlations.frequencies()

    def report(self) -> AnalyzerReport:
        return AnalyzerReport(
            transactions=self._transactions,
            extents_seen=self._extents_seen,
            pairs_seen=self._pairs_seen,
            item_stats=self.items.stats,
            correlation_stats=self.correlations.stats,
        )

    def adopt(self, other: "OnlineAnalyzer") -> None:
        """Take over another analyzer's learned state (tables and config).

        The public restore hook: after :func:`~repro.core.serialize.\
load_analyzer` rebuilds a plain analyzer from a checkpoint, a richer
        analyzer (e.g. :class:`~repro.core.typed.TypedOnlineAnalyzer`)
        adopts its synopsis wholesale instead of callers poking table
        internals.  ``other`` donates its tables; it must not be used
        afterwards.
        """
        self.config = other.config
        self.items = other.items
        self.correlations = other.correlations
        self._transactions = other._transactions
        self._extents_seen = other._extents_seen
        self._pairs_seen = other._pairs_seen

    def reset(self) -> None:
        """Forget everything (tables and counters)."""
        self.items.clear()
        self.correlations.clear()
        self._transactions = 0
        self._extents_seen = 0
        self._pairs_seen = 0
