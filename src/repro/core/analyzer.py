"""The online analysis module (paper Section III-D).

A single pass over the transaction stream maintains the synopsis: every
extent of a transaction is recorded in the item table, every unique extent
pair in the correlation table, and item-table evictions demote the pairs
that involve the evicted extent.  The per-transaction cost is Θ(N²) for N
extents, which the monitoring module bounds by capping transactions at a
configurable size (8 in the paper's evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..telemetry.metrics import MetricsRegistry, get_default_registry
from .config import AnalyzerConfig
from .correlation_table import CorrelationTable
from .extent import Extent, ExtentInterner, ExtentPair, unique_pairs
from .item_table import ItemTable
from .two_tier import TableStats


@dataclass
class AnalyzerReport:
    """Aggregate counters over an analyzer's lifetime."""

    transactions: int = 0
    extents_seen: int = 0
    pairs_seen: int = 0
    item_stats: TableStats = field(default_factory=TableStats)
    correlation_stats: TableStats = field(default_factory=TableStats)


class OnlineAnalyzer:
    """Single-pass data access characterization over extent transactions.

    The analyzer is deliberately decoupled from the monitoring module: it
    accepts any sequence of :class:`Extent` objects as one transaction, so
    it can be driven by the live monitor, by recorded transactions, or by
    synthetic streams in tests.
    """

    def __init__(
        self,
        config: Optional[AnalyzerConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        metric_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """``registry`` selects the telemetry registry (``None``: the
        process-local default).  ``metric_labels`` adds constant labels
        to every published sample -- the sharded engine passes
        ``{"shard": "<i>"}`` so per-shard series stay distinguishable.
        """
        self.config = config or AnalyzerConfig()
        item_t1, item_t2 = self.config.split(self.config.item_capacity)
        corr_t1, corr_t2 = self.config.split(self.config.correlation_capacity)
        self.items = ItemTable(item_t1, item_t2, self.config.promote_threshold)
        self.correlations = CorrelationTable(
            corr_t1, corr_t2, self.config.promote_threshold
        )
        self._transactions = 0
        self._extents_seen = 0
        self._pairs_seen = 0
        self._interner = ExtentInterner()
        self._bind_metrics(registry, metric_labels)

    # -- telemetry ----------------------------------------------------------

    #: Counter families derived 1:1 from TableStats fields.
    _TABLE_STAT_HELP = {
        "lookups": "Synopsis table lookups",
        "t1_hits": "Lookups that hit tier T1",
        "t2_hits": "Lookups that hit tier T2",
        "misses": "Lookups that missed both tiers",
        "promotions": "Entries promoted T1 -> T2",
        "t1_evictions": "Entries evicted from T1",
        "t2_evictions": "Entries evicted from T2",
        "demotions": "Entries demoted to their tier's LRU end",
    }

    def _bind_metrics(
        self,
        registry: Optional[MetricsRegistry],
        metric_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        registry = registry if registry is not None else \
            get_default_registry()
        self.registry = registry
        if not registry.enabled:
            return
        shard = str((metric_labels or {}).get("shard", ""))
        table_labels = ("table", "shard")
        self._stat_children = {}
        for name, help in self._TABLE_STAT_HELP.items():
            family = registry.counter(
                f"repro_synopsis_{name}_total", help, labelnames=table_labels
            )
            for table in ("items", "correlations"):
                self._stat_children[(table, name)] = family.labels(
                    table=table, shard=shard
                )
        occupancy = registry.gauge(
            "repro_synopsis_occupancy",
            "Resident entries per synopsis tier",
            labelnames=("table", "tier", "shard"),
        )
        capacity = registry.gauge(
            "repro_synopsis_capacity",
            "Configured entries per synopsis tier",
            labelnames=("table", "tier", "shard"),
        )
        self._tier_gauges = {}
        for table in ("items", "correlations"):
            for tier in ("t1", "t2"):
                self._tier_gauges[(table, tier)] = (
                    occupancy.labels(table=table, tier=tier, shard=shard),
                    capacity.labels(table=table, tier=tier, shard=shard),
                )
        counters = {
            "transactions": "Transactions characterized",
            "extents": "Distinct extents recorded (post-dedup)",
            "pairs": "Extent pairs recorded",
        }
        self._flow_counters = {
            name: registry.counter(
                f"repro_analyzer_{name}_total", help, labelnames=("shard",)
            ).labels(shard=shard)
            for name, help in counters.items()
        }
        registry.register_collector(self._collect_metrics)

    def rebind_metrics(
        self,
        registry: MetricsRegistry,
        metric_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Re-home this analyzer's telemetry on ``registry``.

        A checkpoint restore constructs the loaded analyzer against the
        process default registry; the adopting service calls this so the
        restored tables publish into *its* registry.  No-op when already
        bound there.
        """
        if registry is self.registry:
            return
        self._bind_metrics(registry, metric_labels)

    def _collect_metrics(self) -> None:
        """Publish table and flow counters into the registry (pull seam)."""
        for table_name in ("items", "correlations"):
            table = getattr(self, table_name)
            for name, value in table.stats.as_dict().items():
                self._stat_children[(table_name, name)].set_total(value)
            for tier_name in ("t1", "t2"):
                tier = getattr(table, tier_name)
                occupancy, capacity = self._tier_gauges[
                    (table_name, tier_name)
                ]
                occupancy.set(len(tier))
                capacity.set(tier.capacity)
        self._flow_counters["transactions"].set_total(self._transactions)
        self._flow_counters["extents"].set_total(self._extents_seen)
        self._flow_counters["pairs"].set_total(self._pairs_seen)

    # -- stream processing ------------------------------------------------------

    def process(self, extents: Sequence[Extent]) -> None:
        """Process one transaction's extents.

        Duplicates are collapsed (the monitor already deduplicates, but the
        analyzer tolerates raw input), each distinct extent is recorded in
        the item table, and every unique pair is recorded in the correlation
        table.  Item-table evictions trigger correlation-table demotions.
        """
        distinct = sorted(set(extents))
        self._transactions += 1
        self._extents_seen += len(distinct)

        for extent in distinct:
            result = self.items.access(extent)
            if self.config.demote_on_item_eviction:
                for evicted in self.items.evicted_from(result):
                    self.correlations.demote_involving(evicted)

        for pair in unique_pairs(distinct):
            self.correlations.access(pair)
            self._pairs_seen += 1

    def process_stream(self, transactions: Iterable[Sequence[Extent]]) -> None:
        """Process a whole stream of transactions."""
        for extents in transactions:
            self.process(extents)

    def process_transaction_batch(self, batch, *,
                                  parallel: bool = False) -> int:
        """Process a columnar :class:`~repro.monitor.batch.TransactionBatch`.

        The batch's distinct view is already deduplicated and sorted per
        transaction -- exactly the iteration order of :meth:`process` -- so
        this loop performs the same table accesses in the same order and
        leaves the synopsis byte-identical to feeding the materialized
        transactions one at a time.  The speed comes from skipping object
        materialization: extents are interned straight from the integer
        columns, and the allocation-light ``access_fast`` table operation
        replaces :class:`~repro.core.two_tier.AccessResult` construction.
        ``parallel`` is accepted for engine-protocol compatibility and
        ignored.
        """
        starts = batch.starts.tolist()
        lengths = batch.lengths.tolist()
        offsets = batch.offsets.tolist()
        intern_extent = self._interner.extent
        intern_pair = self._interner.pair
        items_access = self.items.access_fast
        corr_access = self.correlations.access_fast
        demote = self.config.demote_on_item_eviction
        demote_involving = self.correlations.demote_involving
        count = len(offsets) - 1
        extents_seen = 0
        pairs_seen = 0
        for t in range(count):
            lo = offsets[t]
            hi = offsets[t + 1]
            extents = [intern_extent(starts[k], lengths[k])
                       for k in range(lo, hi)]
            n = hi - lo
            extents_seen += n
            for extent in extents:
                evicted = items_access(extent)
                if demote and evicted is not None:
                    demote_involving(evicted)
            if n > 1:
                pairs_seen += n * (n - 1) // 2
                for i in range(n - 1):
                    a = extents[i]
                    for j in range(i + 1, n):
                        corr_access(intern_pair(a, extents[j]))
        self._transactions += count
        self._extents_seen += extents_seen
        self._pairs_seen += pairs_seen
        return count

    # -- results ------------------------------------------------------------------

    def frequent_pairs(self, min_support: int = 2) -> List[Tuple[ExtentPair, int]]:
        """Detected correlations with tally >= ``min_support``, strongest first."""
        return self.correlations.frequent(min_support)

    def frequent_extents(self, min_support: int = 2) -> List[Tuple[Extent, int]]:
        """Frequent individual extents, strongest first."""
        return self.items.frequent(min_support)

    def pair_frequencies(self) -> Dict[ExtentPair, int]:
        """Every resident pair and its tally."""
        return self.correlations.frequencies()

    def correlated_with(self, extent: Extent, k: int = 16
                        ) -> List[Tuple[Extent, int]]:
        """Partners most correlated with ``extent``, strongest first.

        This is the query-path a correlation-driven prefetcher issues on
        every cache miss (paper Section I / Section V), so it rides the
        correlation table's per-extent index rather than scanning every
        resident pair.
        """
        tally_of = self.correlations.tally
        ranked = sorted(
            ((pair.other(extent), tally_of(pair) or 0)
             for pair in self.correlations.pairs_involving(extent)),
            key=lambda entry: (-entry[1], entry[0]),
        )
        return ranked[:k]

    def report(self) -> AnalyzerReport:
        return AnalyzerReport(
            transactions=self._transactions,
            extents_seen=self._extents_seen,
            pairs_seen=self._pairs_seen,
            item_stats=self.items.stats,
            correlation_stats=self.correlations.stats,
        )

    def adopt(self, other: "OnlineAnalyzer") -> None:
        """Take over another analyzer's learned state (tables and config).

        The public restore hook: after :func:`~repro.core.serialize.\
load_analyzer` rebuilds a plain analyzer from a checkpoint, a richer
        analyzer (e.g. :class:`~repro.core.typed.TypedOnlineAnalyzer`)
        adopts its synopsis wholesale instead of callers poking table
        internals.  ``other`` donates its tables; it must not be used
        afterwards.
        """
        self.config = other.config
        self.items = other.items
        self.correlations = other.correlations
        self._transactions = other._transactions
        self._extents_seen = other._extents_seen
        self._pairs_seen = other._pairs_seen

    def reset(self) -> None:
        """Forget everything (tables and counters)."""
        self.items.clear()
        self.correlations.clear()
        self._transactions = 0
        self._extents_seen = 0
        self._pairs_seen = 0
