"""Classic Adaptive Replacement Cache (Megiddo & Modha, FAST '03).

The paper's synopsis is "inspired by ARC" but deliberately diverges:
fixed tier sizes instead of ghost-cache-driven adaptation, and demotion
instead of ghost lists.  To make that design choice testable, this module
implements the original ARC algorithm as a key-tracking structure (we track
metadata presence, not data), so benchmarks can compare capture quality of
the paper's two-tier table against real ARC under the same entry budget.

ARC maintains four lists over a cache of capacity ``c``:

* **T1** -- resident, seen exactly once recently;
* **T2** -- resident, seen at least twice recently;
* **B1** -- ghost history of keys evicted from T1;
* **B2** -- ghost history of keys evicted from T2;

with an adaptive target ``p`` for T1's share.  A hit in B1 (we evicted
something we should have kept for recency) grows ``p``; a hit in B2 grows
frequency's share.  |T1|+|T2| <= c and |T1|+|B1|+|T2|+|B2| <= 2c.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from .lru import LruQueue

K = TypeVar("K", bound=Hashable)


@dataclass
class ArcStats:
    """Hit/miss and adaptation counters."""

    lookups: int = 0
    hits: int = 0
    b1_hits: int = 0
    b2_hits: int = 0

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class _GhostList:
    """An LRU list of keys only (no tallies)."""

    def __init__(self) -> None:
        from collections import OrderedDict
        self._keys: "OrderedDict[Hashable, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key) -> bool:
        return key in self._keys

    def push_mru(self, key) -> None:
        self._keys[key] = None
        self._keys.move_to_end(key)

    def remove(self, key) -> None:
        self._keys.pop(key, None)

    def pop_lru(self):
        if not self._keys:
            return None
        key, _none = self._keys.popitem(last=False)
        return key


class ArcTable(Generic[K]):
    """The ARC algorithm tracking key tallies (a synopsis, not a cache).

    ``access(key)`` follows the four ARC cases and returns whether the key
    was resident.  Tallies (sighting counts) ride along with resident
    entries so the structure can answer the same ``frequent``-style queries
    as the paper's table.
    """

    def __init__(self, capacity: int,
                 evict_listener: Optional[Callable[[K], None]] = None
                 ) -> None:
        """``evict_listener``, when given, is called with each key the
        moment it stops being resident (leaves T1/T2 for a ghost list or
        is dropped outright) -- the hook the cache subsystem uses to run
        ARC as a replacement policy (:class:`repro.cache.policy.ArcPolicy`)
        while keeping per-key metadata in sync."""
        if capacity < 2:
            raise ValueError(f"ARC needs capacity >= 2, got {capacity}")
        self.capacity = capacity
        self._p = 0  # target size of T1
        self._t1: LruQueue[K] = LruQueue(capacity)
        self._t2: LruQueue[K] = LruQueue(capacity)
        self._b1 = _GhostList()
        self._b2 = _GhostList()
        self._evict_listener = evict_listener
        self.stats = ArcStats()

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def __contains__(self, key: K) -> bool:
        return key in self._t1 or key in self._t2

    @property
    def p(self) -> int:
        """Adaptive target for T1's share of the cache."""
        return self._p

    def tally(self, key: K) -> Optional[int]:
        value = self._t2.tally(key)
        if value is None:
            value = self._t1.tally(key)
        return value

    def resident_items(self) -> List[Tuple[K, int]]:
        out = list(self._t1.items())
        out.extend(self._t2.items())
        return out

    def frequent(self, min_tally: int = 1) -> List[Tuple[K, int]]:
        selected = [
            (key, tally) for key, tally in self.resident_items()
            if tally >= min_tally
        ]
        selected.sort(key=lambda entry: (-entry[1], repr(entry[0])))
        return selected

    def ghost_sizes(self) -> Tuple[int, int]:
        return len(self._b1), len(self._b2)

    # -- the ARC REPLACE subroutine ------------------------------------------------

    def _evicted(self, key: K) -> None:
        if self._evict_listener is not None:
            self._evict_listener(key)

    def _replace(self, key_in_b2: bool) -> None:
        """Evict from T1 or T2 per the ARC policy, into the ghosts."""
        t1_size = len(self._t1)
        if t1_size > 0 and (
            t1_size > self._p or (key_in_b2 and t1_size == self._p)
        ):
            evicted = self._t1.pop_lru()
            if evicted is not None:
                self._b1.push_mru(evicted[0])
                self._evicted(evicted[0])
        else:
            evicted = self._t2.pop_lru()
            if evicted is not None:
                self._b2.push_mru(evicted[0])
                self._evicted(evicted[0])

    # -- the four ARC cases ---------------------------------------------------------

    def access(self, key: K) -> bool:
        """Record one sighting; returns True when the key was resident."""
        self.stats.lookups += 1

        # Case I: hit in T1 or T2 -> move to T2 MRU.
        if key in self._t1:
            tally = self._t1.pop(key) or 0
            displaced = self._t2.insert(key, tally + 1)
            if displaced is not None:
                self._b2.push_mru(displaced[0])
                self._evicted(displaced[0])
            self.stats.hits += 1
            return True
        if key in self._t2:
            self._t2.touch(key)
            self.stats.hits += 1
            return True

        # Case II: ghost hit in B1 -> grow p (recency was undervalued).
        if key in self._b1:
            self.stats.b1_hits += 1
            delta = max(1, len(self._b2) // max(1, len(self._b1)))
            self._p = min(self.capacity, self._p + delta)
            self._replace(key_in_b2=False)
            self._b1.remove(key)
            displaced = self._t2.insert(key, 1)
            if displaced is not None:
                self._b2.push_mru(displaced[0])
                self._evicted(displaced[0])
            return False

        # Case III: ghost hit in B2 -> shrink p (frequency undervalued).
        if key in self._b2:
            self.stats.b2_hits += 1
            delta = max(1, len(self._b1) // max(1, len(self._b2)))
            self._p = max(0, self._p - delta)
            self._replace(key_in_b2=True)
            self._b2.remove(key)
            displaced = self._t2.insert(key, 1)
            if displaced is not None:
                self._b2.push_mru(displaced[0])
                self._evicted(displaced[0])
            return False

        # Case IV: complete miss.
        t1_total = len(self._t1) + len(self._b1)
        if t1_total == self.capacity:
            if len(self._t1) < self.capacity:
                self._b1.pop_lru()
                self._replace(key_in_b2=False)
            else:
                evicted = self._t1.pop_lru()
                if evicted is not None:
                    # dropped entirely (B1 is full of T1 itself)
                    self._evicted(evicted[0])
        else:
            total = (len(self._t1) + len(self._b1)
                     + len(self._t2) + len(self._b2))
            if total >= self.capacity:
                if total == 2 * self.capacity:
                    self._b2.pop_lru()
                if len(self._t1) + len(self._t2) >= self.capacity:
                    self._replace(key_in_b2=False)
        displaced = self._t1.insert(key, 1)
        if displaced is not None:  # defensive: REPLACE should have made room
            self._b1.push_mru(displaced[0])
            self._evicted(displaced[0])
        return False

    def check_invariants(self) -> bool:
        """ARC's size bounds (for tests)."""
        resident = len(self._t1) + len(self._t2)
        total = resident + len(self._b1) + len(self._b2)
        disjoint = not (
            set(key for key, _t in self._t1.items())
            & set(key for key, _t in self._t2.items())
        )
        return (
            resident <= self.capacity
            and total <= 2 * self.capacity
            and 0 <= self._p <= self.capacity
            and disjoint
        )
