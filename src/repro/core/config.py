"""Configuration for the online analysis module."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AnalyzerConfig:
    """Parameters of the synopsis data structure (paper Sections III-D, IV-C).

    ``item_capacity`` and ``correlation_capacity`` are the per-tier entry
    counts ``C``: each table has T1 and T2 of that size, so a correlation
    capacity of 16 K matches the paper's "16 K entries" configuration.
    ``promote_threshold`` is the tally at which a T1 entry is promoted; the
    paper promotes on the first T1 hit (threshold 2).  ``t2_ratio`` controls
    the T1:T2 split for the ablation study -- 0.5 reproduces the paper's
    equal split.
    """

    item_capacity: int = 16 * 1024
    correlation_capacity: int = 16 * 1024
    promote_threshold: int = 2
    t2_ratio: float = 0.5
    demote_on_item_eviction: bool = True

    def __post_init__(self) -> None:
        if self.item_capacity < 1:
            raise ValueError("item_capacity must be >= 1")
        if self.correlation_capacity < 1:
            raise ValueError("correlation_capacity must be >= 1")
        if not 0.0 < self.t2_ratio < 1.0:
            raise ValueError("t2_ratio must be in (0, 1)")

    def split(self, capacity: int) -> tuple:
        """Split a per-table total of ``2 * capacity`` entries into tiers.

        With the default ``t2_ratio`` of 0.5 this returns equal tiers of
        ``capacity`` entries each.  Both tiers are kept at a minimum size of
        one entry, honouring the paper's observation that dynamic resizing
        must respect minimum fixed tier sizes (Section IV-C1).
        """
        total = 2 * capacity
        t2 = max(1, min(total - 1, round(total * self.t2_ratio)))
        t1 = total - t2
        return t1, t2
