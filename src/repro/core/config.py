"""Configuration for the online analysis module."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Names of the selectable synopsis backends (see
#: :mod:`repro.engine.backends`).  ``two-tier`` is the paper's LRU table
#: pair; ``chh`` and ``cms`` are the sublinear sketch alternatives.
BACKEND_NAMES: Tuple[str, ...] = ("two-tier", "chh", "cms")


@dataclass(frozen=True)
class AnalyzerConfig:
    """Parameters of the synopsis data structure (paper Sections III-D, IV-C).

    ``item_capacity`` and ``correlation_capacity`` are the per-tier entry
    counts ``C``: each table has T1 and T2 of that size, so a correlation
    capacity of 16 K matches the paper's "16 K entries" configuration.
    ``promote_threshold`` is the tally at which a T1 entry is promoted; the
    paper promotes on the first T1 hit (threshold 2).  ``t2_ratio`` controls
    the T1:T2 split for the ablation study -- 0.5 reproduces the paper's
    equal split.

    ``backend`` selects the synopsis representation (see
    :mod:`repro.engine.backends`): ``two-tier`` (default) keeps the
    paper's tables and every existing engine untouched; ``chh`` swaps in
    the nested Misra-Gries Correlated-Heavy-Hitters summary and ``cms``
    the count-min pair sketch with a heavy-pair candidate heap.  The
    sketch dimension fields default to 0 = *derive from
    correlation_capacity* (see :meth:`chh_dimensions` /
    :meth:`cms_dimensions`); the derived sizes land well under 25% of the
    two-tier synopsis' memory model (:mod:`repro.core.memory_model`).
    """

    item_capacity: int = 16 * 1024
    correlation_capacity: int = 16 * 1024
    promote_threshold: int = 2
    t2_ratio: float = 0.5
    demote_on_item_eviction: bool = True
    backend: str = "two-tier"
    #: CHH outer summary size (tracked items); 0 = correlation_capacity / 8.
    chh_items: int = 0
    #: CHH inner summary size (partners per tracked item); 0 = 6.
    chh_partners: int = 0
    #: Count-min row width; 0 = correlation_capacity / 2.
    cms_width: int = 0
    #: Count-min depth (hash rows); 0 = 4.
    cms_depth: int = 0
    #: Heavy-pair candidate heap size; 0 = correlation_capacity / 8.
    cms_candidates: int = 0

    def __post_init__(self) -> None:
        if self.item_capacity < 1:
            raise ValueError("item_capacity must be >= 1")
        if self.correlation_capacity < 1:
            raise ValueError("correlation_capacity must be >= 1")
        if not 0.0 < self.t2_ratio < 1.0:
            raise ValueError("t2_ratio must be in (0, 1)")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {BACKEND_NAMES}, "
                f"got {self.backend!r}"
            )
        for name in ("chh_items", "chh_partners", "cms_width",
                     "cms_depth", "cms_candidates"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0 (0 = auto)")

    def split(self, capacity: int) -> tuple:
        """Split a per-table total of ``2 * capacity`` entries into tiers.

        With the default ``t2_ratio`` of 0.5 this returns equal tiers of
        ``capacity`` entries each.  Both tiers are kept at a minimum size of
        one entry, honouring the paper's observation that dynamic resizing
        must respect minimum fixed tier sizes (Section IV-C1).
        """
        total = 2 * capacity
        t2 = max(1, min(total - 1, round(total * self.t2_ratio)))
        t1 = total - t2
        return t1, t2

    def chh_dimensions(self) -> Tuple[int, int]:
        """``(outer items, partners per item)`` for the CHH backend.

        The auto sizing tracks ``C / 8`` items with 6 partners each, which
        the memory model prices at ~23% of the two-tier synopsis.
        """
        items = self.chh_items or max(1, self.correlation_capacity // 8)
        partners = self.chh_partners or 6
        return items, partners

    def cms_dimensions(self) -> Tuple[int, int, int]:
        """``(width, depth, candidates)`` for the count-min pair backend.

        The auto sizing uses a ``2C x 2`` counter array with ``C / 16``
        heavy-pair candidates, ~22% of the two-tier synopsis.  At a fixed
        counter budget a wide-and-shallow array beats a narrow-and-deep
        one on skewed pair streams: the per-row collision mass -- not the
        number of independent rows -- dominates the estimate error once
        conservative update is in play (the backend's Pareto benchmark
        measures the gap at ~0.1 of top-100 recall).
        """
        width = self.cms_width or max(8, self.correlation_capacity * 2)
        depth = self.cms_depth or 2
        candidates = self.cms_candidates or max(
            8, self.correlation_capacity // 16)
        return width, depth, candidates
