"""The correlation table: a two-tier synopsis of extent pairs.

Beyond the plain two-tier behaviour, the correlation table maintains an
inverted index from each extent to the set of resident pairs that involve
it.  The index serves the coupling rule of Section III-D2: when an extent is
evicted from the *item* table, every pair involving it is *demoted* in the
correlation table (moved to the LRU end of its tier), making those pairs
next in line for eviction without discarding their tallies outright.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .extent import Extent, ExtentPair
from .two_tier import AccessResult, TableStats, TwoTierTable


class CorrelationTable:
    """Two-tier table of extent pairs with an extent -> pairs index."""

    def __init__(
        self,
        t1_capacity: int,
        t2_capacity: Optional[int] = None,
        promote_threshold: int = 2,
    ) -> None:
        self._table: TwoTierTable[ExtentPair] = TwoTierTable(
            t1_capacity, t2_capacity, promote_threshold
        )
        self._by_extent: Dict[Extent, Set[ExtentPair]] = {}

    @property
    def stats(self) -> TableStats:
        return self._table.stats

    @property
    def capacity(self) -> int:
        return self._table.capacity

    @property
    def t1(self):
        """The probationary tier's LRU queue (telemetry / inspection)."""
        return self._table.t1

    @property
    def t2(self):
        """The protected tier's LRU queue (telemetry / inspection)."""
        return self._table.t2

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, pair: ExtentPair) -> bool:
        return pair in self._table

    def tally(self, pair: ExtentPair) -> Optional[int]:
        return self._table.tally(pair)

    def tier_of(self, pair: ExtentPair) -> Optional[int]:
        return self._table.tier_of(pair)

    # -- index maintenance ---------------------------------------------------

    def _index(self, pair: ExtentPair) -> None:
        self._by_extent.setdefault(pair.first, set()).add(pair)
        self._by_extent.setdefault(pair.second, set()).add(pair)

    def _unindex(self, pair: ExtentPair) -> None:
        for extent in (pair.first, pair.second):
            members = self._by_extent.get(extent)
            if members is None:
                continue
            members.discard(pair)
            if not members:
                del self._by_extent[extent]

    # -- operations ------------------------------------------------------------

    def access(self, pair: ExtentPair) -> AccessResult[ExtentPair]:
        """Record one co-occurrence of the pair's two extents."""
        result = self._table.access(pair)
        if not result.hit:
            self._index(pair)
        for evicted_pair, _tally, _tier in result.evicted:
            self._unindex(evicted_pair)
        return result

    def access_fast(self, pair: ExtentPair) -> Optional[ExtentPair]:
        """Allocation-light :meth:`access`: returns the evicted pair or None.

        State, stats, and inverted-index transitions are identical to
        :meth:`access`; only the :class:`AccessResult` is elided (see
        :meth:`TwoTierTable.access_fast`).
        """
        hit, evicted = self._table.access_fast(pair)
        if not hit:
            self._index(pair)
        if evicted is not None:
            self._unindex(evicted)
        return evicted

    def pairs_involving(self, extent: Extent) -> List[ExtentPair]:
        """Resident pairs that have ``extent`` as a member."""
        return sorted(self._by_extent.get(extent, ()))

    def demote_involving(self, extent: Extent) -> int:
        """Demote every resident pair involving ``extent``.

        Called when ``extent`` is evicted from the item table.  Returns the
        number of pairs demoted.
        """
        demoted = 0
        for pair in self.pairs_involving(extent):
            if self._table.demote(pair):
                demoted += 1
        return demoted

    def remove(self, pair: ExtentPair) -> Optional[int]:
        tally = self._table.remove(pair)
        if tally is not None:
            self._unindex(pair)
        return tally

    def items(self) -> List[Tuple[ExtentPair, int, int]]:
        """Every ``(pair, tally, tier)`` currently held."""
        return self._table.items()

    def frequent(self, min_tally: int = 1) -> List[Tuple[ExtentPair, int]]:
        """Pairs with tally >= ``min_tally``, most frequent first.

        This is the synopsis output the paper compares against offline FIM:
        the resident pairs filtered by a minimum support (e.g. support 5 in
        Fig. 8, support 10 in Fig. 7).
        """
        selected = [
            (pair, tally)
            for pair, tally, _tier in self._table.items()
            if tally >= min_tally
        ]
        selected.sort(key=lambda entry: (-entry[1], entry[0]))
        return selected

    def frequencies(self) -> Dict[ExtentPair, int]:
        """Mapping of every resident pair to its tally."""
        return {pair: tally for pair, tally, _tier in self._table.items()}

    def check_index(self) -> bool:
        """Verify the inverted index exactly mirrors residency (for tests)."""
        resident: Set[ExtentPair] = {pair for pair, _t, _tier in self._table.items()}
        indexed: Set[ExtentPair] = set()
        for members in self._by_extent.values():
            indexed.update(members)
        return resident == indexed

    def clear(self) -> None:
        self._table.clear()
        self._by_extent.clear()
