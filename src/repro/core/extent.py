"""Extents and extent pairs.

In the block layer, an I/O request is expressed as one or more *adjacent*
blocks given by a starting block number and a length -- what the paper calls
an *extent* (Section III-A).  The online analysis operates on whole extents
rather than individual blocks: pairing extents keeps the per-transaction cost
at ``C(N, 2)`` for ``N`` extents instead of the higher-order polynomial that
block-level pairing would incur, while sacrificing only the rare correlations
between extents requested in different "shapes".

This module defines the :class:`Extent` value type, the canonical
:class:`ExtentPair`, and the helpers used to expand extent-level objects back
into block-level pairs (needed when comparing online results against
block-granularity ground truth, as in Figures 7 and 8 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Set, Tuple


@dataclass(frozen=True, order=True)
class Extent:
    """A contiguous run of blocks: ``[start, start + length)``.

    ``start`` is a block number (the paper uses 64-bit block IDs) and
    ``length`` is the number of blocks (32-bit in the paper's memory model).
    Ordering is lexicographic on ``(start, length)``, which gives extent
    pairs a canonical orientation.
    """

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"extent start must be >= 0, got {self.start}")
        if self.length <= 0:
            raise ValueError(f"extent length must be > 0, got {self.length}")
        # Cache the hash: the synopsis tables hash each key several times
        # per access, and the tuple hash of a frozen dataclass is the single
        # largest cost in the table hot path.  The cached value is exactly
        # the dataclass-generated hash -- hash of the field tuple -- so
        # shard routing (hash % N) and dict behaviour are unchanged.
        object.__setattr__(self, "_h", hash((self.start, self.length)))

    @property
    def end(self) -> int:
        """One past the last block covered by this extent."""
        return self.start + self.length

    def blocks(self) -> Iterator[int]:
        """Iterate over the individual block numbers in this extent."""
        return iter(range(self.start, self.end))

    def contains_block(self, block: int) -> bool:
        """Return whether ``block`` falls inside this extent."""
        return self.start <= block < self.end

    def overlaps(self, other: "Extent") -> bool:
        """Return whether the two extents share at least one block."""
        return self.start < other.end and other.start < self.end

    def is_adjacent(self, other: "Extent") -> bool:
        """Return whether the two extents touch without overlapping."""
        return self.end == other.start or other.end == self.start

    def union_span(self, other: "Extent") -> "Extent":
        """Smallest extent covering both extents (they need not touch)."""
        start = min(self.start, other.start)
        end = max(self.end, other.end)
        return Extent(start, end - start)

    def intra_block_pairs(self) -> int:
        """Number of intra-request block correlations, ``C(length, 2)``.

        The paper (Section II-A) counts every unique pairing of blocks
        within one request as an intra-request block correlation.
        """
        return self.length * (self.length - 1) // 2

    def __str__(self) -> str:  # e.g. "100+4", matching the paper's notation
        return f"{self.start}+{self.length}"

    @classmethod
    def parse(cls, text: str) -> "Extent":
        """Parse the ``start+length`` notation used throughout the paper."""
        try:
            start_text, length_text = text.split("+")
            return cls(int(start_text), int(length_text))
        except (ValueError, TypeError) as exc:
            raise ValueError(f"not a valid extent: {text!r}") from exc


@dataclass(frozen=True, order=True)
class ExtentPair:
    """A canonical (unordered) pair of distinct extents.

    The constructor normalises orientation so that ``first <= second``;
    two pairs built from the same extents in either order compare equal and
    hash identically.  A pair of two *equal* extents is rejected: a
    deduplicated transaction never pairs an extent with itself.
    """

    first: Extent
    second: Extent

    def __init__(self, a: Extent, b: Extent) -> None:
        if a == b:
            raise ValueError(f"an extent cannot be paired with itself: {a}")
        if b < a:
            a, b = b, a
        object.__setattr__(self, "first", a)
        object.__setattr__(self, "second", b)
        object.__setattr__(self, "_h", hash((a, b)))

    def involves(self, extent: Extent) -> bool:
        """Return whether ``extent`` is one of the two members."""
        return extent == self.first or extent == self.second

    def other(self, extent: Extent) -> Extent:
        """Return the member that is not ``extent``.

        Raises ``ValueError`` when ``extent`` is not a member at all.
        """
        if extent == self.first:
            return self.second
        if extent == self.second:
            return self.first
        raise ValueError(f"{extent} is not a member of {self}")

    def inter_block_pairs(self) -> int:
        """Number of inter-request block correlations implied: ``n * m``."""
        return self.first.length * self.second.length

    def block_pairs(self) -> Iterator[Tuple[int, int]]:
        """Yield every implied block-level pair ``(a, b)``, a from first.

        This is the expansion the paper performs implicitly in Figures 7/8
        when plotting extent correlations at block granularity.
        """
        for a in self.first.blocks():
            for b in self.second.blocks():
                yield (a, b)

    def __str__(self) -> str:
        return f"({self.first}, {self.second})"


def _cached_hash(self) -> int:
    return self._h


# Replace the dataclass-generated __hash__ (which rebuilds and hashes the
# field tuple on every call) with a read of the value cached at construction.
# The cached value *is* the field-tuple hash, so hash-based shard routing and
# every dict/set keyed on these types behave identically.
Extent.__hash__ = _cached_hash  # type: ignore[assignment]
ExtentPair.__hash__ = _cached_hash  # type: ignore[assignment]


def pair_of_ordered(a: Extent, b: Extent) -> ExtentPair:
    """Build an :class:`ExtentPair` from already-canonical members.

    Requires ``a < b`` (distinct, ordered) -- the caller guarantees it, so
    the comparison/swap/validation in ``ExtentPair.__init__`` is skipped.
    The columnar engine hot loop builds pairs from a sorted distinct-extent
    list, where ordering is guaranteed by construction.
    """
    pair = object.__new__(ExtentPair)
    object.__setattr__(pair, "first", a)
    object.__setattr__(pair, "second", b)
    object.__setattr__(pair, "_h", hash((a, b)))
    return pair


class ExtentInterner:
    """Bounded value-identity cache for extents and pairs.

    The columnar lane decodes extents from integer arrays; interning makes
    repeated sightings of the same extent reuse one object (and therefore
    one cached hash) instead of allocating a fresh dataclass per sighting.
    When either cache exceeds ``max_entries`` it is simply cleared --
    amnesia costs a few reallocations, never correctness, because the
    tables key by value equality.
    """

    __slots__ = ("_extents", "_pairs", "_max_entries")

    def __init__(self, max_entries: int = 1 << 17) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self._extents: dict = {}
        self._pairs: dict = {}
        self._max_entries = max_entries

    def extent(self, start: int, length: int) -> Extent:
        """Shared :class:`Extent` for ``(start, length)``."""
        key = (start, length)
        cached = self._extents.get(key)
        if cached is not None:
            return cached
        if len(self._extents) >= self._max_entries:
            self._extents.clear()
        made = object.__new__(Extent)
        object.__setattr__(made, "start", start)
        object.__setattr__(made, "length", length)
        object.__setattr__(made, "_h", hash(key))
        self._extents[key] = made
        return made

    def pair(self, a: Extent, b: Extent) -> ExtentPair:
        """Shared :class:`ExtentPair` for ordered distinct extents ``a < b``."""
        key = (a.start, a.length, b.start, b.length)
        cached = self._pairs.get(key)
        if cached is not None:
            return cached
        if len(self._pairs) >= self._max_entries:
            self._pairs.clear()
        made = pair_of_ordered(a, b)
        self._pairs[key] = made
        return made

    def clear(self) -> None:
        self._extents.clear()
        self._pairs.clear()


def unique_pairs(extents: Iterable[Extent]) -> List[ExtentPair]:
    """Every unique pair of distinct extents in the iterable.

    Duplicated extents are collapsed first: the paper deduplicates a
    transaction before pairing (Section III-D2), so a repeated request never
    forms a self-pair nor double-counts a correlation.  For ``N`` distinct
    extents the result has ``C(N, 2)`` elements.
    """
    distinct = sorted(set(extents))
    pairs: List[ExtentPair] = []
    for i, a in enumerate(distinct):
        for b in distinct[i + 1:]:
            pairs.append(ExtentPair(a, b))
    return pairs


def block_correlations(extents: Iterable[Extent]) -> Set[Tuple[int, int]]:
    """Block-level correlation set implied by one transaction.

    Returns canonical ``(low, high)`` block pairs covering both the
    intra-request correlations of each extent and the inter-request
    correlations between different extents (paper Fig. 2).  Intended for
    small examples and ground-truth checks; it is quadratic in total blocks.
    """
    distinct = sorted(set(extents))
    pairs: Set[Tuple[int, int]] = set()
    for extent in distinct:
        run = list(extent.blocks())
        for i, a in enumerate(run):
            for b in run[i + 1:]:
                pairs.add((a, b))
    for i, first in enumerate(distinct):
        for second in distinct[i + 1:]:
            for a in first.blocks():
                for b in second.blocks():
                    if a == b:
                        continue
                    pairs.add((min(a, b), max(a, b)))
    return pairs
