"""The item table: a two-tier synopsis of individual extents."""

from __future__ import annotations

from typing import List, Optional, Tuple

from .extent import Extent
from .two_tier import AccessResult, TableStats, TwoTierTable


class ItemTable:
    """Two-tier table of individual extents (paper Fig. 4, left).

    Every extent of every transaction is recorded here.  The table's role in
    the synopsis is twofold: it tracks which *individual* extents are
    frequent, and its evictions drive demotions in the correlation table --
    "since frequent correlations must involve frequent extents, when an
    extent is evicted from the item table, we also demote it in the
    correlation table" (Section III-D2).
    """

    def __init__(
        self,
        t1_capacity: int,
        t2_capacity: Optional[int] = None,
        promote_threshold: int = 2,
    ) -> None:
        self._table: TwoTierTable[Extent] = TwoTierTable(
            t1_capacity, t2_capacity, promote_threshold
        )

    @property
    def stats(self) -> TableStats:
        return self._table.stats

    @property
    def capacity(self) -> int:
        return self._table.capacity

    @property
    def t1(self):
        """The probationary tier's LRU queue (telemetry / inspection)."""
        return self._table.t1

    @property
    def t2(self):
        """The protected tier's LRU queue (telemetry / inspection)."""
        return self._table.t2

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, extent: Extent) -> bool:
        return extent in self._table

    def tally(self, extent: Extent) -> Optional[int]:
        return self._table.tally(extent)

    def tier_of(self, extent: Extent) -> Optional[int]:
        return self._table.tier_of(extent)

    def access(self, extent: Extent) -> AccessResult[Extent]:
        """Record one sighting; see :meth:`TwoTierTable.access`."""
        return self._table.access(extent)

    def access_fast(self, extent: Extent) -> Optional[Extent]:
        """Allocation-light :meth:`access`: returns the evicted extent or
        ``None`` (see :meth:`TwoTierTable.access_fast`)."""
        return self._table.access_fast(extent)[1]

    def evicted_from(self, result: AccessResult[Extent]) -> List[Extent]:
        """Extents evicted as a consequence of ``result``."""
        return [key for key, _tally, _tier in result.evicted]

    def items(self) -> List[Tuple[Extent, int, int]]:
        """Every ``(extent, tally, tier)`` currently held."""
        return self._table.items()

    def frequent(self, min_tally: int = 1) -> List[Tuple[Extent, int]]:
        """Extents with tally >= ``min_tally``, most frequent first."""
        selected = [
            (extent, tally)
            for extent, tally, _tier in self._table.items()
            if tally >= min_tally
        ]
        selected.sort(key=lambda pair: (-pair[1], pair[0]))
        return selected

    def clear(self) -> None:
        self._table.clear()
