"""An indexed LRU queue with demotion.

Both tiers of the paper's synopsis tables (Section III-D1) are LRU queues of
``(key, tally)`` entries with three operations beyond a classic LRU:

* *touch* -- on a lookup hit the entry moves to the MRU end and its tally is
  incremented;
* *demote* -- an entry is moved to the LRU end, "marking it next for
  eviction", which reduces its relevancy without discarding its tally;
* *pop* by key -- promotion removes an entry from T1 to reinsert it in T2.

``collections.OrderedDict`` provides O(1) ``move_to_end`` in both directions,
which is exactly the structure needed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)


class LruQueue(Generic[K]):
    """Fixed-capacity LRU queue mapping keys to integer tallies.

    The MRU end is the *front* (where fresh and touched entries go) and the
    LRU end is the *back* (where eviction happens).  Internally the
    ``OrderedDict`` stores MRU-last, so "front" maps to ``last=True``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[K, int]" = OrderedDict()

    # -- read-only views ---------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def tally(self, key: K) -> Optional[int]:
        """Tally for ``key``, or ``None`` when absent.  Does not touch LRU."""
        return self._entries.get(key)

    def is_full(self) -> bool:
        return len(self._entries) >= self._capacity

    def keys_mru_order(self) -> List[K]:
        """Keys from most to least recently used."""
        return list(reversed(self._entries))

    def items(self) -> Iterator[Tuple[K, int]]:
        """Iterate ``(key, tally)`` pairs in LRU-to-MRU order."""
        return iter(self._entries.items())

    def peek_lru(self) -> Optional[K]:
        """Key next in line for eviction, or ``None`` when empty."""
        return next(iter(self._entries), None)

    # -- mutations ---------------------------------------------------------

    def touch(self, key: K, increment: int = 1) -> int:
        """Register a hit: move to MRU and increment the tally.

        Returns the new tally.  Raises ``KeyError`` when absent (callers are
        expected to test membership first, since a miss takes a different
        path through the two-tier logic).
        """
        self._entries[key] += increment
        self._entries.move_to_end(key, last=True)
        return self._entries[key]

    def hit(self, key: K, increment: int = 1) -> Optional[int]:
        """Single-lookup :meth:`touch`: returns the new tally, or ``None``
        when the key is absent.

        The two-tier hot path calls this instead of the ``in`` + ``touch``
        double dict lookup; the miss case costs one ``dict.get`` instead of
        one failed membership test per tier.
        """
        entries = self._entries
        tally = entries.get(key)
        if tally is None:
            return None
        tally += increment
        entries[key] = tally
        entries.move_to_end(key, last=True)
        return tally

    def insert(self, key: K, tally: int = 1) -> Optional[Tuple[K, int]]:
        """Insert a new entry at the MRU end.

        If the queue is full the LRU entry is evicted first and returned as
        ``(key, tally)``; otherwise ``None`` is returned.  Inserting a key
        that is already present is a programming error (use :meth:`touch`).
        """
        if key in self._entries:
            raise KeyError(f"key already present: {key!r}")
        evicted: Optional[Tuple[K, int]] = None
        if len(self._entries) >= self._capacity:
            evicted = self._entries.popitem(last=False)
        self._entries[key] = tally
        return evicted

    def demote(self, key: K) -> bool:
        """Move ``key`` to the LRU end (next for eviction).

        Returns whether the key was present.  The tally is preserved: the
        paper demotes "in order to reduce the relevancy of an entry without
        immediate eviction".
        """
        try:
            self._entries.move_to_end(key, last=False)
        except KeyError:
            return False
        return True

    def pop(self, key: K) -> Optional[int]:
        """Remove ``key`` and return its tally, or ``None`` when absent."""
        return self._entries.pop(key, None)

    def pop_lru(self) -> Optional[Tuple[K, int]]:
        """Evict and return the LRU entry, or ``None`` when empty."""
        if not self._entries:
            return None
        return self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def resize(self, new_capacity: int) -> List[Tuple[K, int]]:
        """Change the capacity, evicting from the LRU end when shrinking.

        Returns the evicted ``(key, tally)`` entries (empty when growing).
        Used by the adaptive two-tier table, which shifts capacity between
        tiers at runtime.
        """
        if new_capacity <= 0:
            raise ValueError(f"capacity must be positive, got {new_capacity}")
        evicted: List[Tuple[K, int]] = []
        while len(self._entries) > new_capacity:
            evicted.append(self._entries.popitem(last=False))
        self._capacity = new_capacity
        return evicted
