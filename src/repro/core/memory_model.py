"""The paper's synopsis memory accounting (Section IV-C1).

The paper sizes the synopsis as follows: an extent is a 64-bit block ID plus
a 32-bit length (12 bytes); with a 32-bit frequency counter an item-table
entry is 16 bytes and a correlation-table entry (two extents + counter) is
28 bytes.  With ``C`` entries in each of T1 and T2, the item table occupies
``32 C`` bytes and the correlation table ``56 C`` bytes -- ``88 C`` bytes in
total (1.44 MB at C = 16 K, 369 MB at C = 4 M).

These figures describe the *native* (C struct) representation a production
implementation would use; the pure-Python tables in this repository carry
interpreter overhead on top.  The model is used by the overhead benchmark
(Section IV-C4) and by capacity-planning helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .config import AnalyzerConfig

#: Bytes for one extent: 64-bit block ID + 32-bit length.
EXTENT_BYTES = 12
#: Bytes for one frequency counter.
COUNTER_BYTES = 4
#: One item-table entry: extent + counter.
ITEM_ENTRY_BYTES = EXTENT_BYTES + COUNTER_BYTES
#: One correlation-table entry: two extents + counter.
PAIR_ENTRY_BYTES = 2 * EXTENT_BYTES + COUNTER_BYTES
#: One Space-Saving counter: key extent + count + maximum-overcount error.
SKETCH_ENTRY_BYTES = EXTENT_BYTES + 2 * COUNTER_BYTES
#: One heavy-pair candidate: two extents + estimate.
PAIR_CANDIDATE_BYTES = 2 * EXTENT_BYTES + COUNTER_BYTES


@dataclass(frozen=True)
class SynopsisMemoryModel:
    """Native-representation memory footprint for per-tier capacity ``C``."""

    capacity: int

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")

    @property
    def item_table_bytes(self) -> int:
        """T1 + T2 of the item table: ``32 C`` bytes."""
        return 2 * self.capacity * ITEM_ENTRY_BYTES

    @property
    def correlation_table_bytes(self) -> int:
        """T1 + T2 of the correlation table: ``56 C`` bytes."""
        return 2 * self.capacity * PAIR_ENTRY_BYTES

    @property
    def total_bytes(self) -> int:
        """The full synopsis: ``88 C`` bytes."""
        return self.item_table_bytes + self.correlation_table_bytes

    @property
    def total_megabytes(self) -> float:
        return self.total_bytes / (1024 * 1024)


# ---------------------------------------------------------------------------
# Per-backend estimates (the Pareto benchmark's memory axis)
# ---------------------------------------------------------------------------

def two_tier_backend_bytes(config: "AnalyzerConfig") -> int:
    """Native bytes of the paper's tables at the config's capacities.

    Generalises :class:`SynopsisMemoryModel` (which assumes one shared
    ``C``) to configs with distinct item and correlation capacities.
    """
    return (2 * config.item_capacity * ITEM_ENTRY_BYTES
            + 2 * config.correlation_capacity * PAIR_ENTRY_BYTES)


def chh_backend_bytes(items: int, partners: int) -> int:
    """Native bytes of the nested Misra-Gries CHH summary.

    ``items`` outer counters, one inner summary of ``partners`` counters
    per tracked item, plus an item-frequency summary of the same outer
    size (the ``frequent_extents`` answer), all at Space-Saving entry
    cost.
    """
    outer = items * SKETCH_ENTRY_BYTES
    inner = items * partners * SKETCH_ENTRY_BYTES
    item_summary = items * SKETCH_ENTRY_BYTES
    return outer + inner + item_summary


def cms_backend_bytes(width: int, depth: int, candidates: int) -> int:
    """Native bytes of the count-min pair backend: the ``depth x width``
    counter array, the heavy-pair candidate heap, and an item-frequency
    summary sized like the candidate heap."""
    counters = width * depth * COUNTER_BYTES
    heap = candidates * PAIR_CANDIDATE_BYTES
    item_summary = candidates * SKETCH_ENTRY_BYTES
    return counters + heap + item_summary


def backend_memory_bytes(config: "AnalyzerConfig") -> int:
    """Native-representation bytes for the config's selected backend."""
    backend = getattr(config, "backend", "two-tier")
    if backend == "two-tier":
        return two_tier_backend_bytes(config)
    if backend == "chh":
        return chh_backend_bytes(*config.chh_dimensions())
    if backend == "cms":
        return cms_backend_bytes(*config.cms_dimensions())
    raise ValueError(f"unknown backend {backend!r}")


def capacity_for_budget(budget_bytes: int) -> int:
    """Largest per-tier capacity ``C`` whose synopsis fits ``budget_bytes``."""
    per_entry = 2 * (ITEM_ENTRY_BYTES + PAIR_ENTRY_BYTES)
    capacity = budget_bytes // per_entry
    if capacity < 1:
        raise ValueError(
            f"budget of {budget_bytes} bytes cannot hold even one entry "
            f"({per_entry} bytes per unit of capacity)"
        )
    return capacity
