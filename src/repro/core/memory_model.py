"""The paper's synopsis memory accounting (Section IV-C1).

The paper sizes the synopsis as follows: an extent is a 64-bit block ID plus
a 32-bit length (12 bytes); with a 32-bit frequency counter an item-table
entry is 16 bytes and a correlation-table entry (two extents + counter) is
28 bytes.  With ``C`` entries in each of T1 and T2, the item table occupies
``32 C`` bytes and the correlation table ``56 C`` bytes -- ``88 C`` bytes in
total (1.44 MB at C = 16 K, 369 MB at C = 4 M).

These figures describe the *native* (C struct) representation a production
implementation would use; the pure-Python tables in this repository carry
interpreter overhead on top.  The model is used by the overhead benchmark
(Section IV-C4) and by capacity-planning helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes for one extent: 64-bit block ID + 32-bit length.
EXTENT_BYTES = 12
#: Bytes for one frequency counter.
COUNTER_BYTES = 4
#: One item-table entry: extent + counter.
ITEM_ENTRY_BYTES = EXTENT_BYTES + COUNTER_BYTES
#: One correlation-table entry: two extents + counter.
PAIR_ENTRY_BYTES = 2 * EXTENT_BYTES + COUNTER_BYTES


@dataclass(frozen=True)
class SynopsisMemoryModel:
    """Native-representation memory footprint for per-tier capacity ``C``."""

    capacity: int

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")

    @property
    def item_table_bytes(self) -> int:
        """T1 + T2 of the item table: ``32 C`` bytes."""
        return 2 * self.capacity * ITEM_ENTRY_BYTES

    @property
    def correlation_table_bytes(self) -> int:
        """T1 + T2 of the correlation table: ``56 C`` bytes."""
        return 2 * self.capacity * PAIR_ENTRY_BYTES

    @property
    def total_bytes(self) -> int:
        """The full synopsis: ``88 C`` bytes."""
        return self.item_table_bytes + self.correlation_table_bytes

    @property
    def total_megabytes(self) -> float:
        return self.total_bytes / (1024 * 1024)


def capacity_for_budget(budget_bytes: int) -> int:
    """Largest per-tier capacity ``C`` whose synopsis fits ``budget_bytes``."""
    per_entry = 2 * (ITEM_ENTRY_BYTES + PAIR_ENTRY_BYTES)
    capacity = budget_bytes // per_entry
    if capacity < 1:
        raise ValueError(
            f"budget of {budget_bytes} bytes cannot hold even one entry "
            f"({per_entry} bytes per unit of capacity)"
        )
    return capacity
