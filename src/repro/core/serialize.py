"""Synopsis checkpoint/restore.

A production characterization service must survive restarts without losing
what it has learned, and may want to ship its synopsis to an optimizer on
another host.  This module serialises an :class:`OnlineAnalyzer`'s two
tables to the paper's native entry layout -- 16-byte item entries and
28-byte pair entries (Section IV-C1) -- preceded by a small header, with
LRU order preserved exactly, so a restored analyzer continues as if the
process had never stopped.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, List, Tuple

from .analyzer import OnlineAnalyzer
from .config import AnalyzerConfig
from .extent import Extent, ExtentPair

_MAGIC = b"RTSYN\x01"
# Header: item T1/T2 capacities, pair T1/T2 capacities, promote threshold,
# then four section entry counts.
_HEADER = struct.Struct("<IIIIIIIII")
# Item entry: 64-bit start, 32-bit length, 32-bit tally (16 bytes).
_ITEM = struct.Struct("<QII")
# Pair entry: two extents + 32-bit tally (28 bytes).
_PAIR = struct.Struct("<QIQII")


def _tier_entries(queue) -> List[Tuple]:
    """Entries of one LRU queue in LRU-to-MRU order."""
    return list(queue.items())


def dump_analyzer(analyzer: OnlineAnalyzer, stream: BinaryIO) -> int:
    """Write the analyzer's synopsis to ``stream``; returns bytes written."""
    items = analyzer.items._table           # two-tier internals
    correlations = analyzer.correlations._table
    sections = [
        _tier_entries(items.t1),
        _tier_entries(items.t2),
        _tier_entries(correlations.t1),
        _tier_entries(correlations.t2),
    ]
    written = stream.write(_MAGIC)
    written += stream.write(_HEADER.pack(
        items.t1.capacity, items.t2.capacity,
        correlations.t1.capacity, correlations.t2.capacity,
        analyzer.config.promote_threshold,
        len(sections[0]), len(sections[1]),
        len(sections[2]), len(sections[3]),
    ))
    for extent, tally in sections[0] + sections[1]:
        written += stream.write(_ITEM.pack(extent.start, extent.length, tally))
    for pair, tally in sections[2] + sections[3]:
        written += stream.write(_PAIR.pack(
            pair.first.start, pair.first.length,
            pair.second.start, pair.second.length, tally,
        ))
    return written


def load_analyzer(stream: BinaryIO) -> OnlineAnalyzer:
    """Restore an analyzer serialised by :func:`dump_analyzer`.

    The restored synopsis has identical residency, tallies, tier
    membership, and LRU ordering; operation counters (hits/misses) start
    fresh -- they describe a process lifetime, not the learned state.
    """
    magic = stream.read(len(_MAGIC))
    if magic != _MAGIC:
        raise ValueError(f"bad synopsis magic: {magic!r}")
    header = stream.read(_HEADER.size)
    if len(header) != _HEADER.size:
        raise ValueError("truncated synopsis header")
    (item_t1, item_t2, pair_t1, pair_t2, promote,
     n_item_t1, n_item_t2, n_pair_t1, n_pair_t2) = _HEADER.unpack(header)

    # Rebuild an analyzer whose tier split matches the dumped capacities.
    analyzer = OnlineAnalyzer(AnalyzerConfig(
        item_capacity=max(1, (item_t1 + item_t2) // 2),
        correlation_capacity=max(1, (pair_t1 + pair_t2) // 2),
        promote_threshold=promote,
        t2_ratio=item_t2 / max(1, item_t1 + item_t2),
    ))
    items = analyzer.items._table
    correlations = analyzer.correlations._table
    items._t1 = type(items.t1)(item_t1)
    items._t2 = type(items.t2)(item_t2)
    correlations._t1 = type(correlations.t1)(pair_t1)
    correlations._t2 = type(correlations.t2)(pair_t2)

    def _read_items(count: int, queue) -> None:
        for _ in range(count):
            chunk = stream.read(_ITEM.size)
            if len(chunk) != _ITEM.size:
                raise ValueError("truncated item section")
            start, length, tally = _ITEM.unpack(chunk)
            queue.insert(Extent(start, length), tally)

    def _read_pairs(count: int, queue) -> None:
        for _ in range(count):
            chunk = stream.read(_PAIR.size)
            if len(chunk) != _PAIR.size:
                raise ValueError("truncated pair section")
            a_start, a_length, b_start, b_length, tally = _PAIR.unpack(chunk)
            pair = ExtentPair(Extent(a_start, a_length),
                              Extent(b_start, b_length))
            queue.insert(pair, tally)
            analyzer.correlations._index(pair)

    _read_items(n_item_t1, items.t1)
    _read_items(n_item_t2, items.t2)
    _read_pairs(n_pair_t1, correlations.t1)
    _read_pairs(n_pair_t2, correlations.t2)
    return analyzer


def dumps_analyzer(analyzer: OnlineAnalyzer) -> bytes:
    """Serialise to bytes (convenience wrapper)."""
    import io
    buffer = io.BytesIO()
    dump_analyzer(analyzer, buffer)
    return buffer.getvalue()


def loads_analyzer(data: bytes) -> OnlineAnalyzer:
    """Restore from bytes (convenience wrapper)."""
    import io
    return load_analyzer(io.BytesIO(data))


def synopsis_size_bytes(analyzer: OnlineAnalyzer) -> int:
    """Checkpoint size for the analyzer's current contents."""
    item_entries = len(analyzer.items)
    pair_entries = len(analyzer.correlations)
    return (len(_MAGIC) + _HEADER.size
            + item_entries * _ITEM.size + pair_entries * _PAIR.size)
