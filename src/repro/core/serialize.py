"""Synopsis checkpoint/restore.

A production characterization service must survive restarts without losing
what it has learned, and may want to ship its synopsis to an optimizer on
another host.  This module serialises an :class:`OnlineAnalyzer`'s two
tables to the paper's native entry layout -- 16-byte item entries and
28-byte pair entries (Section IV-C1) -- preceded by a small header, with
LRU order preserved exactly, so a restored analyzer continues as if the
process had never stopped.

Checkpoint format **v2** wraps the payload in an integrity envelope:
``magic || crc32 || payload-length || payload``.  A bit flip anywhere in
the file -- disk rot, a torn copy, an interrupted upload -- is detected at
load time and rejected with :class:`CheckpointCorruptError` instead of
silently restoring a subtly wrong synopsis.  v1 checkpoints (no CRC) are
still readable.  :func:`save_checkpoint` additionally writes atomically
(temp file + fsync + rename) so a crash mid-write can never clobber the
previous good checkpoint.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from pathlib import Path
from typing import BinaryIO, List, Tuple, Union

from .analyzer import OnlineAnalyzer
from .config import AnalyzerConfig
from .extent import Extent, ExtentPair


class CheckpointCorruptError(ValueError):
    """A checkpoint failed its integrity or structure checks.

    Subclasses :class:`ValueError` so callers that guarded against the old
    parse errors keep working; new callers should catch this type to
    distinguish corruption (fall back to a fresh synopsis) from I/O errors
    (retry).
    """


_MAGIC_V1 = b"RTSYN\x01"
_MAGIC = b"RTSYN\x02"
# Integrity envelope (v2): CRC32 of the payload, payload byte length.
_INTEGRITY = struct.Struct("<II")
# Header: item T1/T2 capacities, pair T1/T2 capacities, promote threshold,
# then four section entry counts.
_HEADER = struct.Struct("<IIIIIIIII")
# Item entry: 64-bit start, 32-bit length, 32-bit tally (16 bytes).
_ITEM = struct.Struct("<QII")
# Pair entry: two extents + 32-bit tally (28 bytes).
_PAIR = struct.Struct("<QIQII")


def _tier_entries(queue) -> List[Tuple]:
    """Entries of one LRU queue in LRU-to-MRU order."""
    return list(queue.items())


def _payload_bytes(analyzer: OnlineAnalyzer) -> bytes:
    """The header + entry sections (everything the CRC protects)."""
    items = analyzer.items._table           # two-tier internals
    correlations = analyzer.correlations._table
    sections = [
        _tier_entries(items.t1),
        _tier_entries(items.t2),
        _tier_entries(correlations.t1),
        _tier_entries(correlations.t2),
    ]
    payload = io.BytesIO()
    payload.write(_HEADER.pack(
        items.t1.capacity, items.t2.capacity,
        correlations.t1.capacity, correlations.t2.capacity,
        analyzer.config.promote_threshold,
        len(sections[0]), len(sections[1]),
        len(sections[2]), len(sections[3]),
    ))
    for extent, tally in sections[0] + sections[1]:
        payload.write(_ITEM.pack(extent.start, extent.length, tally))
    for pair, tally in sections[2] + sections[3]:
        payload.write(_PAIR.pack(
            pair.first.start, pair.first.length,
            pair.second.start, pair.second.length, tally,
        ))
    return payload.getvalue()


def dump_analyzer(analyzer: OnlineAnalyzer, stream: BinaryIO) -> int:
    """Write the analyzer's synopsis (v2 format); returns bytes written."""
    payload = _payload_bytes(analyzer)
    written = stream.write(_MAGIC)
    written += stream.write(_INTEGRITY.pack(
        zlib.crc32(payload), len(payload)
    ))
    written += stream.write(payload)
    return written


def load_analyzer(stream: BinaryIO) -> OnlineAnalyzer:
    """Restore an analyzer serialised by :func:`dump_analyzer`.

    Accepts both the CRC-protected v2 format and legacy v1 checkpoints.
    Any integrity or structure violation raises
    :class:`CheckpointCorruptError`.  The restored synopsis has identical
    residency, tallies, tier membership, and LRU ordering; operation
    counters (hits/misses) start fresh -- they describe a process
    lifetime, not the learned state.
    """
    magic = stream.read(len(_MAGIC))
    if magic == _MAGIC:
        envelope = stream.read(_INTEGRITY.size)
        if len(envelope) != _INTEGRITY.size:
            raise CheckpointCorruptError("truncated integrity envelope")
        crc_expected, payload_length = _INTEGRITY.unpack(envelope)
        payload = stream.read(payload_length)
        if len(payload) != payload_length:
            raise CheckpointCorruptError(
                f"truncated checkpoint payload: expected {payload_length} "
                f"bytes, got {len(payload)}"
            )
        crc_actual = zlib.crc32(payload)
        if crc_actual != crc_expected:
            raise CheckpointCorruptError(
                f"checkpoint CRC mismatch: stored {crc_expected:#010x}, "
                f"computed {crc_actual:#010x}"
            )
        stream = io.BytesIO(payload)
    elif magic != _MAGIC_V1:
        raise CheckpointCorruptError(f"bad synopsis magic: {magic!r}")
    header = stream.read(_HEADER.size)
    if len(header) != _HEADER.size:
        raise CheckpointCorruptError("truncated synopsis header")
    (item_t1, item_t2, pair_t1, pair_t2, promote,
     n_item_t1, n_item_t2, n_pair_t1, n_pair_t2) = _HEADER.unpack(header)

    # Rebuild an analyzer whose tier split matches the dumped capacities.
    try:
        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=max(1, (item_t1 + item_t2) // 2),
            correlation_capacity=max(1, (pair_t1 + pair_t2) // 2),
            promote_threshold=promote,
            t2_ratio=item_t2 / max(1, item_t1 + item_t2),
        ))
        items = analyzer.items._table
        correlations = analyzer.correlations._table
        items._t1 = type(items.t1)(item_t1)
        items._t2 = type(items.t2)(item_t2)
        correlations._t1 = type(correlations.t1)(pair_t1)
        correlations._t2 = type(correlations.t2)(pair_t2)
    except ValueError as exc:
        raise CheckpointCorruptError(f"bad synopsis header: {exc}") from exc

    def _read_items(count: int, queue) -> None:
        for _ in range(count):
            chunk = stream.read(_ITEM.size)
            if len(chunk) != _ITEM.size:
                raise CheckpointCorruptError("truncated item section")
            start, length, tally = _ITEM.unpack(chunk)
            try:
                queue.insert(Extent(start, length), tally)
            except ValueError as exc:
                raise CheckpointCorruptError(f"bad item entry: {exc}") from exc

    def _read_pairs(count: int, queue) -> None:
        for _ in range(count):
            chunk = stream.read(_PAIR.size)
            if len(chunk) != _PAIR.size:
                raise CheckpointCorruptError("truncated pair section")
            a_start, a_length, b_start, b_length, tally = _PAIR.unpack(chunk)
            try:
                pair = ExtentPair(Extent(a_start, a_length),
                                  Extent(b_start, b_length))
            except ValueError as exc:
                raise CheckpointCorruptError(f"bad pair entry: {exc}") from exc
            queue.insert(pair, tally)
            analyzer.correlations._index(pair)

    _read_items(n_item_t1, items.t1)
    _read_items(n_item_t2, items.t2)
    _read_pairs(n_pair_t1, correlations.t1)
    _read_pairs(n_pair_t2, correlations.t2)
    return analyzer


def dumps_analyzer(analyzer: OnlineAnalyzer) -> bytes:
    """Serialise to bytes (convenience wrapper)."""
    buffer = io.BytesIO()
    dump_analyzer(analyzer, buffer)
    return buffer.getvalue()


def loads_analyzer(data: bytes) -> OnlineAnalyzer:
    """Restore from bytes (convenience wrapper)."""
    return load_analyzer(io.BytesIO(data))


def synopsis_size_bytes(analyzer: OnlineAnalyzer) -> int:
    """Checkpoint size for the analyzer's current contents."""
    item_entries = len(analyzer.items)
    pair_entries = len(analyzer.correlations)
    return (len(_MAGIC) + _INTEGRITY.size + _HEADER.size
            + item_entries * _ITEM.size + pair_entries * _PAIR.size)


# ---------------------------------------------------------------------------
# Atomic file checkpoints
# ---------------------------------------------------------------------------

PathOrStr = Union[str, Path]

#: Test seam: called (with the temp path and the final path) after the
#: temp file is written and fsynced, just before the atomic rename.  The
#: fault harness (:mod:`repro.resilience.faults`) raises here to prove a
#: crash in that window can never clobber the previous good checkpoint.
_pre_rename_hook = None


def _run_pre_rename_hook(tmp_path: Path, path: Path) -> None:
    if _pre_rename_hook is not None:
        _pre_rename_hook(tmp_path, path)


def save_checkpoint(analyzer: OnlineAnalyzer, path: PathOrStr) -> int:
    """Atomically write a checkpoint file; returns bytes written.

    The synopsis is written to a temporary file in the target directory,
    fsynced, and renamed over ``path``.  A crash at any point leaves either
    the previous checkpoint or the new one -- never a torn file.
    """
    path = Path(path)
    tmp_path = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp_path, "wb") as stream:
            written = dump_analyzer(analyzer, stream)
            stream.flush()
            os.fsync(stream.fileno())
        _run_pre_rename_hook(tmp_path, path)
        os.replace(tmp_path, path)
    finally:
        if tmp_path.exists():
            tmp_path.unlink()
    return written


def load_checkpoint(path: PathOrStr) -> OnlineAnalyzer:
    """Load and integrity-check a checkpoint file.

    Raises :class:`CheckpointCorruptError` on any corruption and the usual
    :class:`OSError` family on I/O failure.
    """
    with open(path, "rb") as stream:
        return load_analyzer(stream)
