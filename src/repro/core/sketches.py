"""Shared streaming-sketch primitives.

Space-Saving and Count-Min started life as FIM baselines in
:mod:`repro.fim.sketch`; the synopsis backends
(:mod:`repro.engine.backends`) reuse the exact same structures as
building blocks -- Space-Saving is the Misra-Gries summary at both levels
of the CHH backend (the lazy min-heap *is* the Epicoco/Cafaro/Pulimeno
fast-variant update path), and Count-Min with a candidate heap is the
pair-sketch backend.  They therefore live here, in :mod:`repro.core`,
below both consumers; :mod:`repro.fim.sketch` re-exports them unchanged.

* **Space-Saving** (Metwally, Agrawal & El Abbadi, 2005) -- maintains
  exactly ``capacity`` counters; a new item takes over the minimum counter
  (inheriting its count as an overestimate).  Guarantees: every item with
  true frequency > N/capacity is in the summary, and each counter
  overestimates by at most the minimum counter value.
* **Count-Min sketch** (Cormode & Muthukrishnan, 2005) -- a ``depth x
  width`` counter array; estimates never underestimate and overestimate
  by at most ``e * N / width`` with probability ``1 - e^-depth``.  Paired
  with a top-k heap it yields a frequent-pair summary.

Both optimise pure *frequency* with no recency dimension, so they cannot
forget old concepts (compare Fig. 10) -- the trade the backend Pareto
benchmark makes visible against the paper's two-tier tables.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
    TypeVar,
)

K = TypeVar("K", bound=Hashable)


class SpaceSaving(Generic[K]):
    """The Space-Saving heavy-hitters summary.

    ``update(key)`` is O(log capacity) via a lazy min-heap and returns the
    key the new entry displaced (``None`` when nothing was evicted), so
    hierarchical summaries -- the CHH backend's outer level owns one inner
    summary per tracked key -- can drop dependent state exactly when its
    anchor leaves the summary.  ``count(key)`` returns the (over)estimate
    and ``error(key)`` its maximum overcount.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._counts: Dict[K, int] = {}
        self._errors: Dict[K, int] = {}
        self._heap: List[Tuple[int, K]] = []  # lazy (count, key) min-heap
        self.total = 0

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: K) -> bool:
        return key in self._counts

    def __iter__(self):
        return iter(self._counts)

    def _push(self, key: K) -> None:
        heapq.heappush(self._heap, (self._counts[key], key))

    def _pop_minimum(self) -> K:
        """Pop the key with the (currently) smallest count, lazily fixing
        stale heap entries."""
        while True:
            count, key = heapq.heappop(self._heap)
            current = self._counts.get(key)
            if current == count:
                return key
            if current is not None:
                heapq.heappush(self._heap, (current, key))

    def update(self, key: K, increment: int = 1) -> Optional[K]:
        """Record ``increment`` occurrences of ``key``.

        Returns the key evicted to make room, or ``None`` when ``key`` was
        already tracked or the summary still had space.
        """
        if increment < 1:
            raise ValueError(f"increment must be >= 1, got {increment}")
        self.total += increment
        if key in self._counts:
            self._counts[key] += increment
            self._push(key)
            return None
        if len(self._counts) < self.capacity:
            self._counts[key] = increment
            self._errors[key] = 0
            self._push(key)
            return None
        victim = self._pop_minimum()
        inherited = self._counts.pop(victim)
        self._errors.pop(victim, None)
        self._counts[key] = inherited + increment
        self._errors[key] = inherited
        self._push(key)
        return victim

    def count(self, key: K) -> int:
        """Estimated count (0 when not tracked); never underestimates
        tracked keys."""
        return self._counts.get(key, 0)

    def error(self, key: K) -> int:
        """Maximum overestimate of ``key``'s count."""
        return self._errors.get(key, 0)

    def guaranteed_count(self, key: K) -> int:
        """A lower bound on the true count: estimate minus error."""
        return self.count(key) - self.error(key)

    def frequent(self, min_count: int = 1) -> List[Tuple[K, int]]:
        """Tracked keys with estimate >= ``min_count``, strongest first."""
        selected = [
            (key, count) for key, count in self._counts.items()
            if count >= min_count
        ]
        selected.sort(key=lambda entry: (-entry[1], repr(entry[0])))
        return selected

    # -- state transfer (checkpointing) ------------------------------------

    def entries(self) -> List[Tuple[K, int, int]]:
        """Tracked ``(key, count, error)`` rows, unordered."""
        return [
            (key, count, self._errors.get(key, 0))
            for key, count in self._counts.items()
        ]

    def restore_entries(self, rows: Iterable[Tuple[K, int, int]],
                        total: Optional[int] = None) -> None:
        """Replace the summary's contents with ``rows``.

        ``total`` restores the stream length (defaults to the sum of the
        restored counts, a lower bound when evictions have happened).
        """
        self._counts = {}
        self._errors = {}
        for key, count, error in rows:
            self._counts[key] = count
            self._errors[key] = error
        if len(self._counts) > self.capacity:
            raise ValueError(
                f"{len(self._counts)} entries exceed capacity "
                f"{self.capacity}"
            )
        self._heap = [(count, key) for key, count in self._counts.items()]
        heapq.heapify(self._heap)
        self.total = total if total is not None \
            else sum(self._counts.values())


@dataclass(frozen=True)
class CountMinParams:
    """Sketch dimensions; defaults give ~0.1% relative error w.h.p."""

    width: int = 2048
    depth: int = 4

    def __post_init__(self) -> None:
        if self.width < 1 or self.depth < 1:
            raise ValueError("width and depth must be >= 1")


class CountMinSketch(Generic[K]):
    """A Count-Min sketch with an optional top-k heavy-hitter heap."""

    def __init__(self, params: Optional[CountMinParams] = None,
                 track_top: int = 0, conservative: bool = False) -> None:
        self.params = params or CountMinParams()
        self._rows: List[List[int]] = [
            [0] * self.params.width for _ in range(self.params.depth)
        ]
        self.total = 0
        self._track_top = track_top
        self._top: Dict[K, int] = {}
        #: Conservative update (Estan & Varghese): raise only the cells
        #: below the key's new estimate instead of incrementing all of
        #: them.  Point estimates still never underestimate (every cell a
        #: key touches is kept >= that key's running estimate), but
        #: colliding keys no longer inflate each other on every update,
        #: which tightens the error severalfold on skewed streams.
        self.conservative = conservative

    def _indexes(self, key: K) -> List[int]:
        base = hash(key)
        return [
            hash((row, base)) % self.params.width
            for row in range(self.params.depth)
        ]

    def update(self, key: K, increment: int = 1) -> None:
        if increment < 1:
            raise ValueError(f"increment must be >= 1, got {increment}")
        self.total += increment
        indexes = self._indexes(key)
        if self.conservative:
            estimate = increment + min(
                row[index] for row, index in zip(self._rows, indexes)
            )
            for row, index in zip(self._rows, indexes):
                if row[index] < estimate:
                    row[index] = estimate
        else:
            estimate = None
            for row, index in zip(self._rows, indexes):
                row[index] += increment
                value = row[index]
                estimate = value if estimate is None else min(estimate, value)
        if self._track_top:
            self._top[key] = estimate
            if len(self._top) > 2 * self._track_top:
                keep = sorted(self._top.items(),
                              key=lambda entry: -entry[1])[:self._track_top]
                self._top = dict(keep)

    def count(self, key: K) -> int:
        """Point estimate; never underestimates the true count."""
        return min(
            row[index]
            for row, index in zip(self._rows, self._indexes(key))
        )

    def heavy_hitters(self, min_count: int = 1) -> List[Tuple[K, int]]:
        """Tracked candidates with estimate >= ``min_count`` (requires
        ``track_top`` > 0), strongest first."""
        selected = [
            (key, self.count(key))
            for key in self._top
            if self.count(key) >= min_count
        ]
        selected.sort(key=lambda entry: (-entry[1], repr(entry[0])))
        if self._track_top:
            selected = selected[: self._track_top]
        return selected

    @property
    def memory_counters(self) -> int:
        return self.params.width * self.params.depth

    # -- state transfer (checkpointing) ------------------------------------

    @property
    def track_top(self) -> int:
        return self._track_top

    def counter_rows(self) -> List[List[int]]:
        """A copy of the ``depth x width`` counter array."""
        return [list(row) for row in self._rows]

    def candidates(self) -> List[Tuple[K, int]]:
        """The tracked heavy-hitter candidates with their last estimates."""
        return list(self._top.items())

    def restore_state(self, rows: List[List[int]], total: int,
                      candidates: Iterable[Tuple[K, int]]) -> None:
        """Replace the sketch's counters and candidate set."""
        if len(rows) != self.params.depth or any(
                len(row) != self.params.width for row in rows):
            raise ValueError(
                f"counter array shape mismatch: expected "
                f"{self.params.depth}x{self.params.width}"
            )
        self._rows = [list(row) for row in rows]
        self.total = total
        self._top = dict(candidates)
