"""The two-tier synopsis table (paper Section III-D1).

Inspired by ARC, each table in the synopsis keeps two LRU tiers:

* **T1** holds entries seen *infrequently* (typically once).  A miss inserts
  at T1's MRU end, evicting T1's LRU entry when full.
* **T2** holds entries seen *frequently*.  When an entry's tally in T1
  reaches the promotion threshold (by default on its first hit, i.e. the
  second sighting), it is moved to T2's MRU end, evicting T2's LRU entry
  when full.

Unlike ARC the tier sizes are fixed (no ghost-cache adaptation), and instead
of ghost lists the structure supports *demotion*: moving an entry to the LRU
end of its tier so it is next in line for eviction.  The combination of
frequency-gated promotion and LRU recency is what lets the synopsis balance
frequency against recency with a single pass over the transaction stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Generic, Hashable, List, Optional, Tuple, TypeVar

from .lru import LruQueue

K = TypeVar("K", bound=Hashable)

#: Which tier an entry lives in.
TIER1 = 1
TIER2 = 2


@dataclass
class TableStats:
    """Operation counters for one two-tier table."""

    lookups: int = 0
    t1_hits: int = 0
    t2_hits: int = 0
    misses: int = 0
    promotions: int = 0
    t1_evictions: int = 0
    t2_evictions: int = 0
    demotions: int = 0

    @property
    def hits(self) -> int:
        return self.t1_hits + self.t2_hits

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        """Field name -> value, in declaration order (telemetry seam)."""
        return {f.name: getattr(self, f.name) for f in
                dataclass_fields(self)}


@dataclass
class AccessResult(Generic[K]):
    """Outcome of recording one sighting of a key.

    ``evicted`` lists every ``(key, tally, tier)`` removed as a consequence
    (at most one from each tier: a T1 insert can evict from T1, and a
    promotion can evict from T2).  Callers that maintain secondary indexes
    (the correlation table's extent index, the analyzer's eviction hook)
    consume this list.
    """

    key: K
    hit: bool
    tier: int
    tally: int
    promoted: bool = False
    evicted: List[Tuple[K, int, int]] = field(default_factory=list)


class TwoTierTable(Generic[K]):
    """Fixed-size, two-tier, LRU + frequency synopsis table."""

    def __init__(
        self,
        t1_capacity: int,
        t2_capacity: Optional[int] = None,
        promote_threshold: int = 2,
    ) -> None:
        """Create a table.

        ``t2_capacity`` defaults to ``t1_capacity``; the paper found equal
        tier sizes appropriate (Section IV-C1).  ``promote_threshold`` is
        the tally at which a T1 entry moves to T2 -- the paper promotes on
        the first T1 hit, i.e. a threshold of 2.
        """
        if promote_threshold < 2:
            raise ValueError(
                f"promote_threshold must be >= 2 (first sighting lands in T1), "
                f"got {promote_threshold}"
            )
        self._t1: LruQueue[K] = LruQueue(t1_capacity)
        self._t2: LruQueue[K] = LruQueue(
            t1_capacity if t2_capacity is None else t2_capacity
        )
        self._promote_threshold = promote_threshold
        self.stats = TableStats()

    # -- capacity and membership --------------------------------------------

    @property
    def t1(self) -> LruQueue[K]:
        return self._t1

    @property
    def t2(self) -> LruQueue[K]:
        return self._t2

    @property
    def promote_threshold(self) -> int:
        return self._promote_threshold

    @property
    def capacity(self) -> int:
        return self._t1.capacity + self._t2.capacity

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def __contains__(self, key: K) -> bool:
        return key in self._t2 or key in self._t1

    def tier_of(self, key: K) -> Optional[int]:
        if key in self._t2:
            return TIER2
        if key in self._t1:
            return TIER1
        return None

    def tally(self, key: K) -> Optional[int]:
        value = self._t2.tally(key)
        if value is None:
            value = self._t1.tally(key)
        return value

    def items(self) -> List[Tuple[K, int, int]]:
        """Every ``(key, tally, tier)``, T2 first, in LRU-to-MRU order."""
        out = [(key, tally, TIER2) for key, tally in self._t2.items()]
        out.extend((key, tally, TIER1) for key, tally in self._t1.items())
        return out

    # -- the single-pass access operation ------------------------------------

    def access(self, key: K) -> AccessResult[K]:
        """Record one sighting of ``key``.

        * T2 hit: tally incremented, entry moved to T2 MRU.
        * T1 hit: tally incremented, entry moved to T1 MRU; if the tally
          reaches the promotion threshold the entry moves to T2 (possibly
          evicting T2's LRU entry).
        * miss: entry inserted at T1 MRU with tally 1 (possibly evicting
          T1's LRU entry).
        """
        stats = self.stats
        stats.lookups += 1
        tally = self._t2.hit(key)
        if tally is not None:
            stats.t2_hits += 1
            return AccessResult(key, hit=True, tier=TIER2, tally=tally)

        tally = self._t1.hit(key)
        if tally is not None:
            stats.t1_hits += 1
            if tally >= self._promote_threshold:
                self._t1.pop(key)
                displaced = self._t2.insert(key, tally)
                stats.promotions += 1
                result = AccessResult(
                    key, hit=True, tier=TIER2, tally=tally, promoted=True
                )
                if displaced is not None:
                    stats.t2_evictions += 1
                    result.evicted.append((displaced[0], displaced[1], TIER2))
                return result
            return AccessResult(key, hit=True, tier=TIER1, tally=tally)

        stats.misses += 1
        displaced = self._t1.insert(key, 1)
        result = AccessResult(key, hit=False, tier=TIER1, tally=1)
        if displaced is not None:
            stats.t1_evictions += 1
            result.evicted.append((displaced[0], displaced[1], TIER1))
        return result

    def access_fast(self, key: K) -> Tuple[bool, Optional[K]]:
        """Allocation-light :meth:`access` for the columnar hot loop.

        Performs *exactly* the same state transitions and stats mutations as
        :meth:`access`, but returns only ``(hit, evicted_key)`` -- no
        :class:`AccessResult` is built (its construction costs about as much
        as the dict work itself) and the LRU queues' ``OrderedDict``s are
        manipulated directly to skip per-call method dispatch.  At most one
        key can be evicted per access, so the second element is a single key
        or ``None``.
        """
        stats = self.stats
        stats.lookups += 1
        t2 = self._t2._entries
        tally = t2.get(key)
        if tally is not None:
            stats.t2_hits += 1
            t2[key] = tally + 1
            t2.move_to_end(key)
            return True, None
        t1 = self._t1._entries
        tally = t1.get(key)
        if tally is not None:
            tally += 1
            stats.t1_hits += 1
            if tally >= self._promote_threshold:
                # Promote: remove from T1, insert at T2 MRU.  access() touches
                # T1 before popping; the pop makes that touch unobservable, so
                # it is skipped here -- final OrderedDict state is identical.
                del t1[key]
                stats.promotions += 1
                evicted_key: Optional[K] = None
                if len(t2) >= self._t2._capacity:
                    evicted_key = t2.popitem(last=False)[0]
                    stats.t2_evictions += 1
                t2[key] = tally
                return True, evicted_key
            t1[key] = tally
            t1.move_to_end(key)
            return True, None
        stats.misses += 1
        evicted_key = None
        if len(t1) >= self._t1._capacity:
            evicted_key = t1.popitem(last=False)[0]
            stats.t1_evictions += 1
        t1[key] = 1
        return False, evicted_key

    # -- demotion and removal -------------------------------------------------

    def demote(self, key: K) -> bool:
        """Move ``key`` to the LRU end of its tier (next for eviction)."""
        demoted = self._t2.demote(key) or self._t1.demote(key)
        if demoted:
            self.stats.demotions += 1
        return demoted

    def remove(self, key: K) -> Optional[int]:
        """Remove ``key`` outright, returning its tally if present."""
        tally = self._t2.pop(key)
        if tally is None:
            tally = self._t1.pop(key)
        return tally

    def clear(self) -> None:
        self._t1.clear()
        self._t2.clear()
