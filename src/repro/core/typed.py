"""Correlation types: read/write-aware online analysis.

Section II-A notes that beyond the correlations themselves, "various
additional information can also be extracted from storage workloads such as
correlation strengths (frequency) and types (R/W), which can lead to better
optimizations" -- and Section V depends on it: the multi-stream GC
optimizer consumes *write* correlations (similar death times) while the
open-channel placer consumes *read* correlations (parallel access).

:class:`TypedOnlineAnalyzer` extends the online analyzer to tag each pair
occurrence with the operation mix of the transaction it came from, so the
synopsis can be queried for read-correlated, write-correlated, or mixed
pairs.  The sidecar type counts are bounded by correlation-table residency:
when a pair is evicted, its type history goes with it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..trace.record import OpType
from .analyzer import OnlineAnalyzer
from .config import AnalyzerConfig
from .extent import Extent, ExtentPair, unique_pairs


class CorrelationKind(enum.Enum):
    """Operation mix of one pair occurrence (or of its history)."""

    READ = "read"     # both members read
    WRITE = "write"   # both members written
    MIXED = "mixed"   # one read, one write


@dataclass
class TypeTally:
    """Per-pair occurrence counts by operation mix."""

    read: int = 0
    write: int = 0
    mixed: int = 0

    @property
    def total(self) -> int:
        return self.read + self.write + self.mixed

    def bump(self, kind: CorrelationKind) -> None:
        if kind is CorrelationKind.READ:
            self.read += 1
        elif kind is CorrelationKind.WRITE:
            self.write += 1
        else:
            self.mixed += 1

    def dominant(self) -> CorrelationKind:
        """The most common mix, ties broken read > write > mixed."""
        best = max(self.read, self.write, self.mixed)
        if self.read == best:
            return CorrelationKind.READ
        if self.write == best:
            return CorrelationKind.WRITE
        return CorrelationKind.MIXED


TypedItem = Tuple[Extent, OpType]


def _pair_kind(a: OpType, b: OpType) -> CorrelationKind:
    if a is OpType.READ and b is OpType.READ:
        return CorrelationKind.READ
    if a is OpType.WRITE and b is OpType.WRITE:
        return CorrelationKind.WRITE
    return CorrelationKind.MIXED


class TypedOnlineAnalyzer(OnlineAnalyzer):
    """An online analyzer that also tracks R/W correlation types.

    Accepts transactions of ``(extent, op)`` items via
    :meth:`process_typed` (or monitor transactions via
    :meth:`process_transaction`).  Untyped :meth:`process` still works and
    counts occurrences without type information.
    """

    def __init__(
        self,
        config: Optional[AnalyzerConfig] = None,
        registry=None,
        metric_labels=None,
    ) -> None:
        super().__init__(config, registry=registry,
                         metric_labels=metric_labels)
        self._types: Dict[ExtentPair, TypeTally] = {}

    # -- typed stream processing ---------------------------------------------

    def process_typed(self, items: Sequence[TypedItem]) -> None:
        """Process one transaction of ``(extent, op)`` items.

        Duplicate extents collapse to their first operation (matching the
        monitor's keep-first deduplication).  The item and correlation
        tables update exactly as in the base analyzer; additionally each
        pair's :class:`TypeTally` records the operation mix.
        """
        op_of: Dict[Extent, OpType] = {}
        for extent, op in items:
            op_of.setdefault(extent, op)
        distinct = sorted(op_of)

        self._transactions += 1
        self._extents_seen += len(distinct)

        for extent in distinct:
            result = self.items.access(extent)
            if self.config.demote_on_item_eviction:
                for evicted in self.items.evicted_from(result):
                    self.correlations.demote_involving(evicted)

        for pair in unique_pairs(distinct):
            result = self.correlations.access(pair)
            self._pairs_seen += 1
            for evicted_pair, _tally, _tier in result.evicted:
                self._types.pop(evicted_pair, None)
            tally = self._types.setdefault(pair, TypeTally())
            tally.bump(_pair_kind(op_of[pair.first], op_of[pair.second]))

    def process_transaction(self, transaction) -> None:
        """Process a monitor :class:`~repro.monitor.Transaction`."""
        self.process_typed([
            (event.extent, event.op) for event in transaction.events
        ])

    def process_batch(self, transactions: Iterable, *,
                      parallel: bool = False) -> int:
        """Process monitor transactions as one batch; returns the count.

        Exactly equivalent to calling :meth:`process_transaction` once per
        transaction -- same table operations in the same order -- but with
        the per-call attribute lookups, counter updates, and per-pair tally
        allocations hoisted out of the loop.  ``parallel`` is accepted for
        engine-protocol compatibility and ignored (a single analyzer has
        nothing to fan out over).
        """
        items_access = self.items.access
        corr_access = self.correlations.access
        demote = self.config.demote_on_item_eviction
        demote_involving = self.correlations.demote_involving
        types = self._types
        types_get = types.get
        types_pop = types.pop
        count = 0
        extents_seen = 0
        pairs_seen = 0
        for transaction in transactions:
            count += 1
            op_of: Dict[Extent, OpType] = {}
            keep_first = op_of.setdefault
            for event in transaction.events:
                keep_first(event.extent, event.op)
            distinct = sorted(op_of)
            extents_seen += len(distinct)

            for extent in distinct:
                result = items_access(extent)
                if demote and result.evicted:
                    for evicted, _tally, _tier in result.evicted:
                        demote_involving(evicted)

            pairs = unique_pairs(distinct)
            pairs_seen += len(pairs)
            for pair in pairs:
                result = corr_access(pair)
                for evicted_pair, _tally, _tier in result.evicted:
                    types_pop(evicted_pair, None)
                tally = types_get(pair)
                if tally is None:
                    types[pair] = tally = TypeTally()
                tally.bump(_pair_kind(op_of[pair.first], op_of[pair.second]))

        self._transactions += count
        self._extents_seen += extents_seen
        self._pairs_seen += pairs_seen
        return count

    def process_transaction_batch(self, batch, *,
                                  parallel: bool = False) -> int:
        """Columnar :meth:`process_batch`: same tables, same order, no
        per-event objects.

        Consumes a :class:`~repro.monitor.batch.TransactionBatch` whose
        distinct view (sorted, deduplicated, keep-first ops) matches this
        analyzer's iteration order, so the synopsis and the typed sidecar
        end up identical to processing the materialized transactions.
        The pair kind falls out of the op-code sum (read=0, write=1):
        0 is read/read, 2 write/write, 1 mixed.  ``parallel`` is accepted
        for engine-protocol compatibility and ignored.
        """
        starts = batch.starts.tolist()
        lengths = batch.lengths.tolist()
        ops = batch.ops.tolist()
        offsets = batch.offsets.tolist()
        intern_extent = self._interner.extent
        intern_pair = self._interner.pair
        items_access = self.items.access_fast
        corr_access = self.correlations.access_fast
        demote = self.config.demote_on_item_eviction
        demote_involving = self.correlations.demote_involving
        types = self._types
        types_get = types.get
        types_pop = types.pop
        count = len(offsets) - 1
        extents_seen = 0
        pairs_seen = 0
        for t in range(count):
            lo = offsets[t]
            hi = offsets[t + 1]
            extents = [intern_extent(starts[k], lengths[k])
                       for k in range(lo, hi)]
            n = hi - lo
            extents_seen += n
            for extent in extents:
                evicted = items_access(extent)
                if demote and evicted is not None:
                    demote_involving(evicted)
            if n > 1:
                pairs_seen += n * (n - 1) // 2
                for i in range(n - 1):
                    a = extents[i]
                    op_a = ops[lo + i]
                    for j in range(i + 1, n):
                        pair = intern_pair(a, extents[j])
                        evicted_pair = corr_access(pair)
                        if evicted_pair is not None:
                            types_pop(evicted_pair, None)
                        tally = types_get(pair)
                        if tally is None:
                            types[pair] = tally = TypeTally()
                        mix = op_a + ops[lo + j]
                        if mix == 0:
                            tally.read += 1
                        elif mix == 2:
                            tally.write += 1
                        else:
                            tally.mixed += 1
        self._transactions += count
        self._extents_seen += extents_seen
        self._pairs_seen += pairs_seen
        return count

    # -- typed queries -----------------------------------------------------------

    def type_tally(self, pair: ExtentPair) -> Optional[TypeTally]:
        """The R/W mix recorded for a resident pair, if any."""
        return self._types.get(pair)

    def frequent_pairs_of_kind(
        self,
        kind: CorrelationKind,
        min_support: int = 2,
        purity: float = 0.5,
    ) -> List[Tuple[ExtentPair, int]]:
        """Frequent pairs whose history is dominated by ``kind``.

        ``purity`` is the minimum fraction of the pair's typed occurrences
        that must be of ``kind`` (0.5 means plurality-with-majority).
        Results are ordered strongest-first, like :meth:`frequent_pairs`.
        """
        if not 0.0 <= purity <= 1.0:
            raise ValueError(f"purity must be in [0, 1], got {purity}")
        selected: List[Tuple[ExtentPair, int]] = []
        for pair, tally in self.frequent_pairs(min_support):
            types = self._types.get(pair)
            if types is None or types.total == 0:
                continue
            of_kind = {
                CorrelationKind.READ: types.read,
                CorrelationKind.WRITE: types.write,
                CorrelationKind.MIXED: types.mixed,
            }[kind]
            if of_kind / types.total >= purity and types.dominant() is kind:
                selected.append((pair, tally))
        return selected

    def read_correlations(self, min_support: int = 2):
        """Frequent read-read pairs -- input to parallel placement (§V-2)."""
        return self.frequent_pairs_of_kind(CorrelationKind.READ, min_support)

    def write_correlations(self, min_support: int = 2):
        """Frequent write-write pairs -- input to GC streaming (§V-1)."""
        return self.frequent_pairs_of_kind(CorrelationKind.WRITE, min_support)

    def kind_summary(self) -> Dict[CorrelationKind, int]:
        """Resident pair counts by dominant kind."""
        summary = {kind: 0 for kind in CorrelationKind}
        for pair in self.pair_frequencies():
            types = self._types.get(pair)
            if types is not None and types.total:
                summary[types.dominant()] += 1
        return summary

    def adopt(self, other: OnlineAnalyzer) -> None:
        """Adopt a restored synopsis; the typed sidecar starts fresh.

        Type mixes are rebuilt from future traffic -- the checkpoint format
        stores the paper's native entry layout, which has no R/W sidecar.
        """
        super().adopt(other)
        self._types = (dict(other._types)
                       if isinstance(other, TypedOnlineAnalyzer) else {})

    def reset(self) -> None:
        super().reset()
        self._types.clear()
