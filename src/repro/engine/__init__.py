"""The synopsis engine layer: single or hash-partitioned table backends.

``SynopsisEngine`` is the contract the monitor/service/pipeline layers
program against; ``SingleAnalyzerEngine`` wraps the classic one-analyzer
hot path unchanged, and ``ShardedAnalyzer`` hash-partitions the item and
correlation tables across N independent shard synopses, merging on query.
Checkpoint format v3 (per-shard CRC envelopes) lives in
:mod:`repro.engine.checkpoint`.
"""

from .base import SingleAnalyzerEngine, SynopsisEngine
from .checkpoint import (
    LoadedEngine,
    dump_engine,
    dump_sharded,
    load_engine,
    load_engine_checkpoint,
    load_sharded,
    save_engine_checkpoint,
)
from .procshard import ProcessShardedAnalyzer, ShardWorkerError, route_batch
from .sharded import ShardedAnalyzer, shard_config

__all__ = [
    "LoadedEngine",
    "ProcessShardedAnalyzer",
    "ShardWorkerError",
    "ShardedAnalyzer",
    "SingleAnalyzerEngine",
    "SynopsisEngine",
    "dump_engine",
    "dump_sharded",
    "load_engine",
    "load_engine_checkpoint",
    "load_sharded",
    "route_batch",
    "save_engine_checkpoint",
    "shard_config",
]
