"""The synopsis engine layer: single or hash-partitioned backends.

``SynopsisEngine`` is the contract the monitor/service/pipeline layers
program against; ``SingleAnalyzerEngine`` wraps the classic one-analyzer
hot path unchanged, ``ShardedAnalyzer`` hash-partitions the item and
correlation tables across N independent shard synopses (merging on
query), and ``BackendEngine`` hosts any pluggable synopsis backend
(:mod:`repro.engine.backends`: two-tier tables, Correlated Heavy
Hitters, count-min pair sketches) behind the same interface.
Checkpoint formats v3 (per-shard CRC envelopes) and v4 (backend-tagged
shard payloads) live in :mod:`repro.engine.checkpoint`.
"""

from .backends import (
    BACKEND_NAMES,
    BackendBase,
    CHHBackend,
    CountMinPairBackend,
    SynopsisBackend,
    TwoTierBackend,
    create_backend,
    deserialize_backend,
)
from .backends.host import BackendEngine
from .base import SingleAnalyzerEngine, SynopsisEngine
from .checkpoint import (
    LoadedEngine,
    dump_backend_engine,
    dump_engine,
    dump_sharded,
    load_backend_engine,
    load_engine,
    load_engine_checkpoint,
    load_sharded,
    save_engine_checkpoint,
)
from .procshard import ProcessShardedAnalyzer, ShardWorkerError, route_batch
from .sharded import ShardedAnalyzer, shard_config

__all__ = [
    "BACKEND_NAMES",
    "BackendBase",
    "BackendEngine",
    "CHHBackend",
    "CountMinPairBackend",
    "LoadedEngine",
    "ProcessShardedAnalyzer",
    "ShardWorkerError",
    "ShardedAnalyzer",
    "SingleAnalyzerEngine",
    "SynopsisBackend",
    "SynopsisEngine",
    "TwoTierBackend",
    "create_backend",
    "deserialize_backend",
    "dump_backend_engine",
    "dump_engine",
    "dump_sharded",
    "load_backend_engine",
    "load_engine",
    "load_engine_checkpoint",
    "load_sharded",
    "route_batch",
    "save_engine_checkpoint",
    "shard_config",
]
