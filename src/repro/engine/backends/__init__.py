"""Pluggable synopsis backends.

The registry maps the :class:`~repro.core.config.AnalyzerConfig`
``backend`` name to an implementation of the
:class:`~.base.SynopsisBackend` contract:

* ``two-tier`` -- the paper's LRU item/correlation tables (reference
  accuracy, ``88 C`` bytes);
* ``chh`` -- nested Misra-Gries Correlated Heavy Hitters (Lahiri et
  al.), lazy-heap fast variant;
* ``cms`` -- count-min pair sketch with a heavy-pair candidate set
  (Cormode/Muthukrishnan counters, Cormode/Dark-style recovery).

Hosting engines (:class:`~.host.BackendEngine` in-process,
:class:`~repro.engine.procshard.ProcessShardedAnalyzer` across worker
processes) construct shards through :func:`create_backend` and restore
checkpoints through :func:`deserialize_backend`; neither hard-codes a
concrete class.  ``host`` is imported lazily by
:mod:`repro.engine` to keep this module importable from inside
the factory functions.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ...core.config import BACKEND_NAMES, AnalyzerConfig
from .base import BackendBase, SynopsisBackend
from .chh import CHHBackend
from .cms import CountMinPairBackend
from .twotier import TwoTierBackend

_BACKENDS: Dict[str, Type[BackendBase]] = {
    TwoTierBackend.name: TwoTierBackend,
    CHHBackend.name: CHHBackend,
    CountMinPairBackend.name: CountMinPairBackend,
}

assert set(_BACKENDS) == set(BACKEND_NAMES)


def backend_class(name: str) -> Type[BackendBase]:
    """The backend class registered under ``name``."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown synopsis backend {name!r}; "
            f"expected one of {sorted(_BACKENDS)}"
        ) from None


def create_backend(name: str,
                   config: Optional[AnalyzerConfig] = None) -> BackendBase:
    """Instantiate a fresh backend of the named kind."""
    return backend_class(name)(config)


def deserialize_backend(name: str, payload: bytes,
                        config: Optional[AnalyzerConfig] = None
                        ) -> BackendBase:
    """Restore a backend of the named kind from its serialized state."""
    return backend_class(name).deserialize(payload, config)


__all__ = [
    "BACKEND_NAMES",
    "BackendBase",
    "CHHBackend",
    "CountMinPairBackend",
    "SynopsisBackend",
    "TwoTierBackend",
    "backend_class",
    "create_backend",
    "deserialize_backend",
]
