"""The synopsis backend contract.

The paper's two-tier LRU tables are one *representation* of the synopsis;
Lahiri et al.'s Correlated Heavy Hitters and Cormode/Muthukrishnan-style
count-min pair sketches are sublinear alternatives over the same stream.
:class:`SynopsisBackend` names the surface all three share so the hosting
layers -- :class:`~repro.engine.backends.host.BackendEngine` in-process,
:class:`~repro.engine.procshard.ProcessShardedAnalyzer` across worker
processes, checkpoint format v4 -- can treat the representation as a
plug-in:

* **ingest** -- ``process`` / ``process_transaction`` /
  ``process_transaction_batch`` for standalone use, plus the two
  primitive updates (``update_item`` / ``update_pair``) a host calls
  after routing, and ``apply_shard_work`` consuming the procshard
  engine's pre-routed columnar arrays;
* **queries** -- ranked ``top_pairs`` / ``correlated_with`` plus the
  classic ``frequent_pairs`` / ``frequent_extents`` /
  ``pair_frequencies`` surface the service layers already consume;
* **accounting** -- ``memory_bytes`` prices the backend with the
  Section IV-C1 native-layout model (:mod:`repro.core.memory_model`),
  giving the Pareto benchmark its memory axis;
* **persistence** -- ``serialize`` / ``deserialize`` round-trip the
  learned state byte-exactly (checkpoint v4 wraps each shard's payload
  in a CRC envelope).

:class:`BackendBase` implements the shared plumbing (transaction
decomposition, columnar decoding, counters, service-compat stubs) so a
concrete backend only supplies the two updates, the queries over its own
structure, and its state codec.
"""

from __future__ import annotations

from typing import (
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

try:  # Protocol is 3.8+; runtime_checkable keeps isinstance() working.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8 fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from ...core.analyzer import AnalyzerReport
from ...core.config import AnalyzerConfig
from ...core.extent import Extent, ExtentInterner, ExtentPair, unique_pairs
from ...core.two_tier import TableStats
from ...core.typed import CorrelationKind, TypeTally


@runtime_checkable
class SynopsisBackend(Protocol):
    """What a hosting engine requires of a synopsis representation."""

    def process_transaction(self, transaction) -> None:
        """Characterize one transaction (monitor object or extent list)."""
        ...

    def process_transaction_batch(self, batch, *,
                                  parallel: bool = False) -> int:
        """Characterize one columnar batch; returns transactions seen."""
        ...

    def top_pairs(self, k: int = 100, min_support: int = 1
                  ) -> List[Tuple[ExtentPair, int]]:
        """The ``k`` strongest correlated pairs, best first."""
        ...

    def correlated_with(self, extent: Extent, k: int = 16
                        ) -> List[Tuple[Extent, int]]:
        """Partners most correlated with ``extent``, best first."""
        ...

    def frequent_pairs(self, min_support: int = 2
                       ) -> List[Tuple[ExtentPair, int]]:
        ...

    def frequent_extents(self, min_support: int = 2
                         ) -> List[Tuple[Extent, int]]:
        ...

    def pair_frequencies(self) -> Dict[ExtentPair, int]:
        ...

    def memory_bytes(self) -> int:
        """Native-representation footprint (Section IV-C1 pricing)."""
        ...

    def serialize(self) -> bytes:
        """The backend's learned state as an opaque payload."""
        ...

    def reset(self) -> None:
        ...


class BackendBase:
    """Shared plumbing for concrete synopsis backends.

    Subclasses implement :meth:`update_item` / :meth:`update_pair` (the
    routed primitives), the query methods over their own structure, and
    the :meth:`serialize` / :meth:`deserialize` codec.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(self, config: Optional[AnalyzerConfig] = None) -> None:
        self.config = config or AnalyzerConfig()
        self._interner = ExtentInterner()
        self._transactions = 0
        self._extents_seen = 0
        self._pairs_seen = 0

    # -- primitive updates (hosts call these after routing) ----------------

    def update_item(self, extent: Extent) -> Optional[Extent]:
        """Record one item access; returns an extent whose pairs must be
        demoted everywhere (two-tier eviction coupling), else ``None``."""
        raise NotImplementedError

    def update_pair(self, pair: ExtentPair) -> None:
        """Record one co-access of a canonical extent pair."""
        raise NotImplementedError

    def demote_item(self, extent: Extent) -> None:
        """Apply a cross-shard eviction demotion; sketches ignore it."""

    # -- standalone ingest -------------------------------------------------

    def process(self, extents: Sequence[Extent]) -> None:
        """Characterize one transaction given as bare extents."""
        distinct = sorted(set(extents))
        self._transactions += 1
        self._extents_seen += len(distinct)
        for extent in distinct:
            self.update_item(extent)
        pairs = unique_pairs(distinct)
        self._pairs_seen += len(pairs)
        for pair in pairs:
            self.update_pair(pair)

    def process_transaction(self, transaction) -> None:
        events = getattr(transaction, "events", None)
        if events is not None:
            self.process([event.extent for event in events])
        else:
            self.process(transaction)

    def process_transaction_batch(self, batch, *,
                                  parallel: bool = False) -> int:
        """Characterize a columnar :class:`TransactionBatch` (rows are
        already deduplicated per transaction by the monitor)."""
        starts = batch.starts.tolist()
        lengths = batch.lengths.tolist()
        offsets = batch.offsets.tolist()
        intern_extent = self._interner.extent
        intern_pair = self._interner.pair
        count = len(offsets) - 1
        for t in range(count):
            lo = offsets[t]
            hi = offsets[t + 1]
            extents = [intern_extent(starts[k], lengths[k])
                       for k in range(lo, hi)]
            m = hi - lo
            self._extents_seen += m
            for extent in extents:
                self.update_item(extent)
            if m > 1:
                self._pairs_seen += m * (m - 1) // 2
                for i in range(m - 1):
                    a = extents[i]
                    for j in range(i + 1, m):
                        self.update_pair(intern_pair(a, extents[j]))
        self._transactions += count
        return count

    def apply_shard_work(
        self,
        item_starts,
        item_lengths,
        a_starts,
        a_lengths,
        b_starts,
        b_lengths,
        mixes,
    ) -> List[Tuple[int, int]]:
        """Apply one shard's pre-routed columnar work (the procshard wire
        format).  Returns item evictions as ``(start, length)`` rows for
        cross-shard demotion -- always empty for sketch backends."""
        intern_extent = self._interner.extent
        intern_pair = self._interner.pair
        update_item = self.update_item
        update_pair = self.update_pair
        evicted_out: List[Tuple[int, int]] = []
        for start, length in zip(item_starts.tolist(),
                                 item_lengths.tolist()):
            evicted = update_item(intern_extent(start, length))
            if evicted is not None:
                evicted_out.append((evicted.start, evicted.length))
        self._extents_seen += len(item_starts)
        for a_start, a_length, b_start, b_length in zip(
                a_starts.tolist(), a_lengths.tolist(),
                b_starts.tolist(), b_lengths.tolist()):
            update_pair(intern_pair(intern_extent(a_start, a_length),
                                    intern_extent(b_start, b_length)))
        self._pairs_seen += len(a_starts)
        return evicted_out

    # -- queries -----------------------------------------------------------

    def top_pairs(self, k: int = 100, min_support: int = 1
                  ) -> List[Tuple[ExtentPair, int]]:
        return self.frequent_pairs(min_support)[:k]

    def correlated_with(self, extent: Extent, k: int = 16
                        ) -> List[Tuple[Extent, int]]:
        partners: Dict[Extent, int] = {}
        for pair, count in self.pair_frequencies().items():
            if pair.first == extent:
                other = pair.second
            elif pair.second == extent:
                other = pair.first
            else:
                continue
            if count > partners.get(other, 0):
                partners[other] = count
        ranked = sorted(partners.items(),
                        key=lambda entry: (-entry[1], entry[0]))
        return ranked[:k]

    def frequent_pairs(self, min_support: int = 2
                       ) -> List[Tuple[ExtentPair, int]]:
        raise NotImplementedError

    def frequent_extents(self, min_support: int = 2
                         ) -> List[Tuple[Extent, int]]:
        raise NotImplementedError

    def pair_frequencies(self) -> Dict[ExtentPair, int]:
        raise NotImplementedError

    # -- service-compat stubs (typed queries need the two-tier sidecar) ----

    def frequent_pairs_of_kind(self, kind: CorrelationKind,
                               min_support: int = 2, purity: float = 0.5
                               ) -> List[Tuple[ExtentPair, int]]:
        return []

    def kind_summary(self) -> Dict[CorrelationKind, int]:
        return {kind: 0 for kind in CorrelationKind}

    def type_tally(self, pair: ExtentPair) -> Optional[TypeTally]:
        return None

    # -- accounting and lifecycle ------------------------------------------

    def memory_bytes(self) -> int:
        raise NotImplementedError

    def occupancy(self) -> Tuple[int, int]:
        """Resident ``(items, pairs)`` tracked right now (diagnostics)."""
        raise NotImplementedError

    def report(self) -> AnalyzerReport:
        return AnalyzerReport(
            transactions=self._transactions,
            extents_seen=self._extents_seen,
            pairs_seen=self._pairs_seen,
            item_stats=TableStats(),
            correlation_stats=TableStats(),
        )

    def merge(self, other: "BackendBase") -> None:
        """Fold another instance's state into this one (shard collapse)."""
        raise NotImplementedError

    def serialize(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def deserialize(cls, payload: bytes,
                    config: Optional[AnalyzerConfig] = None
                    ) -> "BackendBase":
        raise NotImplementedError

    def reset(self) -> None:
        self._transactions = 0
        self._extents_seen = 0
        self._pairs_seen = 0

    # -- shared codec helpers ----------------------------------------------

    def _counters(self) -> List[int]:
        return [self._transactions, self._extents_seen, self._pairs_seen]

    def _restore_counters(self, counters: Sequence[int]) -> None:
        (self._transactions, self._extents_seen,
         self._pairs_seen) = counters
