"""Correlated Heavy Hitters: nested Misra-Gries over item->partner streams.

Lahiri, Tirthapura & Woodruff's CHH summary answers "which pairs (x, y)
are frequent, where x is a frequent item and y is frequent *given* x"
with two nested Misra-Gries levels: an **outer** summary tracks the heavy
primary items of the stream, and each tracked item owns an **inner**
summary of its co-accessed partners.  When the outer level evicts an
item, its inner summary is dropped wholesale -- the nested structure
keeps total space at ``outer * (1 + partners)`` counters regardless of
how many distinct pairs the stream contains.

Both levels here are :class:`~repro.core.sketches.SpaceSaving` instances
whose lazy min-heap update is exactly the Epicoco, Cafaro & Pulimeno
*fast variant* of CHH: instead of scanning all counters for the minimum
on every eviction (the textbook Misra-Gries step), the O(log k) heap pop
finds it, which is what makes the nested update affordable on the hot
path.

Mapping onto this repo's stream: every canonical co-access pair (a, b)
updates the summary in **both directions** (a as primary with partner b,
and b as primary with partner a), so a pair's estimate can be recovered
from either endpoint that survived in the outer summary.  Feeding the
outer level from the pair stream (rather than the item stream) keeps a
shard's outer and inner levels consistent under pair-hash routing.
A separate item-level Space-Saving summary answers ``frequent_extents``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from ...core.config import AnalyzerConfig
from ...core.extent import Extent, ExtentPair, pair_of_ordered
from ...core.memory_model import chh_backend_bytes
from ...core.sketches import SpaceSaving
from .base import BackendBase


def _dump_entries(summary: SpaceSaving) -> List[List[int]]:
    return [[key.start, key.length, count, error]
            for key, count, error in summary.entries()]


def _load_entries(summary: SpaceSaving, rows: Iterable[List[int]],
                  total: int, intern_extent) -> None:
    summary.restore_entries(
        [(intern_extent(start, length), count, error)
         for start, length, count, error in rows],
        total=total,
    )


class CHHBackend(BackendBase):
    """The nested Misra-Gries correlated-heavy-hitters backend."""

    name = "chh"

    def __init__(self, config: Optional[AnalyzerConfig] = None) -> None:
        super().__init__(config)
        items, partners = self.config.chh_dimensions()
        self._outer_capacity = items
        self._partner_capacity = partners
        self._outer: SpaceSaving = SpaceSaving(items)
        self._inners: Dict[Extent, SpaceSaving] = {}
        self._items: SpaceSaving = SpaceSaving(items)

    # -- primitive updates -------------------------------------------------

    def update_item(self, extent: Extent) -> None:
        self._items.update(extent)
        return None

    def update_pair(self, pair: ExtentPair) -> None:
        self._update_direction(pair.first, pair.second)
        self._update_direction(pair.second, pair.first)

    def _update_direction(self, item: Extent, partner: Extent) -> None:
        evicted = self._outer.update(item)
        if evicted is not None:
            # The fast-variant eviction: the displaced item's whole inner
            # summary goes with it (nested Misra-Gries space bound).
            self._inners.pop(evicted, None)
        inner = self._inners.get(item)
        if inner is None:
            inner = self._inners[item] = SpaceSaving(
                self._partner_capacity
            )
        inner.update(partner)

    # -- queries -----------------------------------------------------------

    def _pair_estimates(self, min_support: int = 1
                        ) -> Dict[ExtentPair, int]:
        """Canonical pair -> estimate, taking the better-surviving
        direction (an inner summary may have been dropped and re-grown)."""
        best: Dict[ExtentPair, int] = {}
        for item, inner in self._inners.items():
            for partner, count, _error in inner.entries():
                if count < min_support or item == partner:
                    continue
                pair = (pair_of_ordered(item, partner) if item < partner
                        else pair_of_ordered(partner, item))
                if count > best.get(pair, 0):
                    best[pair] = count
        return best

    def top_pairs(self, k: int = 100, min_support: int = 1
                  ) -> List[Tuple[ExtentPair, int]]:
        ranked = sorted(self._pair_estimates(min_support).items(),
                        key=lambda entry: (-entry[1], entry[0]))
        return ranked[:k]

    def frequent_pairs(self, min_support: int = 2
                       ) -> List[Tuple[ExtentPair, int]]:
        return sorted(self._pair_estimates(min_support).items(),
                      key=lambda entry: (-entry[1], entry[0]))

    def pair_frequencies(self) -> Dict[ExtentPair, int]:
        return self._pair_estimates(1)

    def correlated_with(self, extent: Extent, k: int = 16
                        ) -> List[Tuple[Extent, int]]:
        partners: Dict[Extent, int] = {}
        inner = self._inners.get(extent)
        if inner is not None:
            for partner, count, _error in inner.entries():
                partners[partner] = count
        # The reverse direction may have survived where the forward
        # inner summary was dropped.
        for item, other in self._inners.items():
            count = other.count(extent)
            if count > partners.get(item, 0):
                partners[item] = count
        ranked = sorted(partners.items(),
                        key=lambda entry: (-entry[1], entry[0]))
        return ranked[:k]

    def frequent_extents(self, min_support: int = 2
                         ) -> List[Tuple[Extent, int]]:
        ranked = self._items.frequent(min_support)
        ranked.sort(key=lambda entry: (-entry[1], entry[0]))
        return ranked

    # -- accounting and lifecycle ------------------------------------------

    def memory_bytes(self) -> int:
        return chh_backend_bytes(self._outer_capacity,
                                 self._partner_capacity)

    def occupancy(self) -> Tuple[int, int]:
        return (len(self._items),
                sum(len(inner) for inner in self._inners.values()))

    def merge(self, other: "CHHBackend") -> None:
        """Fold ``other``'s summaries in (approximate: counts re-inserted
        through the Misra-Gries update, so the merged summary keeps the
        overestimate guarantees of a summary built from the concatenated
        streams)."""
        for key, count, _error in other._outer.entries():
            evicted = self._outer.update(key, count)
            if evicted is not None:
                self._inners.pop(evicted, None)
        for item, inner in other._inners.items():
            if item not in self._outer:
                continue
            mine = self._inners.get(item)
            if mine is None:
                mine = self._inners[item] = SpaceSaving(
                    self._partner_capacity
                )
            for partner, count, _error in inner.entries():
                mine.update(partner, count)
        for key, count, _error in other._items.entries():
            self._items.update(key, count)
        self._transactions += other._transactions
        self._extents_seen += other._extents_seen
        self._pairs_seen += other._pairs_seen

    def serialize(self) -> bytes:
        state = {
            "counters": self._counters(),
            "outer": _dump_entries(self._outer),
            "outer_total": self._outer.total,
            "items": _dump_entries(self._items),
            "items_total": self._items.total,
            "inner": [
                [item.start, item.length, _dump_entries(inner), inner.total]
                for item, inner in self._inners.items()
            ],
        }
        return json.dumps(state, separators=(",", ":")).encode("utf-8")

    @classmethod
    def deserialize(cls, payload: bytes,
                    config: Optional[AnalyzerConfig] = None
                    ) -> "CHHBackend":
        state = json.loads(payload.decode("utf-8"))
        backend = cls(config)
        intern = backend._interner.extent
        backend._restore_counters(state["counters"])
        _load_entries(backend._outer, state["outer"],
                      state["outer_total"], intern)
        _load_entries(backend._items, state["items"],
                      state["items_total"], intern)
        for start, length, rows, total in state["inner"]:
            inner = SpaceSaving(backend._partner_capacity)
            _load_entries(inner, rows, total, intern)
            backend._inners[intern(start, length)] = inner
        return backend

    def reset(self) -> None:
        super().reset()
        self._outer = SpaceSaving(self._outer_capacity)
        self._inners = {}
        self._items = SpaceSaving(self._outer_capacity)
