"""Count-min pair sketch with a heavy-pair candidate heap.

Cormode & Muthukrishnan's count-min sketch gives a never-underestimating
frequency oracle over the full pair space in ``width x depth`` counters;
a sketch alone cannot *enumerate* its heavy keys, so -- following the
sketch-based correlation-recovery pattern of Cormode & Dark -- a bounded
candidate set tracks the pairs whose estimates were large when they were
last updated, and queries rank those candidates by their current sketch
estimate.  Recall is bounded by the candidate set (a heavy pair whose
estimate only grew large while it was outside the set can be missed);
precision is bounded by the sketch's collision overestimates.  Both knobs
(``cms_width``/``cms_depth`` and ``cms_candidates``) are priced by the
memory model, which is what the Pareto benchmark sweeps.

A small Space-Saving summary over the item stream answers
``frequent_extents``, mirroring the CHH backend.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ...core.config import AnalyzerConfig
from ...core.extent import Extent, ExtentPair
from ...core.memory_model import cms_backend_bytes
from ...core.sketches import CountMinParams, CountMinSketch, SpaceSaving
from .base import BackendBase
from .chh import _dump_entries, _load_entries


class CountMinPairBackend(BackendBase):
    """The count-min pair-sketch backend."""

    name = "cms"

    def __init__(self, config: Optional[AnalyzerConfig] = None) -> None:
        super().__init__(config)
        width, depth, candidates = self.config.cms_dimensions()
        self._params = CountMinParams(width=width, depth=depth)
        self._candidate_capacity = candidates
        self._sketch: CountMinSketch = CountMinSketch(
            self._params, track_top=candidates, conservative=True
        )
        self._items: SpaceSaving = SpaceSaving(candidates)

    # -- primitive updates -------------------------------------------------

    def update_item(self, extent: Extent) -> None:
        self._items.update(extent)
        return None

    def update_pair(self, pair: ExtentPair) -> None:
        self._sketch.update(pair)

    # -- queries -----------------------------------------------------------

    def estimate(self, pair: ExtentPair) -> int:
        """Point estimate for any pair (never underestimates)."""
        return self._sketch.count(pair)

    def top_pairs(self, k: int = 100, min_support: int = 1
                  ) -> List[Tuple[ExtentPair, int]]:
        ranked = self._sketch.heavy_hitters(min_support)
        ranked.sort(key=lambda entry: (-entry[1], entry[0]))
        return ranked[:k]

    def frequent_pairs(self, min_support: int = 2
                       ) -> List[Tuple[ExtentPair, int]]:
        ranked = self._sketch.heavy_hitters(min_support)
        ranked.sort(key=lambda entry: (-entry[1], entry[0]))
        return ranked

    def pair_frequencies(self) -> Dict[ExtentPair, int]:
        return dict(self._sketch.heavy_hitters(1))

    def frequent_extents(self, min_support: int = 2
                         ) -> List[Tuple[Extent, int]]:
        ranked = self._items.frequent(min_support)
        ranked.sort(key=lambda entry: (-entry[1], entry[0]))
        return ranked

    # -- accounting and lifecycle ------------------------------------------

    def memory_bytes(self) -> int:
        return cms_backend_bytes(self._params.width, self._params.depth,
                                 self._candidate_capacity)

    def occupancy(self) -> Tuple[int, int]:
        return len(self._items), len(self._sketch.candidates())

    def merge(self, other: "CountMinPairBackend") -> None:
        """Fold ``other`` in: counter arrays add element-wise (identical
        dimensions required -- the hashes must agree), candidate sets
        union and re-rank against the merged counters.  Addition stays an
        upper bound under conservative update: every cell a key touches
        holds at least that key's per-substream count, so the summed cell
        holds at least its total."""
        if other._params != self._params:
            raise ValueError(
                f"cannot merge count-min sketches of different dimensions: "
                f"{self._params} vs {other._params}"
            )
        mine = self._sketch.counter_rows()
        theirs = other._sketch.counter_rows()
        merged = [
            [a + b for a, b in zip(mine_row, their_row)]
            for mine_row, their_row in zip(mine, theirs)
        ]
        union = {key for key, _est in self._sketch.candidates()}
        union.update(key for key, _est in other._sketch.candidates())
        total = self._sketch.total + other._sketch.total
        self._sketch.restore_state(merged, total, [])
        reranked = sorted(
            ((key, self._sketch.count(key)) for key in union),
            key=lambda entry: -entry[1],
        )[: self._candidate_capacity]
        self._sketch.restore_state(merged, total, reranked)
        for key, count, _error in other._items.entries():
            self._items.update(key, count)
        self._transactions += other._transactions
        self._extents_seen += other._extents_seen
        self._pairs_seen += other._pairs_seen

    def serialize(self) -> bytes:
        state = {
            "counters": self._counters(),
            "rows": self._sketch.counter_rows(),
            "total": self._sketch.total,
            "candidates": [
                [pair.first.start, pair.first.length,
                 pair.second.start, pair.second.length, estimate]
                for pair, estimate in self._sketch.candidates()
            ],
            "items": _dump_entries(self._items),
            "items_total": self._items.total,
        }
        return json.dumps(state, separators=(",", ":")).encode("utf-8")

    @classmethod
    def deserialize(cls, payload: bytes,
                    config: Optional[AnalyzerConfig] = None
                    ) -> "CountMinPairBackend":
        state = json.loads(payload.decode("utf-8"))
        backend = cls(config)
        intern_extent = backend._interner.extent
        intern_pair = backend._interner.pair
        backend._restore_counters(state["counters"])
        backend._sketch.restore_state(
            state["rows"],
            state["total"],
            [
                (intern_pair(intern_extent(a_start, a_length),
                             intern_extent(b_start, b_length)), estimate)
                for a_start, a_length, b_start, b_length, estimate
                in state["candidates"]
            ],
        )
        _load_entries(backend._items, state["items"],
                      state["items_total"], intern_extent)
        return backend

    def reset(self) -> None:
        super().reset()
        self._sketch = CountMinSketch(
            self._params, track_top=self._candidate_capacity,
            conservative=True,
        )
        self._items = SpaceSaving(self._candidate_capacity)
