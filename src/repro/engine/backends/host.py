"""In-process host engine for sharded synopsis backends.

:class:`BackendEngine` is the backend-generic analogue of
:class:`~repro.engine.sharded.ShardedAnalyzer`: it hosts 1..N backend
instances, routes item rows by ``hash(extent) % N`` and pair rows by
``hash(pair) % N`` (the same partitioning scheme, so shard result sets
stay disjoint and cross-shard merge is a ranked union), forwards
two-tier eviction demotions across shards, and answers the full
``SynopsisEngine`` query surface the service/pipeline layers consume --
including the typed-kind stubs, so a sketch-backed service keeps its
``snapshot()`` shape.

Like the table engines, batched ingest can run thread-per-shard
(``parallel=True``): the batch is pre-routed, shards share no state
during the batch, and cross-shard demotions are deferred to the join.
The process-backed equivalent is
:class:`~repro.engine.procshard.ProcessShardedAnalyzer`, which hosts one
backend instance per worker process when the config selects a sketch
backend.

Telemetry: the engine publishes the standard engine flow counters plus
per-backend gauges (``repro_backend_memory_bytes`` and tracked-entry
occupancy) labelled with the backend name.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ...core.analyzer import AnalyzerReport
from ...core.config import AnalyzerConfig
from ...core.extent import Extent, ExtentInterner, ExtentPair, unique_pairs
from ...core.typed import CorrelationKind, TypeTally
from ...telemetry.metrics import MetricsRegistry, get_default_registry
from ..sharded import _merged_stats, shard_config
from . import create_backend
from .base import BackendBase


class BackendEngine:
    """1..N synopsis backend shards behind the engine interface."""

    def __init__(
        self,
        config: Optional[AnalyzerConfig] = None,
        shards: int = 1,
        registry: Optional[MetricsRegistry] = None,
        backends: Optional[Sequence[BackendBase]] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.config = config or AnalyzerConfig()
        self.backend_name = self.config.backend
        if backends is not None:
            if len(backends) != shards:
                raise ValueError(
                    f"got {len(backends)} backends for {shards} shards"
                )
            self._backends: List[BackendBase] = list(backends)
        else:
            per_shard = shard_config(self.config, shards)
            self._backends = [
                create_backend(self.backend_name, per_shard)
                for _ in range(shards)
            ]
        self.shards = shards
        self._transactions = 0
        self._extents_seen = 0
        self._pairs_seen = 0
        self._interner = ExtentInterner()
        self._bind_metrics(
            registry if registry is not None else get_default_registry()
        )

    @classmethod
    def from_backends(
        cls,
        backends: Sequence[BackendBase],
        config: Optional[AnalyzerConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> "BackendEngine":
        """Rebuild an engine around restored per-shard backends (the
        checkpoint v4 restore path)."""
        if not backends:
            raise ValueError("need at least one backend shard")
        if config is None:
            config = backends[0].config
        return cls(config, shards=len(backends), registry=registry,
                   backends=backends)

    # -- telemetry ----------------------------------------------------------

    def _bind_metrics(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        if not registry.enabled:
            return
        self._shards_gauge = registry.gauge(
            "repro_engine_shards", "Shard count of the synopsis engine"
        )
        self._memory_gauge = registry.gauge(
            "repro_backend_memory_bytes",
            "Modelled native bytes of the synopsis backend",
            labelnames=("backend",),
        )
        self._occupancy_gauge = registry.gauge(
            "repro_backend_tracked_entries",
            "Entries tracked by the backend right now",
            labelnames=("backend", "table"),
        )
        self._flow_counters = {
            name: registry.counter(f"repro_engine_{name}_total", help)
            for name, help in {
                "transactions": "Transactions characterized by the engine",
                "extents": "Distinct extents routed to shards",
                "pairs": "Extent pairs routed to shards",
            }.items()
        }
        registry.register_collector(self._collect_metrics)

    def rebind_metrics(self, registry: MetricsRegistry) -> None:
        """Re-home the engine's telemetry (restore path); no-op when
        already bound to ``registry``."""
        if registry is self.registry:
            return
        self._bind_metrics(registry)

    def _collect_metrics(self) -> None:
        self._shards_gauge.set(self.shards)
        self._memory_gauge.labels(backend=self.backend_name).set(
            self.memory_bytes()
        )
        items, pairs = 0, 0
        for backend in self._backends:
            shard_items, shard_pairs = backend.occupancy()
            items += shard_items
            pairs += shard_pairs
        self._occupancy_gauge.labels(
            backend=self.backend_name, table="items").set(items)
        self._occupancy_gauge.labels(
            backend=self.backend_name, table="pairs").set(pairs)
        self._flow_counters["transactions"].set_total(self._transactions)
        self._flow_counters["extents"].set_total(self._extents_seen)
        self._flow_counters["pairs"].set_total(self._pairs_seen)

    # -- routing -------------------------------------------------------------

    @property
    def shard_backends(self) -> List[BackendBase]:
        """The per-shard backends (checkpoint format v4 iterates these)."""
        return list(self._backends)

    def shard_of_extent(self, extent: Extent) -> int:
        return hash(extent) % self.shards

    def shard_of_pair(self, pair: ExtentPair) -> int:
        return hash(pair) % self.shards

    # -- ingestion -----------------------------------------------------------

    def process(self, extents: Sequence[Extent]) -> None:
        """Characterize one transaction given as bare extents."""
        backends = self._backends
        n = self.shards
        distinct = sorted(set(extents))
        self._transactions += 1
        self._extents_seen += len(distinct)
        for extent in distinct:
            evicted = backends[hash(extent) % n].update_item(extent)
            if evicted is not None:
                for index in range(n):
                    if index != hash(extent) % n:
                        backends[index].demote_item(evicted)
        pairs = unique_pairs(distinct)
        self._pairs_seen += len(pairs)
        for pair in pairs:
            backends[hash(pair) % n].update_pair(pair)

    def process_transaction(self, transaction) -> None:
        events = getattr(transaction, "events", None)
        if events is not None:
            self.process([event.extent for event in events])
        else:
            self.process(transaction)

    def process_batch(self, transactions, *, parallel: bool = False) -> int:
        count = 0
        for transaction in transactions:
            self.process_transaction(transaction)
            count += 1
        return count

    def process_transaction_batch(self, batch, *,
                                  parallel: bool = False) -> int:
        """Characterize a columnar batch; ``parallel=True`` pre-routes and
        runs thread-per-shard with demotions deferred to the join."""
        if parallel and self.shards > 1:
            return self._process_transaction_batch_parallel(batch)
        starts = batch.starts.tolist()
        lengths = batch.lengths.tolist()
        offsets = batch.offsets.tolist()
        backends = self._backends
        n = self.shards
        intern_extent = self._interner.extent
        intern_pair = self._interner.pair
        count = len(offsets) - 1
        extents_seen = 0
        pairs_seen = 0
        for t in range(count):
            lo = offsets[t]
            hi = offsets[t + 1]
            extents = [intern_extent(starts[k], lengths[k])
                       for k in range(lo, hi)]
            m = hi - lo
            extents_seen += m
            for extent in extents:
                owner = hash(extent) % n
                evicted = backends[owner].update_item(extent)
                if evicted is not None:
                    for index in range(n):
                        if index != owner:
                            backends[index].demote_item(evicted)
            if m > 1:
                pairs_seen += m * (m - 1) // 2
                for i in range(m - 1):
                    a = extents[i]
                    for j in range(i + 1, m):
                        pair = intern_pair(a, extents[j])
                        backends[hash(pair) % n].update_pair(pair)
        self._transactions += count
        self._extents_seen += extents_seen
        self._pairs_seen += pairs_seen
        return count

    def _process_transaction_batch_parallel(self, batch) -> int:
        starts = batch.starts.tolist()
        lengths = batch.lengths.tolist()
        offsets = batch.offsets.tolist()
        n = self.shards
        intern_extent = self._interner.extent
        intern_pair = self._interner.pair
        item_work: List[List[Extent]] = [[] for _ in range(n)]
        pair_work: List[List[ExtentPair]] = [[] for _ in range(n)]
        count = len(offsets) - 1
        extents_seen = 0
        pairs_seen = 0
        for t in range(count):
            lo = offsets[t]
            hi = offsets[t + 1]
            extents = [intern_extent(starts[k], lengths[k])
                       for k in range(lo, hi)]
            m = hi - lo
            extents_seen += m
            for extent in extents:
                item_work[hash(extent) % n].append(extent)
            if m > 1:
                pairs_seen += m * (m - 1) // 2
                for i in range(m - 1):
                    a = extents[i]
                    for j in range(i + 1, m):
                        pair = intern_pair(a, extents[j])
                        pair_work[hash(pair) % n].append(pair)
        backends = self._backends

        def shard_task(index: int) -> List[Extent]:
            backend = backends[index]
            evicted_out: List[Extent] = []
            for extent in item_work[index]:
                evicted = backend.update_item(extent)
                if evicted is not None:
                    evicted_out.append(evicted)
            for pair in pair_work[index]:
                backend.update_pair(pair)
            return evicted_out

        with ThreadPoolExecutor(max_workers=n) as pool:
            evicted_by_shard = list(pool.map(shard_task, range(n)))
        for origin, evicted in enumerate(evicted_by_shard):
            for key in evicted:
                for index in range(n):
                    if index != origin:
                        backends[index].demote_item(key)
        self._transactions += count
        self._extents_seen += extents_seen
        self._pairs_seen += pairs_seen
        return count

    # -- merged queries ------------------------------------------------------

    def frequent_pairs(self, min_support: int = 2
                       ) -> List[Tuple[ExtentPair, int]]:
        merged: List[Tuple[ExtentPair, int]] = []
        for backend in self._backends:
            merged.extend(backend.frequent_pairs(min_support))
        merged.sort(key=lambda entry: (-entry[1], entry[0]))
        return merged

    def top_pairs(self, k: int = 100, min_support: int = 1
                  ) -> List[Tuple[ExtentPair, int]]:
        merged: List[Tuple[ExtentPair, int]] = []
        for backend in self._backends:
            merged.extend(backend.top_pairs(k, min_support))
        merged.sort(key=lambda entry: (-entry[1], entry[0]))
        return merged[:k]

    def correlated_with(self, extent: Extent, k: int = 16
                        ) -> List[Tuple[Extent, int]]:
        best: Dict[Extent, int] = {}
        for backend in self._backends:
            for partner, count in backend.correlated_with(extent, k):
                if count > best.get(partner, 0):
                    best[partner] = count
        ranked = sorted(best.items(),
                        key=lambda entry: (-entry[1], entry[0]))
        return ranked[:k]

    def frequent_extents(self, min_support: int = 2
                         ) -> List[Tuple[Extent, int]]:
        merged: List[Tuple[Extent, int]] = []
        for backend in self._backends:
            merged.extend(backend.frequent_extents(min_support))
        merged.sort(key=lambda entry: (-entry[1], entry[0]))
        return merged

    def pair_frequencies(self) -> Dict[ExtentPair, int]:
        merged: Dict[ExtentPair, int] = {}
        for backend in self._backends:
            merged.update(backend.pair_frequencies())
        return merged

    def frequent_pairs_of_kind(self, kind: CorrelationKind,
                               min_support: int = 2, purity: float = 0.5
                               ) -> List[Tuple[ExtentPair, int]]:
        merged: List[Tuple[ExtentPair, int]] = []
        for backend in self._backends:
            merged.extend(
                backend.frequent_pairs_of_kind(kind, min_support, purity)
            )
        merged.sort(key=lambda entry: (-entry[1], entry[0]))
        return merged

    def kind_summary(self) -> Dict[CorrelationKind, int]:
        summary = {kind: 0 for kind in CorrelationKind}
        for backend in self._backends:
            for kind, value in backend.kind_summary().items():
                summary[kind] += value
        return summary

    def type_tally(self, pair: ExtentPair) -> Optional[TypeTally]:
        return self._backends[hash(pair) % self.shards].type_tally(pair)

    # -- reporting and lifecycle ---------------------------------------------

    def memory_bytes(self) -> int:
        return sum(backend.memory_bytes() for backend in self._backends)

    def shard_occupancy(self) -> List[Tuple[int, int]]:
        return [backend.occupancy() for backend in self._backends]

    def report(self) -> AnalyzerReport:
        reports = [backend.report() for backend in self._backends]
        return AnalyzerReport(
            transactions=self._transactions,
            extents_seen=self._extents_seen,
            pairs_seen=self._pairs_seen,
            item_stats=_merged_stats(r.item_stats for r in reports),
            correlation_stats=_merged_stats(
                r.correlation_stats for r in reports
            ),
        )

    def reset(self) -> None:
        for backend in self._backends:
            backend.reset()
        self._transactions = 0
        self._extents_seen = 0
        self._pairs_seen = 0
