"""The paper's two-tier tables wrapped as the reference backend.

This is the exact synopsis of Sections III-D/IV-C -- a
:class:`~repro.core.typed.TypedOnlineAnalyzer` with its item and
correlation LRU table pairs and the eviction-demotion coupling --
presented through the :class:`~.base.SynopsisBackend` surface so the
hosting layers and the Pareto benchmark can run it interchangeably with
the sketch backends.  It is the accuracy ceiling of the trio (explicit
pairs, recency-aware) and the memory floor nothing sublinear can match:
``88 C`` bytes at capacity ``C`` versus the sketches' fractions of that.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Optional, Tuple

from ...core.analyzer import AnalyzerReport
from ...core.config import AnalyzerConfig
from ...core.extent import Extent, ExtentPair
from ...core.memory_model import two_tier_backend_bytes
from ...core.serialize import dumps_analyzer, loads_analyzer
from ...core.typed import CorrelationKind, TypedOnlineAnalyzer, TypeTally
from .base import BackendBase

_U32 = struct.Struct("<I")


class TwoTierBackend(BackendBase):
    """Reference backend: the two-tier LRU item/correlation tables."""

    name = "two-tier"

    def __init__(self, config: Optional[AnalyzerConfig] = None,
                 analyzer: Optional[TypedOnlineAnalyzer] = None) -> None:
        super().__init__(config)
        if analyzer is not None:
            self.analyzer = analyzer
        else:
            from ...telemetry import NULL_REGISTRY
            self.analyzer = TypedOnlineAnalyzer(
                self.config, registry=NULL_REGISTRY
            )

    # -- primitive updates -------------------------------------------------

    def update_item(self, extent: Extent) -> Optional[Extent]:
        evicted = self.analyzer.items.access_fast(extent)
        if evicted is not None and self.config.demote_on_item_eviction:
            self.analyzer.correlations.demote_involving(evicted)
            return evicted
        return None

    def update_pair(self, pair: ExtentPair) -> None:
        evicted_pair = self.analyzer.correlations.access_fast(pair)
        if evicted_pair is not None:
            self.analyzer._types.pop(evicted_pair, None)

    def demote_item(self, extent: Extent) -> None:
        self.analyzer.correlations.demote_involving(extent)

    # -- standalone ingest (exact analyzer semantics, typed sidecar) -------

    def process(self, extents) -> None:
        self.analyzer.process(extents)

    def process_transaction(self, transaction) -> None:
        events = getattr(transaction, "events", None)
        if events is not None:
            self.analyzer.process_transaction(transaction)
        else:
            self.analyzer.process(transaction)

    def process_transaction_batch(self, batch, *,
                                  parallel: bool = False) -> int:
        return self.analyzer.process_transaction_batch(batch)

    # -- queries -----------------------------------------------------------

    def frequent_pairs(self, min_support: int = 2
                       ) -> List[Tuple[ExtentPair, int]]:
        return self.analyzer.frequent_pairs(min_support)

    def frequent_extents(self, min_support: int = 2
                         ) -> List[Tuple[Extent, int]]:
        return self.analyzer.frequent_extents(min_support)

    def pair_frequencies(self) -> Dict[ExtentPair, int]:
        return self.analyzer.pair_frequencies()

    def frequent_pairs_of_kind(self, kind: CorrelationKind,
                               min_support: int = 2, purity: float = 0.5
                               ) -> List[Tuple[ExtentPair, int]]:
        return self.analyzer.frequent_pairs_of_kind(
            kind, min_support, purity
        )

    def kind_summary(self) -> Dict[CorrelationKind, int]:
        return self.analyzer.kind_summary()

    def type_tally(self, pair: ExtentPair) -> Optional[TypeTally]:
        return self.analyzer.type_tally(pair)

    # -- accounting and lifecycle ------------------------------------------

    def memory_bytes(self) -> int:
        return two_tier_backend_bytes(self.config)

    def occupancy(self) -> Tuple[int, int]:
        return len(self.analyzer.items), len(self.analyzer.correlations)

    def report(self) -> AnalyzerReport:
        return self.analyzer.report()

    def merge(self, other: "TwoTierBackend") -> None:
        raise NotImplementedError(
            "two-tier tables have no well-defined LRU merge; "
            "query-time union across shards is the supported composition"
        )

    def serialize(self) -> bytes:
        """A v2 synopsis envelope framed with the side state it cannot
        carry (typed sidecar, table stats, flow counters), mirroring the
        procshard fetch wire form."""
        from ..procshard import _side_state

        blob = dumps_analyzer(self.analyzer)
        side = json.dumps(
            _side_state(self.analyzer), separators=(",", ":")
        ).encode("utf-8")
        return _U32.pack(len(blob)) + blob + side

    @classmethod
    def deserialize(cls, payload: bytes,
                    config: Optional[AnalyzerConfig] = None
                    ) -> "TwoTierBackend":
        from ...telemetry import NULL_REGISTRY
        from ..procshard import _restore_side_state

        (blob_len,) = _U32.unpack_from(payload)
        blob = payload[_U32.size:_U32.size + blob_len]
        side = json.loads(
            payload[_U32.size + blob_len:].decode("utf-8")
        )
        restored = loads_analyzer(blob)
        typed = TypedOnlineAnalyzer(restored.config, registry=NULL_REGISTRY)
        typed.adopt(restored)
        _restore_side_state(typed, side)
        # The engine-level config (with backend fields) wins over the one
        # reconstructed from the v2 header, which only carries capacities.
        return cls(config=config or restored.config, analyzer=typed)

    def reset(self) -> None:
        super().reset()
        self.analyzer.reset()
