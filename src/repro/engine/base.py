"""The synopsis engine protocol.

The analyzer (:mod:`repro.core.analyzer`) characterizes one transaction at
a time against one pair of synopsis tables.  Everything above it -- the
monitor's sinks, the characterization service, the pipeline, checkpointing
-- only needs a narrow contract: *feed transactions in, query frequent
extents and pairs out*.  :class:`SynopsisEngine` names that contract so the
upper layers can be generic over how the synopsis is physically organised:

* :class:`SingleAnalyzerEngine` wraps the existing single
  :class:`~repro.core.analyzer.OnlineAnalyzer` (or its typed subclass) with
  zero behaviour change;
* :class:`~repro.engine.sharded.ShardedAnalyzer` hash-partitions the
  synopsis across N independent shard table pairs and merges on query.

Both also accept whole *batches* of transactions via :meth:`process_batch`,
the entry point the batched ingest path
(:meth:`repro.service.CharacterizationService.submit_many`,
:meth:`repro.monitor.monitor.Monitor.on_events`) drives.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

try:  # Protocol is 3.8+; runtime_checkable keeps isinstance() working.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8 fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from ..core.analyzer import AnalyzerReport, OnlineAnalyzer
from ..core.config import AnalyzerConfig
from ..core.extent import Extent, ExtentPair
from ..core.typed import TypedOnlineAnalyzer

if TYPE_CHECKING:  # pragma: no cover
    from ..monitor.transaction import Transaction


@runtime_checkable
class SynopsisEngine(Protocol):
    """What the service/pipeline layers require of a synopsis backend.

    A transaction may be a monitor :class:`~repro.monitor.Transaction`
    (engines read ``.events`` for extents and R/W ops) or a bare sequence
    of :class:`~repro.core.extent.Extent` objects (untyped).
    """

    config: AnalyzerConfig

    def process(self, extents: Sequence[Extent]) -> None:
        """Characterize one transaction given as bare extents."""
        ...

    def process_transaction(self, transaction: "Transaction") -> None:
        """Characterize one monitor transaction (typed when possible)."""
        ...

    def process_batch(self, transactions: Iterable, *,
                      parallel: bool = False) -> int:
        """Characterize a whole batch; returns transactions processed."""
        ...

    def frequent_pairs(
        self, min_support: int = 2
    ) -> List[Tuple[ExtentPair, int]]:
        ...

    def frequent_extents(
        self, min_support: int = 2
    ) -> List[Tuple[Extent, int]]:
        ...

    def pair_frequencies(self) -> Dict[ExtentPair, int]:
        ...

    def report(self) -> AnalyzerReport:
        ...

    def reset(self) -> None:
        ...


def _dispatch_one(analyzer: OnlineAnalyzer, transaction) -> None:
    """Feed one transaction (monitor Transaction or extent sequence)."""
    events = getattr(transaction, "events", None)
    if events is not None:
        process_transaction = getattr(analyzer, "process_transaction", None)
        if process_transaction is not None:
            process_transaction(transaction)
            return
        analyzer.process([event.extent for event in events])
        return
    analyzer.process(transaction)


class SingleAnalyzerEngine:
    """The existing single-analyzer hot path, wrapped as an engine.

    Pure delegation: every operation behaves exactly as calling the wrapped
    analyzer directly, so existing results are reproduced bit-for-bit.  The
    wrapper only adds the :meth:`process_batch` entry point (a tight loop)
    and a uniform construction surface next to
    :class:`~repro.engine.sharded.ShardedAnalyzer`.
    """

    def __init__(
        self,
        config: Optional[AnalyzerConfig] = None,
        analyzer: Optional[OnlineAnalyzer] = None,
        typed: bool = True,
    ) -> None:
        if analyzer is not None:
            if config is not None:
                raise ValueError("pass either a config or an analyzer")
            self.analyzer = analyzer
        else:
            cls = TypedOnlineAnalyzer if typed else OnlineAnalyzer
            self.analyzer = cls(config or AnalyzerConfig())

    @property
    def config(self) -> AnalyzerConfig:
        return self.analyzer.config

    # -- ingestion ---------------------------------------------------------

    def process(self, extents: Sequence[Extent]) -> None:
        self.analyzer.process(extents)

    def process_transaction(self, transaction) -> None:
        _dispatch_one(self.analyzer, transaction)

    def process_batch(self, transactions: Iterable, *,
                      parallel: bool = False) -> int:
        # ``parallel`` is accepted for interface parity; a single synopsis
        # has no independent partitions to fan out over.
        count = 0
        analyzer = self.analyzer
        process_transaction = getattr(analyzer, "process_transaction", None)
        for transaction in transactions:
            if process_transaction is not None and hasattr(
                    transaction, "events"):
                process_transaction(transaction)
            else:
                _dispatch_one(analyzer, transaction)
            count += 1
        return count

    # -- queries -----------------------------------------------------------

    def frequent_pairs(self, min_support: int = 2):
        return self.analyzer.frequent_pairs(min_support)

    def frequent_extents(self, min_support: int = 2):
        return self.analyzer.frequent_extents(min_support)

    def pair_frequencies(self):
        return self.analyzer.pair_frequencies()

    def report(self) -> AnalyzerReport:
        return self.analyzer.report()

    def reset(self) -> None:
        self.analyzer.reset()
