"""Checkpoint formats v3/v4: per-shard integrity envelopes.

Format v2 (:mod:`repro.core.serialize`) protects one analyzer's synopsis
with a single CRC -- one flipped bit rejects the whole checkpoint.  A
sharded engine can do better: v3 frames N complete v2 envelopes, one per
shard, each carrying its own CRC::

    RTSHD\\x03 || u32 shard_count || { u32 blob_length || v2-envelope } * N

Corruption inside one shard's envelope is caught by *that shard's* CRC, so
a degraded restore (``strict=False``) replaces only the damaged shard with
a fresh synopsis and keeps every other shard's learned state -- one corrupt
shard degrades, not destroys, the synopsis.  Damage to the v3 framing
itself (magic, counts, lengths) still rejects the file, as the shard
boundaries can no longer be trusted.

Format v4 extends the same per-shard scheme to pluggable synopsis
backends (:mod:`repro.engine.backends`).  Backend payloads are opaque to
the framing, so each shard gets a uniform CRC envelope, and the header
names the backend and carries the engine-level configuration (the v2
header only knows table capacities)::

    RTBKD\\x04 || u8 name_len || name || u32 cfg_len || cfg_json
             || u32 shard_count || { u32 length || u32 crc32 || payload } * N

Degraded restore works identically: a shard whose CRC fails is replaced
with a *fresh* backend of the same kind at the same per-shard
configuration.

:func:`dump_engine` / :func:`load_engine` dispatch between v1/v2 single-
analyzer checkpoints, v3 sharded ones, and v4 backend engines by magic,
so services need a single pair of calls regardless of engine shape.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import struct
import zlib
from pathlib import Path
from typing import BinaryIO, List, NamedTuple, Union

from ..core.analyzer import OnlineAnalyzer
from ..core.config import AnalyzerConfig
from ..core.serialize import (
    CheckpointCorruptError,
    _run_pre_rename_hook,
    dump_analyzer,
    dumps_analyzer,
    load_analyzer,
    loads_analyzer,
)
from ..core.typed import TypedOnlineAnalyzer
from .sharded import ShardedAnalyzer, shard_config

_MAGIC_V3 = b"RTSHD\x03"
_MAGIC_V4 = b"RTBKD\x04"
_U32 = struct.Struct("<I")
_U8 = struct.Struct("<B")

#: Sanity bound on the shard count field; a corrupt count must not drive a
#: multi-gigabyte allocation loop.
MAX_SHARDS = 4096

PathOrStr = Union[str, Path]


class LoadedEngine(NamedTuple):
    """Result of :func:`load_engine`.

    ``engine`` is an :class:`OnlineAnalyzer` (v1/v2 checkpoints) or a
    :class:`ShardedAnalyzer` (v3); ``corrupt_shards`` lists shard indices
    that failed integrity checks and were restored fresh (always empty
    under ``strict=True``, which raises instead).
    """

    engine: object
    corrupt_shards: List[int]


def dump_sharded(engine, stream: BinaryIO) -> int:
    """Write a sharded engine as a v3 checkpoint; returns bytes written.

    Accepts anything exposing ``shard_analyzers`` -- the in-process
    :class:`ShardedAnalyzer` and the process-backed
    :class:`~repro.engine.procshard.ProcessShardedAnalyzer` (which
    materializes its workers' synopses for the duration of the dump).
    """
    written = stream.write(_MAGIC_V3)
    shards = engine.shard_analyzers
    written += stream.write(_U32.pack(len(shards)))
    for shard in shards:
        blob = dumps_analyzer(shard)
        written += stream.write(_U32.pack(len(blob)))
        written += stream.write(blob)
    return written


def _read_exact(stream: BinaryIO, size: int, what: str) -> bytes:
    chunk = stream.read(size)
    if len(chunk) != size:
        raise CheckpointCorruptError(f"truncated {what}")
    return chunk


def load_sharded(stream: BinaryIO, strict: bool = True) -> LoadedEngine:
    """Restore a v3 checkpoint written by :func:`dump_sharded`.

    Under ``strict=True`` any corruption raises
    :class:`CheckpointCorruptError`.  Under ``strict=False`` a shard whose
    envelope fails its CRC (or structure checks) is replaced with a fresh
    synopsis at the same per-shard configuration and its index reported in
    ``corrupt_shards``; framing-level corruption still raises.
    """
    magic = _read_exact(stream, len(_MAGIC_V3), "sharded checkpoint magic")
    if magic != _MAGIC_V3:
        raise CheckpointCorruptError(f"bad sharded synopsis magic: {magic!r}")
    (count,) = _U32.unpack(_read_exact(stream, _U32.size, "shard count"))
    if not 1 <= count <= MAX_SHARDS:
        raise CheckpointCorruptError(f"implausible shard count: {count}")

    blobs: List[bytes] = []
    for index in range(count):
        (length,) = _U32.unpack(
            _read_exact(stream, _U32.size, f"shard {index} length")
        )
        blobs.append(_read_exact(stream, length, f"shard {index} payload"))

    shards: List[object] = []
    corrupt: List[int] = []
    for index, blob in enumerate(blobs):
        try:
            shards.append(loads_analyzer(blob))
        except CheckpointCorruptError:
            if strict:
                raise
            corrupt.append(index)
            shards.append(None)

    if len(corrupt) == count:
        raise CheckpointCorruptError(
            f"all {count} shards corrupt; nothing to restore"
        )
    template = next(shard for shard in shards if shard is not None)
    for index in corrupt:
        shards[index] = OnlineAnalyzer(template.config)

    engine = ShardedAnalyzer.from_shards(shards)
    return LoadedEngine(engine, corrupt)


# ---------------------------------------------------------------------------
# Format v4: backend-tagged engines
# ---------------------------------------------------------------------------

def dump_backend_engine(engine, stream: BinaryIO) -> int:
    """Write a backend-hosting engine as a v4 checkpoint.

    Accepts anything exposing ``backend_name``, ``config`` and
    ``shard_backends`` -- the in-process
    :class:`~repro.engine.backends.host.BackendEngine` and the
    process-backed :class:`~repro.engine.procshard.ProcessShardedAnalyzer`
    in backend mode (whose ``shard_backends`` materializes the workers'
    state for the duration of the dump).
    """
    name = engine.backend_name.encode("utf-8")
    if not 1 <= len(name) <= 255:
        raise ValueError(f"implausible backend name: {engine.backend_name!r}")
    header = dict(dataclasses.asdict(engine.config))
    # Engine-level flow counters ride in the header (the per-shard
    # payloads only know their own slice of the stream).
    header["__counters__"] = [
        getattr(engine, "_transactions", 0),
        getattr(engine, "_extents_seen", 0),
        getattr(engine, "_pairs_seen", 0),
    ]
    cfg_json = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    written = stream.write(_MAGIC_V4)
    written += stream.write(_U8.pack(len(name)))
    written += stream.write(name)
    written += stream.write(_U32.pack(len(cfg_json)))
    written += stream.write(cfg_json)
    backends = engine.shard_backends
    written += stream.write(_U32.pack(len(backends)))
    for backend in backends:
        payload = backend.serialize()
        written += stream.write(_U32.pack(len(payload)))
        written += stream.write(_U32.pack(zlib.crc32(payload) & 0xFFFFFFFF))
        written += stream.write(payload)
    return written


def _load_config_json(raw: bytes):
    """Parse the v4 header JSON into ``(AnalyzerConfig, flow_counters)``."""
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(f"bad engine config JSON: {exc}")
    if not isinstance(data, dict):
        raise CheckpointCorruptError("engine config JSON is not an object")
    counters = data.get("__counters__", [0, 0, 0])
    if (not isinstance(counters, list) or len(counters) != 3
            or not all(isinstance(value, int) and value >= 0
                       for value in counters)):
        raise CheckpointCorruptError("bad engine flow counters")
    known = {field.name for field in dataclasses.fields(AnalyzerConfig)}
    try:
        config = AnalyzerConfig(
            **{key: value for key, value in data.items() if key in known}
        )
    except (TypeError, ValueError) as exc:
        raise CheckpointCorruptError(f"bad engine config: {exc}")
    return config, counters


def load_backend_engine(stream: BinaryIO, strict: bool = True) -> LoadedEngine:
    """Restore a v4 checkpoint written by :func:`dump_backend_engine`.

    Returns a :class:`~repro.engine.backends.host.BackendEngine`.  Under
    ``strict=False`` a shard whose payload fails its CRC (or whose codec
    rejects it) is replaced with a fresh backend of the same kind at the
    same per-shard configuration; framing corruption still raises.
    """
    from .backends import create_backend, deserialize_backend

    magic = _read_exact(stream, len(_MAGIC_V4), "backend checkpoint magic")
    if magic != _MAGIC_V4:
        raise CheckpointCorruptError(f"bad backend synopsis magic: {magic!r}")
    (name_len,) = _U8.unpack(_read_exact(stream, 1, "backend name length"))
    if name_len == 0:
        raise CheckpointCorruptError("empty backend name")
    try:
        name = _read_exact(stream, name_len, "backend name").decode("utf-8")
    except UnicodeDecodeError:
        raise CheckpointCorruptError("undecodable backend name")
    (cfg_len,) = _U32.unpack(_read_exact(stream, _U32.size, "config length"))
    config, counters = _load_config_json(
        _read_exact(stream, cfg_len, "engine config")
    )
    if config.backend != name:
        raise CheckpointCorruptError(
            f"backend name mismatch: header says {name!r}, "
            f"config says {config.backend!r}"
        )
    (count,) = _U32.unpack(_read_exact(stream, _U32.size, "shard count"))
    if not 1 <= count <= MAX_SHARDS:
        raise CheckpointCorruptError(f"implausible shard count: {count}")

    framed: List[tuple] = []
    for index in range(count):
        (length,) = _U32.unpack(
            _read_exact(stream, _U32.size, f"shard {index} length")
        )
        (crc,) = _U32.unpack(
            _read_exact(stream, _U32.size, f"shard {index} crc")
        )
        framed.append(
            (crc, _read_exact(stream, length, f"shard {index} payload"))
        )

    per_shard = shard_config(config, count)
    backends: List[object] = []
    corrupt: List[int] = []
    for index, (crc, payload) in enumerate(framed):
        try:
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                raise CheckpointCorruptError(
                    f"shard {index} payload CRC mismatch"
                )
            backends.append(deserialize_backend(name, payload, per_shard))
        except CheckpointCorruptError:
            if strict:
                raise
            corrupt.append(index)
            backends.append(None)
        except (ValueError, KeyError, TypeError, struct.error) as exc:
            # The payload passed its CRC but the backend codec rejected
            # it -- same corruption class, same degraded-restore policy.
            if strict:
                raise CheckpointCorruptError(
                    f"shard {index} payload undecodable: {exc}"
                )
            corrupt.append(index)
            backends.append(None)

    if len(corrupt) == count:
        raise CheckpointCorruptError(
            f"all {count} shards corrupt; nothing to restore"
        )
    for index in corrupt:
        backends[index] = create_backend(name, per_shard)

    from .backends.host import BackendEngine

    engine = BackendEngine.from_backends(backends, config=config)
    (engine._transactions, engine._extents_seen,
     engine._pairs_seen) = counters
    return LoadedEngine(engine, corrupt)


# ---------------------------------------------------------------------------
# Format-dispatching entry points
# ---------------------------------------------------------------------------

def dump_engine(engine, stream: BinaryIO) -> int:
    """Checkpoint any engine: v4 for backend hosts (dispatched on the
    ``shard_backends`` seam), v3 for sharded two-tier (thread- or
    process-backed, the ``shard_analyzers`` seam), v2 for a single
    analyzer.

    :class:`~repro.engine.procshard.ProcessShardedAnalyzer` exposes
    *both* seams but raises :class:`AttributeError` from the one that
    does not match its mode, which makes ``hasattr`` select correctly.
    """
    if hasattr(engine, "shard_backends"):
        return dump_backend_engine(engine, stream)
    if hasattr(engine, "shard_analyzers"):
        return dump_sharded(engine, stream)
    analyzer = getattr(engine, "analyzer", engine)
    return dump_analyzer(analyzer, stream)


def load_engine(stream: BinaryIO, strict: bool = True) -> LoadedEngine:
    """Restore a checkpoint of any format, dispatching on its magic."""
    prefix = stream.read(len(_MAGIC_V3))
    if prefix == _MAGIC_V3:
        body = io.BytesIO(prefix + stream.read())
        return load_sharded(body, strict=strict)
    if prefix == _MAGIC_V4:
        body = io.BytesIO(prefix + stream.read())
        return load_backend_engine(body, strict=strict)
    rest = io.BytesIO(prefix + stream.read())
    return LoadedEngine(load_analyzer(rest), [])


def save_engine_checkpoint(engine, path: PathOrStr) -> int:
    """Atomically write an engine checkpoint file (temp + fsync + rename)."""
    path = Path(path)
    tmp_path = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp_path, "wb") as stream:
            written = dump_engine(engine, stream)
            stream.flush()
            os.fsync(stream.fileno())
        _run_pre_rename_hook(tmp_path, path)
        os.replace(tmp_path, path)
    finally:
        if tmp_path.exists():
            tmp_path.unlink()
    return written


def load_engine_checkpoint(path: PathOrStr, strict: bool = True) -> LoadedEngine:
    """Load and integrity-check an engine checkpoint file."""
    with open(path, "rb") as stream:
        return load_engine(stream, strict=strict)


def as_typed_engine(loaded: LoadedEngine):
    """Promote a loaded engine to the service's typed analyzer shape.

    v3 checkpoints restore straight to a (typed-capable)
    :class:`ShardedAnalyzer` and v4 ones to a
    :class:`~repro.engine.backends.host.BackendEngine` (which already
    answers the typed query surface, with stubs for sketch backends) --
    both pass through unchanged.  v1/v2 plain analyzers are adopted into
    a fresh :class:`TypedOnlineAnalyzer` (the sidecar rebuilds from
    future traffic, as with format v2).
    """
    from .backends.host import BackendEngine

    engine = loaded.engine
    if isinstance(engine, (ShardedAnalyzer, BackendEngine)):
        return engine
    typed = TypedOnlineAnalyzer(engine.config)
    typed.adopt(engine)
    return typed
