"""Checkpoint format v3: per-shard integrity envelopes.

Format v2 (:mod:`repro.core.serialize`) protects one analyzer's synopsis
with a single CRC -- one flipped bit rejects the whole checkpoint.  A
sharded engine can do better: v3 frames N complete v2 envelopes, one per
shard, each carrying its own CRC::

    RTSHD\\x03 || u32 shard_count || { u32 blob_length || v2-envelope } * N

Corruption inside one shard's envelope is caught by *that shard's* CRC, so
a degraded restore (``strict=False``) replaces only the damaged shard with
a fresh synopsis and keeps every other shard's learned state -- one corrupt
shard degrades, not destroys, the synopsis.  Damage to the v3 framing
itself (magic, counts, lengths) still rejects the file, as the shard
boundaries can no longer be trusted.

:func:`dump_engine` / :func:`load_engine` dispatch between v1/v2 single-
analyzer checkpoints and v3 sharded ones by magic, so services need a
single pair of calls regardless of engine shape.
"""

from __future__ import annotations

import io
import os
import struct
from pathlib import Path
from typing import BinaryIO, List, NamedTuple, Union

from ..core.analyzer import OnlineAnalyzer
from ..core.serialize import (
    CheckpointCorruptError,
    _run_pre_rename_hook,
    dump_analyzer,
    dumps_analyzer,
    load_analyzer,
    loads_analyzer,
)
from ..core.typed import TypedOnlineAnalyzer
from .sharded import ShardedAnalyzer

_MAGIC_V3 = b"RTSHD\x03"
_U32 = struct.Struct("<I")

#: Sanity bound on the shard count field; a corrupt count must not drive a
#: multi-gigabyte allocation loop.
MAX_SHARDS = 4096

PathOrStr = Union[str, Path]


class LoadedEngine(NamedTuple):
    """Result of :func:`load_engine`.

    ``engine`` is an :class:`OnlineAnalyzer` (v1/v2 checkpoints) or a
    :class:`ShardedAnalyzer` (v3); ``corrupt_shards`` lists shard indices
    that failed integrity checks and were restored fresh (always empty
    under ``strict=True``, which raises instead).
    """

    engine: object
    corrupt_shards: List[int]


def dump_sharded(engine, stream: BinaryIO) -> int:
    """Write a sharded engine as a v3 checkpoint; returns bytes written.

    Accepts anything exposing ``shard_analyzers`` -- the in-process
    :class:`ShardedAnalyzer` and the process-backed
    :class:`~repro.engine.procshard.ProcessShardedAnalyzer` (which
    materializes its workers' synopses for the duration of the dump).
    """
    written = stream.write(_MAGIC_V3)
    shards = engine.shard_analyzers
    written += stream.write(_U32.pack(len(shards)))
    for shard in shards:
        blob = dumps_analyzer(shard)
        written += stream.write(_U32.pack(len(blob)))
        written += stream.write(blob)
    return written


def _read_exact(stream: BinaryIO, size: int, what: str) -> bytes:
    chunk = stream.read(size)
    if len(chunk) != size:
        raise CheckpointCorruptError(f"truncated {what}")
    return chunk


def load_sharded(stream: BinaryIO, strict: bool = True) -> LoadedEngine:
    """Restore a v3 checkpoint written by :func:`dump_sharded`.

    Under ``strict=True`` any corruption raises
    :class:`CheckpointCorruptError`.  Under ``strict=False`` a shard whose
    envelope fails its CRC (or structure checks) is replaced with a fresh
    synopsis at the same per-shard configuration and its index reported in
    ``corrupt_shards``; framing-level corruption still raises.
    """
    magic = _read_exact(stream, len(_MAGIC_V3), "sharded checkpoint magic")
    if magic != _MAGIC_V3:
        raise CheckpointCorruptError(f"bad sharded synopsis magic: {magic!r}")
    (count,) = _U32.unpack(_read_exact(stream, _U32.size, "shard count"))
    if not 1 <= count <= MAX_SHARDS:
        raise CheckpointCorruptError(f"implausible shard count: {count}")

    blobs: List[bytes] = []
    for index in range(count):
        (length,) = _U32.unpack(
            _read_exact(stream, _U32.size, f"shard {index} length")
        )
        blobs.append(_read_exact(stream, length, f"shard {index} payload"))

    shards: List[object] = []
    corrupt: List[int] = []
    for index, blob in enumerate(blobs):
        try:
            shards.append(loads_analyzer(blob))
        except CheckpointCorruptError:
            if strict:
                raise
            corrupt.append(index)
            shards.append(None)

    if len(corrupt) == count:
        raise CheckpointCorruptError(
            f"all {count} shards corrupt; nothing to restore"
        )
    template = next(shard for shard in shards if shard is not None)
    for index in corrupt:
        shards[index] = OnlineAnalyzer(template.config)

    engine = ShardedAnalyzer.from_shards(shards)
    return LoadedEngine(engine, corrupt)


# ---------------------------------------------------------------------------
# Format-dispatching entry points
# ---------------------------------------------------------------------------

def dump_engine(engine, stream: BinaryIO) -> int:
    """Checkpoint any engine: v3 for sharded (thread- or process-backed,
    dispatched on the ``shard_analyzers`` seam), v2 for a single analyzer."""
    if hasattr(engine, "shard_analyzers"):
        return dump_sharded(engine, stream)
    analyzer = getattr(engine, "analyzer", engine)
    return dump_analyzer(analyzer, stream)


def load_engine(stream: BinaryIO, strict: bool = True) -> LoadedEngine:
    """Restore a checkpoint of either format, dispatching on its magic."""
    prefix = stream.read(len(_MAGIC_V3))
    if prefix == _MAGIC_V3:
        body = io.BytesIO(prefix + stream.read())
        return load_sharded(body, strict=strict)
    rest = io.BytesIO(prefix + stream.read())
    return LoadedEngine(load_analyzer(rest), [])


def save_engine_checkpoint(engine, path: PathOrStr) -> int:
    """Atomically write an engine checkpoint file (temp + fsync + rename)."""
    path = Path(path)
    tmp_path = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp_path, "wb") as stream:
            written = dump_engine(engine, stream)
            stream.flush()
            os.fsync(stream.fileno())
        _run_pre_rename_hook(tmp_path, path)
        os.replace(tmp_path, path)
    finally:
        if tmp_path.exists():
            tmp_path.unlink()
    return written


def load_engine_checkpoint(path: PathOrStr, strict: bool = True) -> LoadedEngine:
    """Load and integrity-check an engine checkpoint file."""
    with open(path, "rb") as stream:
        return load_engine(stream, strict=strict)


def as_typed_engine(loaded: LoadedEngine):
    """Promote a loaded engine to the service's typed analyzer shape.

    v3 checkpoints restore straight to a (typed-capable)
    :class:`ShardedAnalyzer`; v1/v2 plain analyzers are adopted into a
    fresh :class:`TypedOnlineAnalyzer` (the sidecar rebuilds from future
    traffic, as with format v2).
    """
    engine = loaded.engine
    if isinstance(engine, ShardedAnalyzer):
        return engine
    typed = TypedOnlineAnalyzer(engine.config)
    typed.adopt(engine)
    return typed
