"""Shard-per-process execution: the GIL-free synopsis engine.

:class:`~repro.engine.sharded.ShardedAnalyzer`'s thread-parallel batch
path cannot speed up the pure-Python table loops -- the GIL serializes
them.  This module runs each shard in its **own process**: a spawned
worker owns one :class:`~repro.core.typed.TypedOnlineAnalyzer` and applies
pre-routed columnar work shipped to it as pickled numpy arrays, so N
shards use N cores.

Routing.  The in-process engine routes with Python's ``hash() % N``; a
process engine cannot, because worker-side structures must agree with
main-process routing across interpreter boundaries and restarts.  Extents
and pairs are instead routed by a SplitMix64-style avalanche hash over
their integer columns (:func:`route_batch`) -- deterministic, vectorized,
and identical everywhere.  The two engines therefore partition the key
space *differently*: per-shard residency differs between them, while the
analysis itself (tally arithmetic, promotion, eviction-demotion coupling)
is the same code via :func:`_apply_shard_work`.  Pair expansion is also
vectorized by grouping transactions of equal size, which orders a batch's
pairs by transaction size rather than strictly by transaction; tallies
are unaffected (each pair occurrence is still applied exactly once).

Protocol.  Batches run in lockstep over duplex pipes: the main process
ships each worker its routed slice, waits for every worker's ack (which
carries the extents evicted from that worker's item table), then
broadcasts cross-shard demotions fire-and-forget -- pipe FIFO ordering
guarantees a worker applies them before its next batch, mirroring the
thread engine's demote-after-join batch semantics.  A worker that dies
mid-batch is detected by liveness polling and surfaces as
:class:`ShardWorkerError` (counted in
``repro_engine_worker_deaths_total``) instead of a hang.

Queries and checkpointing fetch state from the workers: query methods
execute remotely and merge like the in-process engine; the
:attr:`~ProcessShardedAnalyzer.shard_analyzers` property materializes
each worker's synopsis in the main process, so checkpoint format v3
(``RTSHD\\x03``) works unchanged.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.analyzer import AnalyzerReport, OnlineAnalyzer
from ..core.config import AnalyzerConfig
from ..core.extent import Extent, ExtentPair
from ..core.serialize import dumps_analyzer, loads_analyzer
from ..core.typed import CorrelationKind, TypeTally, TypedOnlineAnalyzer
from ..telemetry.aggregate import merge_worker_snapshot
from ..telemetry.metrics import MetricsRegistry, get_default_registry
from ..telemetry.tracelog import current_context, get_tracelog
from .sharded import _merged_stats, shard_config


class ShardWorkerError(RuntimeError):
    """A shard worker process died or misbehaved.

    Raised instead of hanging when a worker exits mid-protocol (OOM kill,
    signal, crash).  The engine is not usable for further ingest after
    this; call :meth:`ProcessShardedAnalyzer.close` to reap the survivors.
    """


# SplitMix64-style avalanche constants; the multiply-xor-shift rounds give
# uniform shard assignment even for near-sequential block numbers.
_MIX_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_B = np.uint64(0xBF58476D1CE4E5B9)
_MIX_C = np.uint64(0x94D049BB133111EB)
_SH_30 = np.uint64(30)
_SH_27 = np.uint64(27)
_SH_31 = np.uint64(31)


def _mix_columns(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Avalanche-hash parallel integer columns into one uint64 per row."""
    h = np.zeros(len(columns[0]), dtype=np.uint64)
    for column in columns:
        h ^= column.astype(np.uint64)
        h ^= h >> _SH_30
        h *= _MIX_B
        h ^= h >> _SH_27
        h *= _MIX_C
        h ^= h >> _SH_31
        h += _MIX_A
    return h


def shard_of_columns(columns: Sequence[np.ndarray], shards: int) -> np.ndarray:
    """Shard index per row for the given key columns."""
    return (_mix_columns(columns) % np.uint64(shards)).astype(np.int64)


#: Routed work for one shard: ``((item_starts, item_lengths),
#: (a_starts, a_lengths, b_starts, b_lengths, mixes))``.
ShardWork = Tuple[Tuple[np.ndarray, np.ndarray],
                  Tuple[np.ndarray, np.ndarray, np.ndarray,
                        np.ndarray, np.ndarray]]


def route_batch(batch, shards: int) -> List[ShardWork]:
    """Partition a :class:`~repro.monitor.batch.TransactionBatch`'s
    distinct view into per-shard columnar work lists.

    Pure function of (batch, shards): the engine, the in-process reference
    used in tests, and a restored engine all route identically.  Item rows
    keep stream order within each shard; pair rows are grouped by
    transaction size (the vectorized expansion), then keep order within
    each group.
    """
    starts = batch.starts
    lengths = batch.lengths
    ops = batch.ops
    offsets = batch.offsets

    item_shard = shard_of_columns((starts, lengths), shards)

    counts = np.diff(offsets)
    base = offsets[:-1]
    ai_parts: List[np.ndarray] = []
    aj_parts: List[np.ndarray] = []
    for size in np.unique(counts):
        if size < 2:
            continue
        txn_rows = base[counts == size][:, None]
        tmpl_i, tmpl_j = np.triu_indices(int(size), k=1)
        ai_parts.append((txn_rows + tmpl_i[None, :]).ravel())
        aj_parts.append((txn_rows + tmpl_j[None, :]).ravel())
    if ai_parts:
        ai = np.concatenate(ai_parts)
        aj = np.concatenate(aj_parts)
        a_starts = starts[ai]
        a_lengths = lengths[ai]
        b_starts = starts[aj]
        b_lengths = lengths[aj]
        mixes = ops[ai] + ops[aj]
        pair_shard = shard_of_columns(
            (a_starts, a_lengths, b_starts, b_lengths), shards
        )
    else:
        empty64 = np.empty(0, dtype=np.int64)
        a_starts = a_lengths = b_starts = b_lengths = empty64
        mixes = np.empty(0, dtype=np.uint8)
        pair_shard = empty64

    work: List[ShardWork] = []
    for index in range(shards):
        item_sel = item_shard == index
        pair_sel = pair_shard == index
        work.append((
            (starts[item_sel], lengths[item_sel]),
            (a_starts[pair_sel], a_lengths[pair_sel],
             b_starts[pair_sel], b_lengths[pair_sel], mixes[pair_sel]),
        ))
    return work


def _apply_shard_work(
    analyzer: TypedOnlineAnalyzer,
    item_starts: np.ndarray,
    item_lengths: np.ndarray,
    a_starts: np.ndarray,
    a_lengths: np.ndarray,
    b_starts: np.ndarray,
    b_lengths: np.ndarray,
    mixes: np.ndarray,
) -> List[Tuple[int, int]]:
    """Apply one shard's routed work to its analyzer.

    The single definition of shard-side semantics: the worker process runs
    this, and tests run it in-process against the same routed arrays to
    pin down what the workers must produce.  Items first (with local
    eviction demotion), then pairs -- the same intra-batch order as the
    thread engine's shard task.  Returns the item-table evictions as
    ``(start, length)`` tuples for cross-shard demotion.
    """
    intern_extent = analyzer._interner.extent
    intern_pair = analyzer._interner.pair
    items_access = analyzer.items.access_fast
    corr_access = analyzer.correlations.access_fast
    demote = analyzer.config.demote_on_item_eviction
    demote_involving = analyzer.correlations.demote_involving
    evicted_out: List[Tuple[int, int]] = []

    for start, length in zip(item_starts.tolist(), item_lengths.tolist()):
        evicted = items_access(intern_extent(start, length))
        if demote and evicted is not None:
            demote_involving(evicted)
            evicted_out.append((evicted.start, evicted.length))

    types = analyzer._types
    types_get = types.get
    types_pop = types.pop
    pair_rows = zip(a_starts.tolist(), a_lengths.tolist(),
                    b_starts.tolist(), b_lengths.tolist(), mixes.tolist())
    for a_start, a_length, b_start, b_length, mix in pair_rows:
        pair = intern_pair(intern_extent(a_start, a_length),
                           intern_extent(b_start, b_length))
        evicted_pair = corr_access(pair)
        if evicted_pair is not None:
            types_pop(evicted_pair, None)
        tally = types_get(pair)
        if tally is None:
            types[pair] = tally = TypeTally()
        if mix == 0:
            tally.read += 1
        elif mix == 2:
            tally.write += 1
        else:
            tally.mixed += 1
    return evicted_out


def _side_state(analyzer: TypedOnlineAnalyzer) -> Tuple:
    """Analyzer state the v2 envelope does not carry: typed sidecar rows,
    table stats, and flow counters."""
    return (
        _types_rows(analyzer),
        analyzer.items.stats.as_dict(),
        analyzer.correlations.stats.as_dict(),
        (analyzer._transactions, analyzer._extents_seen,
         analyzer._pairs_seen),
    )


def _restore_side_state(analyzer: TypedOnlineAnalyzer, side: Tuple) -> None:
    rows, item_stats, corr_stats, counters = side
    _restore_types(analyzer, rows)
    for name, value in item_stats.items():
        setattr(analyzer.items.stats, name, value)
    for name, value in corr_stats.items():
        setattr(analyzer.correlations.stats, name, value)
    (analyzer._transactions, analyzer._extents_seen,
     analyzer._pairs_seen) = counters


def _types_rows(analyzer: TypedOnlineAnalyzer) -> List[Tuple]:
    """The typed sidecar as plain tuples (pickle-lean wire form)."""
    return [
        (pair.first.start, pair.first.length,
         pair.second.start, pair.second.length,
         tally.read, tally.write, tally.mixed)
        for pair, tally in analyzer._types.items()
    ]


def _restore_types(analyzer: TypedOnlineAnalyzer,
                   rows: List[Tuple]) -> None:
    intern_extent = analyzer._interner.extent
    intern_pair = analyzer._interner.pair
    analyzer._types = {
        intern_pair(intern_extent(a_start, a_length),
                    intern_extent(b_start, b_length)):
        TypeTally(read=read, write=write, mixed=mixed)
        for a_start, a_length, b_start, b_length, read, write, mixed in rows
    }


def _backend_worker_main(conn, config: AnalyzerConfig,
                         index: int = 0) -> None:
    """Worker entry point in backend mode: serve one synopsis backend.

    Speaks the same op protocol as the two-tier worker loop, with the
    per-shard synopsis behind the :class:`~repro.engine.backends.base.\
SynopsisBackend` surface: ``process`` applies pre-routed columnar work
    through ``apply_shard_work`` (acking the item evictions -- always
    empty for sketch backends), ``fetch``/``adopt`` move the backend's
    own serialized payload (checkpoint v4 frames it), and ``query``
    dispatches by method name exactly like the analyzer loop.  Worker
    metric snapshots are not shipped in backend mode; acks carry
    ``None`` where the analyzer loop would piggyback one.
    """
    from .backends import create_backend, deserialize_backend

    backend = create_backend(config.backend, config)
    intern_extent = backend._interner.extent
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        try:
            if op == "process":
                item_work, pair_work = message[1], message[2]
                evicted = backend.apply_shard_work(*item_work, *pair_work)
                conn.send(("ok", (evicted, None)))
            elif op == "collect":
                conn.send(("ok", None))
            elif op == "demote":
                demote_item = backend.demote_item
                for start, length in message[1]:
                    demote_item(intern_extent(start, length))
                # Fire-and-forget: no ack, FIFO ordering is the guarantee.
            elif op == "query":
                _op, name, args, kwargs = message
                conn.send(("ok", getattr(backend, name)(*args, **kwargs)))
            elif op == "occupancy":
                conn.send(("ok", backend.occupancy()))
            elif op == "fetch":
                conn.send(("ok", backend.serialize()))
            elif op == "adopt":
                backend = deserialize_backend(
                    config.backend, message[1], config
                )
                intern_extent = backend._interner.extent
                conn.send(("ok", None))
            elif op == "reset":
                backend.reset()
                conn.send(("ok", None))
            elif op == "close":
                conn.send(("ok", None))
                break
            else:
                conn.send(("err", f"unknown op {op!r}"))
        except Exception as exc:  # surface, don't kill the worker
            try:
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                break
    conn.close()


def _shard_worker_main(conn, config: AnalyzerConfig, index: int = 0,
                       telemetry: Optional[dict] = None) -> None:
    """Worker process entry point: serve one shard analyzer over a pipe.

    When ``config`` selects a sketch backend the worker delegates to
    :func:`_backend_worker_main` and hosts a synopsis backend instead of
    a two-tier analyzer; same pipe protocol either way.

    ``telemetry`` (picklable dict) switches on the worker's own
    observability: ``{"metrics": bool, "metrics_interval": seconds,
    "trace_path": str|None, "slow_threshold": seconds}``.  With metrics
    on, the worker binds its analyzer to a real registry (labelled with
    its shard index) and piggybacks a full cumulative ``snapshot()`` on
    ``process`` acks at most once per interval -- the first ack always
    ships one, so the parent is never blind after the first batch.  With
    a trace path, the worker appends ``shard.apply`` spans (children of
    the context the parent ships per batch) to the shared NDJSON file.
    """
    if getattr(config, "backend", "two-tier") != "two-tier":
        _backend_worker_main(conn, config, index)
        return

    from ..telemetry import NULL_REGISTRY
    from ..telemetry.tracelog import TraceContext, TraceLog

    telemetry = telemetry or {}
    registry = None
    if telemetry.get("metrics"):
        registry = MetricsRegistry()
        analyzer = TypedOnlineAnalyzer(
            config, registry=registry,
            metric_labels={"shard": str(index)})
    else:
        analyzer = TypedOnlineAnalyzer(config, registry=NULL_REGISTRY)
    tracer = None
    if telemetry.get("trace_path"):
        # Sample decisions were made at the trace root and travel with
        # the shipped context; the worker's own rate stays 0.
        tracer = TraceLog(telemetry["trace_path"], sample_rate=0.0,
                          slow_threshold=telemetry.get(
                              "slow_threshold", 0.25))
    ship_interval = float(telemetry.get("metrics_interval", 0.5))
    last_ship = float("-inf")
    intern_extent = analyzer._interner.extent
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        try:
            if op == "process":
                item_work, pair_work = message[1], message[2]
                context = TraceContext.from_tuple(message[3]) \
                    if len(message) > 3 else None
                if tracer is not None and context is not None:
                    with tracer.span("shard.apply", parent=context,
                                     tags={"shard": index}):
                        evicted = _apply_shard_work(
                            analyzer, *item_work, *pair_work)
                else:
                    evicted = _apply_shard_work(
                        analyzer, *item_work, *pair_work)
                snap = None
                if registry is not None:
                    now = time.monotonic()
                    if now - last_ship >= ship_interval:
                        last_ship = now
                        snap = registry.snapshot()
                conn.send(("ok", (evicted, snap)))
            elif op == "collect":
                conn.send(("ok",
                           registry.snapshot() if registry is not None
                           else None))
            elif op == "demote":
                demote_involving = analyzer.correlations.demote_involving
                for start, length in message[1]:
                    demote_involving(intern_extent(start, length))
                # Fire-and-forget: no ack, FIFO ordering is the guarantee.
            elif op == "query":
                _op, name, args, kwargs = message
                conn.send(("ok", getattr(analyzer, name)(*args, **kwargs)))
            elif op == "occupancy":
                conn.send(
                    ("ok", (len(analyzer.items), len(analyzer.correlations)))
                )
            elif op == "fetch":
                conn.send(
                    ("ok",
                     (dumps_analyzer(analyzer), _side_state(analyzer)))
                )
            elif op == "adopt":
                analyzer.adopt(loads_analyzer(message[1]))
                _restore_side_state(analyzer, message[2])
                conn.send(("ok", None))
            elif op == "reset":
                analyzer.reset()
                conn.send(("ok", None))
            elif op == "close":
                conn.send(("ok", None))
                break
            else:
                conn.send(("err", f"unknown op {op!r}"))
        except Exception as exc:  # surface, don't kill the worker
            try:
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                break
    conn.close()


class ProcessShardedAnalyzer:
    """N shard synopses in N worker processes, engine interface on top.

    Drop-in for :class:`~repro.engine.sharded.ShardedAnalyzer` on the
    columnar lane: ``process_transaction_batch`` ingest, merged
    ``frequent_*`` / typed queries, ``report()``, ``reset()``, and the
    ``shard_analyzers`` property that checkpoint format v3 consumes.  The
    object path (``process_transaction`` etc.) is intentionally absent --
    per-event shipping would pay a pickle per event; batch through a
    monitor or :meth:`~repro.monitor.batch.TransactionBatch.\
from_transactions` instead.

    Note the routing difference from the in-process engine (module
    docstring): the two engines agree on analysis semantics but not on
    which shard holds which key, so their per-shard occupancies differ.

    Workers are daemons: an abandoned engine cannot keep the interpreter
    alive, but call :meth:`close` (or use the engine as a context manager)
    for a clean shutdown.
    """

    def __init__(
        self,
        config: Optional[AnalyzerConfig] = None,
        shards: int = 4,
        registry: Optional[MetricsRegistry] = None,
        mp_context: str = "spawn",
        metrics_interval: float = 0.5,
    ) -> None:
        """``mp_context`` selects the multiprocessing start method; spawn
        is the default because it is fork-safe with threads (the serving
        layer runs them) and behaves identically across platforms.
        ``metrics_interval`` throttles how often a worker piggybacks its
        registry snapshot on a ``process`` ack (seconds).
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.config = config or AnalyzerConfig()
        self.backend_name = getattr(self.config, "backend", "two-tier")
        self._backend_mode = self.backend_name != "two-tier"
        self.shards = shards
        self._per_shard = shard_config(self.config, shards)
        self._transactions = 0
        self._extents_seen = 0
        self._pairs_seen = 0
        self._worker_deaths = 0
        self._closed = False
        self._worker_snaps: Dict[int, dict] = {}
        self._merged: Set[Tuple[str, Tuple[str, ...]]] = set()
        registry = registry if registry is not None else \
            get_default_registry()
        tracer = get_tracelog()
        self._trace_batches = tracer is not None
        telemetry = {
            "metrics": bool(registry.enabled),
            "metrics_interval": metrics_interval,
            "trace_path": tracer.path if tracer is not None else None,
            "slow_threshold":
                tracer.slow_threshold if tracer is not None else 0.25,
        }
        ctx = multiprocessing.get_context(mp_context)
        self._procs: List = []
        self._conns: List = []
        try:
            for _index in range(shards):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_shard_worker_main,
                    args=(child_conn, self._per_shard, _index, telemetry),
                    daemon=True,
                    name=f"repro-shard-{_index}",
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except BaseException:
            self.close()
            raise
        self._bind_metrics(registry)

    # -- telemetry ----------------------------------------------------------

    def _bind_metrics(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        if not registry.enabled:
            return
        self._shards_gauge = registry.gauge(
            "repro_engine_shards", "Shard count of the synopsis engine"
        )
        self._deaths_counter = registry.counter(
            "repro_engine_worker_deaths_total",
            "Shard worker processes that died mid-protocol",
        )
        self._flow_counters = {
            name: registry.counter(f"repro_engine_{name}_total", help)
            for name, help in {
                "transactions": "Transactions characterized by the engine",
                "extents": "Distinct extents routed to shards",
                "pairs": "Extent pairs routed to shards",
            }.items()
        }
        registry.register_collector(self._collect_metrics)

    def rebind_metrics(self, registry: MetricsRegistry) -> None:
        """Re-home the engine's telemetry on ``registry`` (restore path)."""
        if registry is self.registry:
            return
        old = getattr(self, "registry", None)
        if old is not None and old.enabled:
            old.deregister_collector(self._collect_metrics)
        self._merged = set()
        self._bind_metrics(registry)

    def _collect_metrics(self) -> None:
        self._shards_gauge.set(self.shards)
        self._deaths_counter.set_total(self._worker_deaths)
        self._flow_counters["transactions"].set_total(self._transactions)
        self._flow_counters["extents"].set_total(self._extents_seen)
        self._flow_counters["pairs"].set_total(self._pairs_seen)
        # Replay the workers' latest shipped snapshots under shard=N
        # labels.  Cached merges are idempotent (cumulative values), and
        # no pipe traffic happens here: scrapes run on exporter threads,
        # and the duplex pipes belong to the ingest thread alone.
        for index, snap in list(self._worker_snaps.items()):
            self._merged.update(
                merge_worker_snapshot(self.registry, snap, shard=index))

    def collect_worker_metrics(self) -> int:
        """Fetch a fresh registry snapshot from every worker now.

        The on-demand half of worker aggregation (acks only piggyback a
        snapshot every ``metrics_interval``); call from the ingest owner
        thread before an exposition that must be current.  Returns the
        number of workers that answered with a snapshot.
        """
        if not self.registry.enabled:
            return 0
        fresh = 0
        for index, snap in enumerate(self._request_all(("collect",))):
            if snap is not None:
                self._worker_snaps[index] = snap
                fresh += 1
        return fresh

    def _release_metrics(self) -> None:
        """Withdraw from the registry on close (the release-leak fix):
        deregister the pull collector, zero the shard gauge, and remove
        every worker-merged series so a dead fleet cannot keep reporting
        its last occupancy forever."""
        registry = getattr(self, "registry", None)
        if registry is None or not registry.enabled:
            return
        registry.deregister_collector(self._collect_metrics)
        self._shards_gauge.set(0)
        for name, key in self._merged:
            family = registry.get(name)
            if family is not None:
                family.remove_child(key)
        self._merged.clear()
        self._worker_snaps.clear()

    # -- worker protocol plumbing -------------------------------------------

    def _died(self, index: int, why: str) -> None:
        self._worker_deaths += 1
        exit_code = self._procs[index].exitcode
        raise ShardWorkerError(
            f"shard worker {index} {why} (exit code {exit_code}); "
            f"the engine must be closed"
        )

    def _send(self, index: int, message) -> None:
        try:
            self._conns[index].send(message)
        except (BrokenPipeError, OSError):
            self._died(index, "is unreachable")

    def _recv(self, index: int):
        """Receive one reply, detecting worker death instead of hanging."""
        conn = self._conns[index]
        proc = self._procs[index]
        while True:
            if conn.poll(0.2):
                try:
                    return conn.recv()
                except (EOFError, OSError):
                    self._died(index, "closed its pipe mid-reply")
            if not proc.is_alive():
                # Final drain: the reply may have been written before death.
                if conn.poll(0.5):
                    try:
                        return conn.recv()
                    except (EOFError, OSError):
                        pass
                self._died(index, "died awaiting its reply")

    def _reply(self, index: int):
        reply = self._recv(index)
        if reply[0] != "ok":
            raise ShardWorkerError(f"shard worker {index}: {reply[1]}")
        return reply[1]

    def _request_all(self, message) -> List:
        """Send one message to every worker, then collect every ack."""
        self._check_open()
        for index in range(self.shards):
            self._send(index, message)
        return [self._reply(index) for index in range(self.shards)]

    def _query(self, name: str, *args, **kwargs) -> List:
        return self._request_all(("query", name, args, kwargs))

    def _check_open(self) -> None:
        if self._closed:
            raise ShardWorkerError("engine is closed")

    # -- ingestion ----------------------------------------------------------

    def process_transaction_batch(self, batch, *,
                                  parallel: bool = True) -> int:
        """Characterize a columnar batch across the worker fleet.

        ``parallel`` is accepted for engine-protocol compatibility; the
        workers always run concurrently (that is the point of the engine).
        """
        self._check_open()
        count = len(batch)
        if count == 0:
            return 0
        context = current_context() if self._trace_batches else None
        trace = context.to_tuple() if context is not None else None
        work = route_batch(batch, self.shards)
        for index, (item_work, pair_work) in enumerate(work):
            self._send(index, ("process", item_work, pair_work, trace))
        evicted_by_shard = []
        for index in range(self.shards):
            evicted, snap = self._reply(index)
            if snap is not None:
                self._worker_snaps[index] = snap
            evicted_by_shard.append(evicted)
        for origin, evicted in enumerate(evicted_by_shard):
            if not evicted:
                continue
            for index in range(self.shards):
                if index != origin:
                    self._send(index, ("demote", evicted))
        self._transactions += count
        self._extents_seen += len(batch.starts)
        self._pairs_seen += sum(
            len(pair_work[0]) for _item, pair_work in work
        )
        return count

    # -- merged queries ------------------------------------------------------

    @staticmethod
    def _merge_ranked(parts: List[List[Tuple]]) -> List[Tuple]:
        merged: List[Tuple] = []
        for part in parts:
            merged.extend(part)
        merged.sort(key=lambda entry: (-entry[1], entry[0]))
        return merged

    def frequent_pairs(
        self, min_support: int = 2
    ) -> List[Tuple[ExtentPair, int]]:
        return self._merge_ranked(self._query("frequent_pairs", min_support))

    def frequent_extents(
        self, min_support: int = 2
    ) -> List[Tuple[Extent, int]]:
        return self._merge_ranked(self._query("frequent_extents", min_support))

    def pair_frequencies(self) -> Dict[ExtentPair, int]:
        merged: Dict[ExtentPair, int] = {}
        for part in self._query("pair_frequencies"):
            merged.update(part)
        return merged

    def frequent_pairs_of_kind(
        self,
        kind: CorrelationKind,
        min_support: int = 2,
        purity: float = 0.5,
    ) -> List[Tuple[ExtentPair, int]]:
        return self._merge_ranked(
            self._query("frequent_pairs_of_kind", kind, min_support, purity)
        )

    def read_correlations(self, min_support: int = 2):
        return self.frequent_pairs_of_kind(CorrelationKind.READ, min_support)

    def write_correlations(self, min_support: int = 2):
        return self.frequent_pairs_of_kind(CorrelationKind.WRITE, min_support)

    def kind_summary(self) -> Dict[CorrelationKind, int]:
        summary = {kind: 0 for kind in CorrelationKind}
        for part in self._query("kind_summary"):
            for kind, value in part.items():
                summary[kind] += value
        return summary

    def type_tally(self, pair: ExtentPair) -> Optional[TypeTally]:
        index = int(shard_of_columns(
            (np.asarray([pair.first.start]), np.asarray([pair.first.length]),
             np.asarray([pair.second.start]),
             np.asarray([pair.second.length])),
            self.shards,
        )[0])
        self._check_open()
        self._send(index, ("query", "type_tally", (pair,), {}))
        return self._reply(index)

    # -- state transfer ------------------------------------------------------

    @property
    def shard_analyzers(self) -> List[TypedOnlineAnalyzer]:
        """Materialize every worker's synopsis in this process.

        Checkpoint v3 (:func:`~repro.engine.checkpoint.dump_sharded`)
        iterates this to frame one v2 envelope per shard, identically to
        the in-process engine.  The returned analyzers are *copies*;
        mutating them does not affect the workers.

        Only meaningful in two-tier mode; in backend mode this raises
        :class:`AttributeError` (so ``hasattr`` dispatch in
        :func:`~repro.engine.checkpoint.dump_engine` selects the v4
        ``shard_backends`` seam instead).
        """
        if self._backend_mode:
            raise AttributeError(
                "shard_analyzers is unavailable in backend mode; "
                "use shard_backends"
            )
        from ..telemetry import NULL_REGISTRY

        analyzers: List[TypedOnlineAnalyzer] = []
        for blob, side in self._request_all(("fetch",)):
            restored = loads_analyzer(blob)
            typed = TypedOnlineAnalyzer(restored.config,
                                        registry=NULL_REGISTRY)
            typed.adopt(restored)
            _restore_side_state(typed, side)
            analyzers.append(typed)
        return analyzers

    @property
    def shard_backends(self) -> List:
        """Materialize every worker's synopsis backend in this process.

        Checkpoint v4 (:func:`~repro.engine.checkpoint.\
dump_backend_engine`) iterates this; the returned backends are
        *copies* deserialized from the workers' payloads.  Only
        meaningful in backend mode; raises :class:`AttributeError` in
        two-tier mode (``hasattr`` dispatch again).
        """
        if not self._backend_mode:
            raise AttributeError(
                "shard_backends is unavailable in two-tier mode; "
                "use shard_analyzers"
            )
        from .backends import deserialize_backend

        return [
            deserialize_backend(self.backend_name, payload, self._per_shard)
            for payload in self._request_all(("fetch",))
        ]

    def adopt_shards(self, analyzers: Sequence[OnlineAnalyzer]) -> None:
        """Ship restored per-shard synopses into the workers (in order)."""
        if self._backend_mode:
            raise ShardWorkerError(
                "adopt_shards is unavailable in backend mode; "
                "use adopt_backends"
            )
        if len(analyzers) != self.shards:
            raise ValueError(
                f"got {len(analyzers)} shard analyzers for "
                f"{self.shards} workers"
            )
        self._check_open()
        for index, analyzer in enumerate(analyzers):
            if isinstance(analyzer, TypedOnlineAnalyzer):
                side = _side_state(analyzer)
            else:
                side = ([], analyzer.items.stats.as_dict(),
                        analyzer.correlations.stats.as_dict(),
                        (analyzer._transactions, analyzer._extents_seen,
                         analyzer._pairs_seen))
            self._send(index, ("adopt", dumps_analyzer(analyzer), side))
        for index in range(self.shards):
            self._reply(index)

    def adopt_backends(self, backends: Sequence) -> None:
        """Ship restored per-shard backends into the workers (in order)."""
        if not self._backend_mode:
            raise ShardWorkerError(
                "adopt_backends is unavailable in two-tier mode; "
                "use adopt_shards"
            )
        if len(backends) != self.shards:
            raise ValueError(
                f"got {len(backends)} shard backends for "
                f"{self.shards} workers"
            )
        for backend in backends:
            if backend.name != self.backend_name:
                raise ValueError(
                    f"cannot adopt a {backend.name!r} backend into a "
                    f"{self.backend_name!r} engine"
                )
        self._check_open()
        for index, backend in enumerate(backends):
            self._send(index, ("adopt", backend.serialize()))
        for index in range(self.shards):
            self._reply(index)

    # -- reporting and lifecycle ---------------------------------------------

    def report(self) -> AnalyzerReport:
        """Aggregate counters merged across every worker shard."""
        reports = self._query("report")
        return AnalyzerReport(
            transactions=self._transactions,
            extents_seen=self._extents_seen,
            pairs_seen=self._pairs_seen,
            item_stats=_merged_stats(r.item_stats for r in reports),
            correlation_stats=_merged_stats(
                r.correlation_stats for r in reports
            ),
        )

    def shard_occupancy(self) -> List[Tuple[int, int]]:
        """Resident ``(items, pairs)`` per worker shard."""
        return self._request_all(("occupancy",))

    def reset(self) -> None:
        self._request_all(("reset",))
        self._transactions = 0
        self._extents_seen = 0
        self._pairs_seen = 0

    def close(self, timeout: float = 5.0) -> None:
        """Shut the worker fleet down; idempotent, tolerates dead workers."""
        if self._closed:
            return
        self._closed = True
        for index, conn in enumerate(self._conns):
            if self._procs[index].is_alive():
                try:
                    conn.send(("close",))
                except (BrokenPipeError, OSError):
                    pass
        for proc in self._procs:
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=timeout)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._release_metrics()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def worker_deaths(self) -> int:
        """Workers that died mid-protocol (also a telemetry counter)."""
        return self._worker_deaths

    def workers_alive(self) -> List[bool]:
        """Liveness of each shard worker (diagnostics)."""
        return [proc.is_alive() for proc in self._procs]

    def __enter__(self) -> "ProcessShardedAnalyzer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            if not getattr(self, "_closed", True):
                self.close(timeout=0.5)
        except Exception:
            pass
