"""A hash-partitioned synopsis engine.

The paper's synopsis is bounded-memory and single-pass, but one Python
analyzer object is still a serial bottleneck.  Streaming CHH mining and
MITHRIL-style association mining scale the same shape of problem by
partitioning the key space across independent bounded synopses and merging
on query; the decomposition applies directly here because the item table
keys on extents and the correlation table keys on canonical pairs:

* the **item table** is partitioned by ``hash(extent) % N``;
* the **correlation table** is partitioned by ``hash(pair) % N`` -- a
  pair's home shard is *not* derived from its members' home shards, so the
  pair population spreads evenly even when a few extents dominate;
* each shard is a full item + correlation table pair at ``capacity / N``,
  so N shards cost the same total memory as one analyzer at ``capacity``;
* the eviction-demotion coupling rule (Section III-D2) crosses shards:
  when a shard's item table evicts an extent, pairs involving that extent
  may reside in *any* shard's correlation table, so the demotion is routed
  to every shard (each lookup is one dict probe in the inverted index).

``ShardedAnalyzer(shards=1)`` performs exactly the same table operations in
exactly the same order as a single :class:`OnlineAnalyzer` and is therefore
tally-identical to it on any stream.  With N > 1 the partitioned LRU state
diverges slightly from the single table (each shard evicts locally), but
hot pairs -- the synopsis output -- land in the same shards consistently
and survive; recall of the single analyzer's frequent pairs stays high at
equal total capacity.

Queries (:meth:`frequent_pairs`, :meth:`frequent_extents`,
:meth:`report`, ...) merge across shards; since shards partition the key
space, their result sets are disjoint and merging is a sort.

:meth:`process_batch` with ``parallel=True`` runs one worker per shard:
shards share no state during the batch, so each worker walks its own
pre-routed access sequence.  Cross-shard demotions discovered during the
batch are applied after all workers join (deferred demotion) -- tallies
are unaffected, only intra-batch LRU positions differ, which is the
approximation that buys shard independence.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import fields as dataclass_fields
from dataclasses import replace as dataclasses_replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.analyzer import AnalyzerReport, OnlineAnalyzer
from ..core.config import AnalyzerConfig
from ..core.extent import Extent, ExtentInterner, ExtentPair, unique_pairs
from ..core.two_tier import TableStats
from ..core.typed import (
    CorrelationKind,
    TypeTally,
    TypedOnlineAnalyzer,
    _pair_kind,
)
from ..telemetry.metrics import MetricsRegistry, get_default_registry
from ..trace.record import OpType


def shard_config(config: AnalyzerConfig, shards: int) -> AnalyzerConfig:
    """The per-shard configuration: ``capacity / N`` tables (ceil), same
    promotion threshold and tier split, so N shards together hold at least
    the single-analyzer entry count.

    Sketch-backend dimensions scale the same way: explicitly-set sizes
    (``chh_items``, ``cms_width``, ``cms_candidates``) divide by N so the
    total footprint is invariant in the shard count, while auto-derived
    sizes (left at 0) follow the already-divided correlation capacity.
    Per-entry knobs (``chh_partners``, ``cms_depth``) pass through
    unchanged.  Every other field is copied verbatim via
    :func:`dataclasses.replace`, so new configuration fields survive
    per-shard derivation by default.
    """

    def ceil_div(value: int) -> int:
        return max(1, -(-value // shards))

    return dataclasses_replace(
        config,
        item_capacity=ceil_div(config.item_capacity),
        correlation_capacity=ceil_div(config.correlation_capacity),
        chh_items=ceil_div(config.chh_items) if config.chh_items else 0,
        cms_width=ceil_div(config.cms_width) if config.cms_width else 0,
        cms_candidates=(ceil_div(config.cms_candidates)
                        if config.cms_candidates else 0),
    )


def _merged_stats(parts: Iterable[TableStats]) -> TableStats:
    merged = TableStats()
    for part in parts:
        for field in dataclass_fields(TableStats):
            setattr(merged, field.name,
                    getattr(merged, field.name) + getattr(part, field.name))
    return merged


class ShardedAnalyzer:
    """N independent shard synopses behind the single-analyzer interface.

    Drop-in for :class:`~repro.core.typed.TypedOnlineAnalyzer` wherever the
    service/pipeline layers consume one: ``process`` / ``process_typed`` /
    ``process_transaction`` ingest, merged ``frequent_*`` queries, typed
    kind queries, ``report()`` and ``reset()``.
    """

    def __init__(
        self,
        config: Optional[AnalyzerConfig] = None,
        shards: int = 4,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        """``registry`` selects the telemetry registry (``None``: the
        process-local default).  Each shard analyzer publishes its table
        counters under a ``shard="<i>"`` label; the engine itself adds
        per-shard occupancy and imbalance gauges.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.config = config or AnalyzerConfig()
        self.shards = shards
        per_shard = shard_config(self.config, shards)
        registry = registry if registry is not None else \
            get_default_registry()
        self._shards: List[TypedOnlineAnalyzer] = [
            TypedOnlineAnalyzer(per_shard, registry=registry,
                                metric_labels={"shard": str(index)})
            for index in range(shards)
        ]
        self._transactions = 0
        self._extents_seen = 0
        self._pairs_seen = 0
        self._interner = ExtentInterner()
        self._bind_metrics(registry)

    # -- telemetry ----------------------------------------------------------

    def _bind_metrics(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        if not registry.enabled:
            return
        self._shards_gauge = registry.gauge(
            "repro_engine_shards", "Shard count of the synopsis engine"
        )
        self._occupancy_gauge = registry.gauge(
            "repro_engine_shard_occupancy",
            "Resident entries per shard",
            labelnames=("table", "shard"),
        )
        self._imbalance_gauge = registry.gauge(
            "repro_engine_shard_imbalance",
            "Max-over-mean shard occupancy (1.0 = perfectly balanced)",
            labelnames=("table",),
        )
        self._flow_counters = {
            name: registry.counter(
                f"repro_engine_{name}_total", help
            )
            for name, help in {
                "transactions": "Transactions characterized by the engine",
                "extents": "Distinct extents routed to shards",
                "pairs": "Extent pairs routed to shards",
            }.items()
        }
        registry.register_collector(self._collect_metrics)

    def rebind_metrics(self, registry: MetricsRegistry) -> None:
        """Re-home the engine's telemetry (and every shard's) on ``registry``.

        Called by the service after a checkpoint restore, where
        :func:`~repro.engine.checkpoint.load_engine` built the engine
        against the process default registry.  No-op when already bound.
        """
        if registry is self.registry:
            return
        for index, shard in enumerate(self._shards):
            shard.rebind_metrics(registry, {"shard": str(index)})
        self._bind_metrics(registry)

    def _collect_metrics(self) -> None:
        """Publish shard occupancy/imbalance gauges (pull seam)."""
        self._shards_gauge.set(self.shards)
        occupancy = self.shard_occupancy()
        for table, counts in (
            ("items", [items for items, _pairs in occupancy]),
            ("correlations", [pairs for _items, pairs in occupancy]),
        ):
            for index, count in enumerate(counts):
                self._occupancy_gauge.labels(
                    table=table, shard=str(index)
                ).set(count)
            mean = sum(counts) / len(counts)
            self._imbalance_gauge.labels(table=table).set(
                max(counts) / mean if mean else 1.0
            )
        self._flow_counters["transactions"].set_total(self._transactions)
        self._flow_counters["extents"].set_total(self._extents_seen)
        self._flow_counters["pairs"].set_total(self._pairs_seen)

    @classmethod
    def from_shards(
        cls,
        analyzers: Sequence[OnlineAnalyzer],
        config: Optional[AnalyzerConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> "ShardedAnalyzer":
        """Rebuild an engine around restored per-shard analyzers.

        Used by checkpoint v3 restore: each donated analyzer becomes (or is
        adopted into) one shard, in order.  ``config`` is the engine-level
        configuration; when omitted it is scaled up from shard 0's.
        Donated :class:`TypedOnlineAnalyzer` shards keep whatever metric
        binding they were constructed with; adopted plain analyzers take
        over the fresh shard's per-shard labels.
        """
        if not analyzers:
            raise ValueError("need at least one shard analyzer")
        n = len(analyzers)
        if config is None:
            base = analyzers[0].config
            config = dataclasses_replace(
                base,
                item_capacity=base.item_capacity * n,
                correlation_capacity=base.correlation_capacity * n,
            )
        engine = cls(config, shards=n, registry=registry)
        for index, donated in enumerate(analyzers):
            if isinstance(donated, TypedOnlineAnalyzer):
                engine._shards[index] = donated
            else:
                engine._shards[index].adopt(donated)
        return engine

    # -- routing -----------------------------------------------------------

    @property
    def shard_analyzers(self) -> List[TypedOnlineAnalyzer]:
        """The per-shard analyzers (checkpointing iterates these)."""
        return list(self._shards)

    def shard_of_extent(self, extent: Extent) -> int:
        return hash(extent) % self.shards

    def shard_of_pair(self, pair: ExtentPair) -> int:
        return hash(pair) % self.shards

    # -- ingestion ---------------------------------------------------------

    def process(self, extents: Sequence[Extent]) -> None:
        """Characterize one untyped transaction (see ``OnlineAnalyzer``)."""
        self._process(sorted(set(extents)), None)

    def process_typed(self, items) -> None:
        """Characterize one transaction of ``(extent, op)`` items."""
        op_of: Dict[Extent, OpType] = {}
        for extent, op in items:
            op_of.setdefault(extent, op)
        self._process(sorted(op_of), op_of)

    def process_transaction(self, transaction) -> None:
        """Characterize one monitor transaction (typed)."""
        self.process_typed([
            (event.extent, event.op) for event in transaction.events
        ])

    def process_stream(self, transactions: Iterable[Sequence[Extent]]) -> None:
        for extents in transactions:
            self.process(extents)

    def _process(self, distinct: List[Extent],
                 op_of: Optional[Dict[Extent, OpType]]) -> None:
        """The sequential hot path, operation-for-operation identical to
        the single analyzer when ``shards == 1``."""
        shards = self._shards
        n = self.shards
        demote = self.config.demote_on_item_eviction

        self._transactions += 1
        self._extents_seen += len(distinct)

        for extent in distinct:
            result = shards[hash(extent) % n].items.access(extent)
            if demote and result.evicted:
                for key, _tally, _tier in result.evicted:
                    for target in shards:
                        target.correlations.demote_involving(key)

        pairs = unique_pairs(distinct)
        self._pairs_seen += len(pairs)
        for pair in pairs:
            shard = shards[hash(pair) % n]
            result = shard.correlations.access(pair)
            for evicted_pair, _tally, _tier in result.evicted:
                shard._types.pop(evicted_pair, None)
            if op_of is not None:
                tally = shard._types.setdefault(pair, TypeTally())
                tally.bump(_pair_kind(op_of[pair.first], op_of[pair.second]))

    # -- batched ingestion -------------------------------------------------

    def process_batch(self, transactions: Iterable, *,
                      parallel: bool = False) -> int:
        """Characterize a whole batch of transactions.

        Transactions may be monitor :class:`~repro.monitor.Transaction`
        objects (typed) or bare extent sequences (untyped).  With
        ``parallel=True`` and more than one shard, the batch is routed
        up front and processed with one thread per shard (shards share no
        state); cross-shard eviction demotions are deferred to the end of
        the batch, so per-pair tallies are identical to the sequential
        path and only intra-batch LRU ordering may differ.
        """
        if not parallel or self.shards == 1:
            count = 0
            for transaction in transactions:
                self._dispatch(transaction)
                count += 1
            return count
        return self._process_batch_parallel(transactions)

    def _dispatch(self, transaction) -> None:
        events = getattr(transaction, "events", None)
        if events is not None:
            self.process_typed([(e.extent, e.op) for e in events])
        else:
            self.process(transaction)

    def _route(self, transactions: Iterable):
        """Pre-route a batch into per-shard access sequences."""
        n = self.shards
        item_work: List[List[Extent]] = [[] for _ in range(n)]
        pair_work: List[List[Tuple[ExtentPair, Optional[CorrelationKind]]]] = [
            [] for _ in range(n)
        ]
        count = 0
        for transaction in transactions:
            count += 1
            events = getattr(transaction, "events", None)
            if events is not None:
                op_of: Dict[Extent, OpType] = {}
                for event in events:
                    op_of.setdefault(event.extent, event.op)
                distinct = sorted(op_of)
            else:
                op_of = None
                distinct = sorted(set(transaction))
            self._extents_seen += len(distinct)
            for extent in distinct:
                item_work[hash(extent) % n].append(extent)
            pairs = unique_pairs(distinct)
            self._pairs_seen += len(pairs)
            for pair in pairs:
                kind = (None if op_of is None else
                        _pair_kind(op_of[pair.first], op_of[pair.second]))
                pair_work[hash(pair) % n].append((pair, kind))
        self._transactions += count
        return item_work, pair_work, count

    def _process_batch_parallel(self, transactions: Iterable) -> int:
        item_work, pair_work, count = self._route(transactions)
        shards = self._shards
        demote = self.config.demote_on_item_eviction

        def shard_task(index: int) -> List[Extent]:
            shard = shards[index]
            evicted_extents: List[Extent] = []
            items = shard.items
            correlations = shard.correlations
            types = shard._types
            for extent in item_work[index]:
                result = items.access(extent)
                if demote and result.evicted:
                    for key, _tally, _tier in result.evicted:
                        # Local demotion now; other shards after the join.
                        correlations.demote_involving(key)
                        evicted_extents.append(key)
            for pair, kind in pair_work[index]:
                result = correlations.access(pair)
                for evicted_pair, _tally, _tier in result.evicted:
                    types.pop(evicted_pair, None)
                if kind is not None:
                    types.setdefault(pair, TypeTally()).bump(kind)
            return evicted_extents

        with ThreadPoolExecutor(max_workers=self.shards) as pool:
            evicted_by_shard = list(pool.map(shard_task, range(self.shards)))

        if demote:
            for origin, evicted in enumerate(evicted_by_shard):
                for key in evicted:
                    for index, shard in enumerate(shards):
                        if index != origin:
                            shard.correlations.demote_involving(key)
        return count

    # -- columnar ingestion ------------------------------------------------

    def process_transaction_batch(self, batch, *,
                                  parallel: bool = False) -> int:
        """Characterize a columnar :class:`~repro.monitor.batch.\
TransactionBatch`.

        The sequential path routes each distinct extent and pair of the
        batch through ``hash % N`` exactly like :meth:`process_typed`, so
        at ``shards == 1`` it is tally- and stats-identical to both the
        object path and a single :class:`TypedOnlineAnalyzer` on the same
        stream.  With ``parallel=True`` and more than one shard the batch
        is pre-routed and processed with one thread per shard, deferring
        cross-shard eviction demotions to the end of the batch (same
        approximation as the object :meth:`process_batch`).
        """
        if parallel and self.shards > 1:
            return self._process_transaction_batch_parallel(batch)
        starts = batch.starts.tolist()
        lengths = batch.lengths.tolist()
        ops = batch.ops.tolist()
        offsets = batch.offsets.tolist()
        shards = self._shards
        n = self.shards
        demote = self.config.demote_on_item_eviction
        intern_extent = self._interner.extent
        intern_pair = self._interner.pair
        count = len(offsets) - 1
        extents_seen = 0
        pairs_seen = 0
        for t in range(count):
            lo = offsets[t]
            hi = offsets[t + 1]
            extents = [intern_extent(starts[k], lengths[k])
                       for k in range(lo, hi)]
            m = hi - lo
            extents_seen += m
            for extent in extents:
                evicted = shards[hash(extent) % n].items.access_fast(extent)
                if demote and evicted is not None:
                    for target in shards:
                        target.correlations.demote_involving(evicted)
            if m > 1:
                pairs_seen += m * (m - 1) // 2
                for i in range(m - 1):
                    a = extents[i]
                    op_a = ops[lo + i]
                    for j in range(i + 1, m):
                        pair = intern_pair(a, extents[j])
                        shard = shards[hash(pair) % n]
                        evicted_pair = shard.correlations.access_fast(pair)
                        types = shard._types
                        if evicted_pair is not None:
                            types.pop(evicted_pair, None)
                        tally = types.get(pair)
                        if tally is None:
                            types[pair] = tally = TypeTally()
                        mix = op_a + ops[lo + j]
                        if mix == 0:
                            tally.read += 1
                        elif mix == 2:
                            tally.write += 1
                        else:
                            tally.mixed += 1
        self._transactions += count
        self._extents_seen += extents_seen
        self._pairs_seen += pairs_seen
        return count

    def _route_batch(self, batch):
        """Pre-route a columnar batch into per-shard access sequences."""
        starts = batch.starts.tolist()
        lengths = batch.lengths.tolist()
        ops = batch.ops.tolist()
        offsets = batch.offsets.tolist()
        n = self.shards
        intern_extent = self._interner.extent
        intern_pair = self._interner.pair
        item_work: List[List[Extent]] = [[] for _ in range(n)]
        pair_work: List[List[Tuple[ExtentPair, int]]] = [
            [] for _ in range(n)
        ]
        count = len(offsets) - 1
        extents_seen = 0
        pairs_seen = 0
        for t in range(count):
            lo = offsets[t]
            hi = offsets[t + 1]
            extents = [intern_extent(starts[k], lengths[k])
                       for k in range(lo, hi)]
            m = hi - lo
            extents_seen += m
            for extent in extents:
                item_work[hash(extent) % n].append(extent)
            if m > 1:
                pairs_seen += m * (m - 1) // 2
                for i in range(m - 1):
                    a = extents[i]
                    op_a = ops[lo + i]
                    for j in range(i + 1, m):
                        pair = intern_pair(a, extents[j])
                        pair_work[hash(pair) % n].append(
                            (pair, op_a + ops[lo + j])
                        )
        self._transactions += count
        self._extents_seen += extents_seen
        self._pairs_seen += pairs_seen
        return item_work, pair_work, count

    def _process_transaction_batch_parallel(self, batch) -> int:
        item_work, pair_work, count = self._route_batch(batch)
        shards = self._shards
        demote = self.config.demote_on_item_eviction

        def shard_task(index: int) -> List[Extent]:
            shard = shards[index]
            items_access = shard.items.access_fast
            corr_access = shard.correlations.access_fast
            demote_involving = shard.correlations.demote_involving
            types = shard._types
            types_get = types.get
            types_pop = types.pop
            evicted_extents: List[Extent] = []
            for extent in item_work[index]:
                evicted = items_access(extent)
                if demote and evicted is not None:
                    # Local demotion now; other shards after the join.
                    demote_involving(evicted)
                    evicted_extents.append(evicted)
            for pair, mix in pair_work[index]:
                evicted_pair = corr_access(pair)
                if evicted_pair is not None:
                    types_pop(evicted_pair, None)
                tally = types_get(pair)
                if tally is None:
                    types[pair] = tally = TypeTally()
                if mix == 0:
                    tally.read += 1
                elif mix == 2:
                    tally.write += 1
                else:
                    tally.mixed += 1
            return evicted_extents

        with ThreadPoolExecutor(max_workers=self.shards) as pool:
            evicted_by_shard = list(pool.map(shard_task, range(self.shards)))

        if demote:
            for origin, evicted in enumerate(evicted_by_shard):
                for key in evicted:
                    for index, shard in enumerate(shards):
                        if index != origin:
                            shard.correlations.demote_involving(key)
        return count

    # -- merged queries ----------------------------------------------------

    def frequent_pairs(
        self, min_support: int = 2
    ) -> List[Tuple[ExtentPair, int]]:
        merged: List[Tuple[ExtentPair, int]] = []
        for shard in self._shards:
            merged.extend(shard.frequent_pairs(min_support))
        merged.sort(key=lambda entry: (-entry[1], entry[0]))
        return merged

    def frequent_extents(
        self, min_support: int = 2
    ) -> List[Tuple[Extent, int]]:
        merged: List[Tuple[Extent, int]] = []
        for shard in self._shards:
            merged.extend(shard.frequent_extents(min_support))
        merged.sort(key=lambda entry: (-entry[1], entry[0]))
        return merged

    def pair_frequencies(self) -> Dict[ExtentPair, int]:
        merged: Dict[ExtentPair, int] = {}
        for shard in self._shards:
            merged.update(shard.pair_frequencies())
        return merged

    def correlated_with(self, extent: Extent, k: int = 16
                        ) -> List[Tuple[Extent, int]]:
        """Partners most correlated with ``extent``, strongest first.

        Pairs are routed by pair hash, so an extent's partners may live
        on any shard; every shard's indexed lookup is merged.
        """
        merged: List[Tuple[Extent, int]] = []
        for shard in self._shards:
            merged.extend(shard.correlated_with(extent, k))
        merged.sort(key=lambda entry: (-entry[1], entry[0]))
        return merged[:k]

    def frequent_pairs_of_kind(
        self,
        kind: CorrelationKind,
        min_support: int = 2,
        purity: float = 0.5,
    ) -> List[Tuple[ExtentPair, int]]:
        merged: List[Tuple[ExtentPair, int]] = []
        for shard in self._shards:
            merged.extend(
                shard.frequent_pairs_of_kind(kind, min_support, purity)
            )
        merged.sort(key=lambda entry: (-entry[1], entry[0]))
        return merged

    def read_correlations(self, min_support: int = 2):
        return self.frequent_pairs_of_kind(CorrelationKind.READ, min_support)

    def write_correlations(self, min_support: int = 2):
        return self.frequent_pairs_of_kind(CorrelationKind.WRITE, min_support)

    def kind_summary(self) -> Dict[CorrelationKind, int]:
        summary = {kind: 0 for kind in CorrelationKind}
        for shard in self._shards:
            for kind, value in shard.kind_summary().items():
                summary[kind] += value
        return summary

    def type_tally(self, pair: ExtentPair) -> Optional[TypeTally]:
        return self._shards[hash(pair) % self.shards].type_tally(pair)

    # -- reporting and lifecycle -------------------------------------------

    def report(self) -> AnalyzerReport:
        """Aggregate counters merged across every shard."""
        return AnalyzerReport(
            transactions=self._transactions,
            extents_seen=self._extents_seen,
            pairs_seen=self._pairs_seen,
            item_stats=_merged_stats(s.items.stats for s in self._shards),
            correlation_stats=_merged_stats(
                s.correlations.stats for s in self._shards
            ),
        )

    def shard_occupancy(self) -> List[Tuple[int, int]]:
        """Resident ``(items, pairs)`` per shard -- balance diagnostics."""
        return [
            (len(shard.items), len(shard.correlations))
            for shard in self._shards
        ]

    def reset(self) -> None:
        for shard in self._shards:
            shard.reset()
        self._transactions = 0
        self._extents_seen = 0
        self._pairs_seen = 0
