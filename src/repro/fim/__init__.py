"""Offline and stream frequent itemset mining baselines."""

from .apriori import apriori
from .eclat import eclat
from .estdec import EstDecConfig, EstDecMiner
from .fpgrowth import fpgrowth
from .itemset import (
    SupportMap,
    TransactionDatabase,
    filter_max_size,
    frequent_pairs,
    support_of,
)
from .cminer import CMinerConfig, CMinerResult, cminer_from_records, cminer_mine
from .sketch import CountMinParams, CountMinSketch, SpaceSaving
from .rules import AssociationRule, RuleIndex, mine_rules, rules_from_analyzer
from .pairs import (
    exact_extent_counts,
    exact_pair_counts,
    itemsets_to_pair_counts,
    pairs_with_support,
    sorted_by_frequency,
)

__all__ = [
    "AssociationRule",
    "CMinerConfig",
    "CMinerResult",
    "cminer_from_records",
    "cminer_mine",
    "CountMinParams",
    "CountMinSketch",
    "SpaceSaving",
    "EstDecConfig",
    "RuleIndex",
    "mine_rules",
    "rules_from_analyzer",
    "EstDecMiner",
    "SupportMap",
    "TransactionDatabase",
    "apriori",
    "eclat",
    "exact_extent_counts",
    "exact_pair_counts",
    "filter_max_size",
    "fpgrowth",
    "frequent_pairs",
    "itemsets_to_pair_counts",
    "pairs_with_support",
    "sorted_by_frequency",
    "support_of",
]
