"""A C-Miner-style offline block-correlation miner (Li et al., FAST '04).

C-Miner is the system the paper positions itself against: it mines block
correlations *offline* from a stored access stream using frequent
*subsequence* mining with a gap constraint -- "a 'gap' measurement is
defined in C-Miner to limit the maximum distance between frequent
subsequences", creating a sliding window over the stream -- and emits block
association rules.  Its drawbacks motivate the paper: it needs the whole
trace on disk, runs after the fact, and ignores temporal locality.

This implementation follows C-Miner's pipeline, specialised (like the rest
of this repository) to correlations of two items:

1. the access stream is cut into fixed-length *segments* (C-Miner cuts the
   trace to bound sequence length);
2. within each segment, ordered pairs ``(a, b)`` with ``b`` following ``a``
   within ``gap`` positions are candidate subsequences, counted once per
   segment;
3. pairs with support >= ``min_support`` become rules ``a -> b`` with
   ``confidence = support(a -> b) / support(a)``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from .rules import AssociationRule

Item = Hashable


@dataclass(frozen=True)
class CMinerConfig:
    """Mining parameters (defaults follow C-Miner's published shape)."""

    segment_length: int = 100   # trace cut size
    gap: int = 10               # max distance within a subsequence
    min_support: int = 5
    min_confidence: float = 0.5

    def __post_init__(self) -> None:
        if self.segment_length < 2:
            raise ValueError("segment_length must be >= 2")
        if self.gap < 1:
            raise ValueError("gap must be >= 1")
        if self.min_support < 1:
            raise ValueError("min_support must be >= 1")
        if not 0.0 < self.min_confidence <= 1.0:
            raise ValueError("min_confidence must be in (0, 1]")


@dataclass
class CMinerResult:
    """Everything one mining run produces."""

    rules: List[AssociationRule]
    pair_supports: Dict[Tuple[Item, Item], int]
    item_supports: Dict[Item, int]
    segments: int

    def frequent_pairs(self) -> Dict[Tuple[Item, Item], int]:
        """Ordered frequent pairs and their supports."""
        return dict(self.pair_supports)


def _segments(stream: Sequence[Item], length: int) -> List[Sequence[Item]]:
    return [stream[i:i + length] for i in range(0, len(stream), length)]


def cminer_mine(stream: Sequence[Item],
                config: CMinerConfig = CMinerConfig()) -> CMinerResult:
    """Mine ordered correlations from an access stream, C-Miner style.

    ``stream`` is the flat sequence of accessed items (extents or block
    numbers) in trace order.  Supports are per-segment: an item or ordered
    pair counts at most once per segment, matching sequence-mining
    semantics (support = number of sequences containing the pattern).
    """
    item_supports: Counter = Counter()
    pair_supports: Counter = Counter()
    segments = _segments(stream, config.segment_length)

    for segment in segments:
        seen_items = set(segment)
        item_supports.update(seen_items)
        seen_pairs = set()
        for i, first in enumerate(segment):
            upper = min(len(segment), i + config.gap + 1)
            for j in range(i + 1, upper):
                second = segment[j]
                if second == first:
                    continue
                seen_pairs.add((first, second))
        pair_supports.update(seen_pairs)

    frequent = {
        pair: support
        for pair, support in pair_supports.items()
        if support >= config.min_support
    }

    rules: List[AssociationRule] = []
    for (antecedent, consequent), support in frequent.items():
        antecedent_support = item_supports[antecedent]
        confidence = support / antecedent_support
        if confidence < config.min_confidence:
            continue
        consequent_probability = (
            item_supports[consequent] / max(1, len(segments))
        )
        lift = (
            confidence / consequent_probability
            if consequent_probability > 0 else float("inf")
        )
        rules.append(AssociationRule(
            antecedent=antecedent,
            consequent=consequent,
            support=support,
            confidence=confidence,
            lift=lift,
        ))
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support,
                                 repr(rule.antecedent)))
    return CMinerResult(
        rules=rules,
        pair_supports=frequent,
        item_supports=dict(item_supports),
        segments=len(segments),
    )


def cminer_from_records(records, config: CMinerConfig = CMinerConfig()
                        ) -> CMinerResult:
    """Mine a trace-record list directly (items are the request extents).

    This is the offline path the paper contrasts with: the full record
    stream must exist (stored trace), and mining happens after the fact.
    """
    stream = [record.extent for record in records]
    return cminer_mine(stream, config)
