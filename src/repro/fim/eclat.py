"""Eclat frequent itemset mining (Zaki, TKDE 2000).

Eclat works on the *vertical* representation: each item maps to its tidset
(the set of transaction IDs containing it), and the search proceeds
depth-first, extending a prefix itemset by intersecting tidsets.  Memory is
bounded by the depth of the recursion (one tidset chain), which is why the
paper characterises eclat as reducing memory at the cost of running time
(Section II-B).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from .itemset import Item, SupportMap, TransactionDatabase, validate_min_support


def _vertical(database: TransactionDatabase) -> Dict[Item, Set[int]]:
    tidsets: Dict[Item, Set[int]] = {}
    for tid, transaction in enumerate(database):
        for item in transaction:
            tidsets.setdefault(item, set()).add(tid)
    return tidsets


def eclat(
    transactions: Iterable[Iterable[Item]],
    min_support: int,
    max_size: int = 2,
) -> SupportMap:
    """Mine frequent itemsets with support >= ``min_support`` depth-first."""
    validate_min_support(min_support)
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    database = (
        transactions
        if isinstance(transactions, TransactionDatabase)
        else TransactionDatabase(transactions)
    )

    tidsets = _vertical(database)
    frequent_items: List[Tuple[Item, Set[int]]] = sorted(
        (item, tids)
        for item, tids in tidsets.items()
        if len(tids) >= min_support
    )

    result: SupportMap = {}
    for item, tids in frequent_items:
        result[frozenset((item,))] = len(tids)

    def _extend(
        prefix: Tuple[Item, ...],
        prefix_tids: Set[int],
        suffix: List[Tuple[Item, Set[int]]],
    ) -> None:
        if len(prefix) >= max_size:
            return
        for index, (item, tids) in enumerate(suffix):
            joined = prefix_tids & tids
            if len(joined) < min_support:
                continue
            extended = prefix + (item,)
            result[frozenset(extended)] = len(joined)
            _extend(extended, joined, suffix[index + 1:])

    for index, (item, tids) in enumerate(frequent_items):
        _extend((item,), tids, frequent_items[index + 1:])
    return result
