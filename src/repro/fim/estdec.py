"""A simplified estDec+-style stream miner (Shin, Lee & Lee, 2014).

estDec+ maintains decayed support estimates for itemsets over a data
stream, bounding memory by pruning itemsets whose estimated support falls
below an insertion threshold and (in the CP-tree variant) by merging nodes.
The paper uses estDec+ as the representative stream-FIM baseline and finds
it inadequate for block I/O rates, largely because it chases *maximal*
itemsets.  This implementation is a faithful but deliberately simplified
variant specialised to what correlation detection needs:

* items and *pairs* only (no deeper lattice), matching the paper's
  observation that frequent pairs suffice;
* decayed counting: every stored count is multiplied by ``decay`` per
  transaction, so old patterns fade (the stream-adaptivity estDec is for);
* an insertion threshold and a hard memory cap with lowest-estimate
  eviction standing in for CP-tree node merging.

It serves two roles: a baseline whose accuracy/throughput the benchmarks
compare against the paper's synopsis, and a second online method for the
concept-drift experiment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Tuple

Item = Hashable


@dataclass
class EstDecConfig:
    """Parameters of the decayed stream miner.

    ``max_itemset_size`` controls how deep into the itemset lattice the
    miner monitors.  The default of 2 is the pair-specialised variant this
    repository's analyses need; raising it approximates real estDec+'s
    pursuit of larger (towards maximal) itemsets -- each transaction of
    ``n`` items then updates every subset up to that size, which is
    exactly the cost explosion the paper identifies as the reason stream
    FIM "is not adequate to handle the pace of disk I/O streams".
    """

    decay: float = 0.999          # per-transaction decay factor d
    insertion_threshold: float = 1.0   # minimum decayed count to keep an entry
    max_entries: int = 65536      # hard memory cap (items + itemsets)
    max_itemset_size: int = 2     # lattice depth monitored

    def __post_init__(self) -> None:
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")
        if self.insertion_threshold <= 0:
            raise ValueError("insertion_threshold must be > 0")
        if self.max_entries < 2:
            raise ValueError("max_entries must be >= 2")
        if self.max_itemset_size < 2:
            raise ValueError("max_itemset_size must be >= 2")


class EstDecMiner:
    """Decayed frequent-pair mining over a transaction stream.

    Counts are stored lazily: each entry remembers the transaction index at
    which it was last updated, and decay is applied on access as
    ``count * decay ** (now - last_update)``.  This keeps per-transaction
    work proportional to the transaction size squared, not the table size.
    """

    def __init__(self, config: EstDecConfig = None) -> None:
        self.config = config or EstDecConfig()
        self._counts: Dict[FrozenSet[Item], Tuple[float, int]] = {}
        self._transactions = 0

    @property
    def transactions(self) -> int:
        return self._transactions

    def __len__(self) -> int:
        return len(self._counts)

    def _decayed(self, key: FrozenSet[Item]) -> float:
        entry = self._counts.get(key)
        if entry is None:
            return 0.0
        count, updated = entry
        return count * (self.config.decay ** (self._transactions - updated))

    def _bump(self, key: FrozenSet[Item]) -> None:
        new_count = self._decayed(key) + 1.0
        self._counts[key] = (new_count, self._transactions)

    def _prune(self) -> None:
        """Drop decayed-out entries; if still over cap, evict the weakest."""
        threshold = self.config.insertion_threshold
        stale = [key for key in self._counts if self._decayed(key) < threshold]
        for key in stale:
            del self._counts[key]
        overflow = len(self._counts) - self.config.max_entries
        if overflow > 0:
            weakest = sorted(self._counts, key=self._decayed)[:overflow]
            for key in weakest:
                del self._counts[key]

    def process(self, transaction: Sequence[Item]) -> None:
        """Fold one transaction into the decayed counts.

        Every subset of the transaction up to ``max_itemset_size`` items is
        updated -- C(n, 1) + C(n, 2) + ... operations per transaction,
        which is why lattice depth dominates stream-mining cost.
        """
        self._transactions += 1
        distinct = sorted(set(transaction), key=repr)
        for item in distinct:
            self._bump(frozenset((item,)))
        depth = min(self.config.max_itemset_size, len(distinct))
        for size in range(2, depth + 1):
            for subset in itertools.combinations(distinct, size):
                self._bump(frozenset(subset))
        if len(self._counts) > self.config.max_entries:
            self._prune()

    def process_stream(self, transactions: Iterable[Sequence[Item]]) -> None:
        for transaction in transactions:
            self.process(transaction)

    def frequent_pairs(self, min_support: float) -> List[Tuple[FrozenSet[Item], float]]:
        """Pairs whose decayed support estimate is >= ``min_support``."""
        return self.frequent_itemsets(min_support, size=2)

    def frequent_itemsets(
        self, min_support: float, size: int = None
    ) -> List[Tuple[FrozenSet[Item], float]]:
        """Itemsets (of ``size`` items, or any size >= 2 when ``None``)
        whose decayed support estimate is >= ``min_support``."""
        itemsets = [
            (key, self._decayed(key))
            for key in self._counts
            if (len(key) == size if size is not None else len(key) >= 2)
        ]
        selected = [
            (key, count) for key, count in itemsets if count >= min_support
        ]
        selected.sort(key=lambda entry: (-entry[1], repr(sorted(entry[0], key=repr))))
        return selected
