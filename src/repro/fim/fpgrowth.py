"""FP-growth frequent itemset mining (Han, Pei & Yin, SIGMOD 2000).

FP-growth compresses the database into a prefix tree (the FP-tree) whose
paths share common frequent-item prefixes, then mines the tree recursively
by building *conditional* FP-trees for each item, without candidate
generation.  The paper positions it as "a resource trade-off between
apriori and eclat" (Section II-B).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from .itemset import Item, SupportMap, TransactionDatabase, validate_min_support


class _FpNode:
    """One FP-tree node: an item, a count, and tree/header links."""

    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item: Optional[Item], parent: Optional["_FpNode"]) -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: Dict[Item, "_FpNode"] = {}
        self.link: Optional["_FpNode"] = None


class _FpTree:
    """An FP-tree with its header table of per-item node chains."""

    def __init__(self) -> None:
        self.root = _FpNode(None, None)
        self.header: Dict[Item, _FpNode] = {}
        self._header_tail: Dict[Item, _FpNode] = {}

    def insert(self, items: List[Item], count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FpNode(item, node)
                node.children[item] = child
                if item in self._header_tail:
                    self._header_tail[item].link = child
                else:
                    self.header[item] = child
                self._header_tail[item] = child
            child.count += count
            node = child

    def node_chain(self, item: Item) -> List[_FpNode]:
        nodes: List[_FpNode] = []
        node = self.header.get(item)
        while node is not None:
            nodes.append(node)
            node = node.link
        return nodes

    def prefix_paths(self, item: Item) -> List[Tuple[List[Item], int]]:
        """Conditional pattern base: the path above each node of ``item``."""
        paths: List[Tuple[List[Item], int]] = []
        for node in self.node_chain(item):
            path: List[Item] = []
            ancestor = node.parent
            while ancestor is not None and ancestor.item is not None:
                path.append(ancestor.item)
                ancestor = ancestor.parent
            path.reverse()
            if path:
                paths.append((path, node.count))
        return paths


def _build_tree(
    weighted_transactions: Iterable[Tuple[List[Item], int]],
    min_support: int,
) -> Tuple[_FpTree, Counter]:
    counts: Counter = Counter()
    materialized = list(weighted_transactions)
    for items, weight in materialized:
        for item in items:
            counts[item] += weight
    frequent = {item for item, count in counts.items() if count >= min_support}
    order = {
        item: position
        for position, (item, _count) in enumerate(
            sorted(counts.items(), key=lambda entry: (-entry[1], repr(entry[0])))
        )
    }
    tree = _FpTree()
    for items, weight in materialized:
        kept = sorted(
            (item for item in items if item in frequent),
            key=order.__getitem__,
        )
        if kept:
            tree.insert(kept, weight)
    return tree, counts


def fpgrowth(
    transactions: Iterable[Iterable[Item]],
    min_support: int,
    max_size: int = 2,
) -> SupportMap:
    """Mine frequent itemsets with support >= ``min_support`` via FP-trees."""
    validate_min_support(min_support)
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    database = (
        transactions
        if isinstance(transactions, TransactionDatabase)
        else TransactionDatabase(transactions)
    )

    result: SupportMap = {}

    def _mine(tree: _FpTree, counts: Counter, suffix: Tuple[Item, ...]) -> None:
        items_by_support = sorted(
            (item for item in tree.header if counts[item] >= min_support),
            key=lambda item: (counts[item], repr(item)),
        )
        for item in items_by_support:
            support = sum(node.count for node in tree.node_chain(item))
            if support < min_support:
                continue
            found = suffix + (item,)
            result[frozenset(found)] = support
            if len(found) >= max_size:
                continue
            conditional = tree.prefix_paths(item)
            if conditional:
                subtree, subcounts = _build_tree(conditional, min_support)
                _mine(subtree, subcounts, found)

    tree, counts = _build_tree(
        ((list(transaction), 1) for transaction in database), min_support
    )
    _mine(tree, counts, ())
    return result
