"""Shared scaffolding for frequent itemset mining.

The offline baselines (apriori, eclat, fp-growth) all consume a
*transaction database* -- a list of transactions, each a set of hashable,
orderable items (extents, in this repository's use) -- and produce frequent
itemsets: a mapping from ``frozenset`` of items to absolute support count.
FIM algorithms take "a series of transactions as input, and output
associated items with a frequency greater than a specified minimum support"
(paper Section II-A).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Tuple

Item = Hashable
Itemset = FrozenSet[Item]
SupportMap = Dict[Itemset, int]


class TransactionDatabase:
    """An immutable, deduplicated transaction database."""

    def __init__(self, transactions: Iterable[Iterable[Item]]) -> None:
        self._transactions: List[Tuple[Item, ...]] = [
            tuple(sorted(set(transaction))) for transaction in transactions
        ]

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self):
        return iter(self._transactions)

    def __getitem__(self, index: int) -> Tuple[Item, ...]:
        return self._transactions[index]

    def item_counts(self) -> Counter:
        """Support of every individual item."""
        counts: Counter = Counter()
        for transaction in self._transactions:
            counts.update(transaction)
        return counts

    def items(self) -> List[Item]:
        """All distinct items, sorted."""
        return sorted(self.item_counts())


def validate_min_support(min_support: int) -> None:
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")


def filter_max_size(itemsets: SupportMap, max_size: int) -> SupportMap:
    """Keep only itemsets of at most ``max_size`` items."""
    return {
        itemset: support
        for itemset, support in itemsets.items()
        if len(itemset) <= max_size
    }


def frequent_pairs(itemsets: SupportMap) -> SupportMap:
    """Extract exactly the 2-itemsets.

    The paper's key observation about FIM baselines is that they spend
    their effort on maximal itemsets while "frequent pairs alone is
    sufficient for identifying data access correlations".
    """
    return {
        itemset: support
        for itemset, support in itemsets.items()
        if len(itemset) == 2
    }


def support_of(database: TransactionDatabase, itemset: Sequence[Item]) -> int:
    """Exact support of one itemset by a full scan (reference oracle)."""
    target = frozenset(itemset)
    return sum(1 for transaction in database if target.issubset(transaction))
