"""Exact extent-pair counting: the offline ground truth.

The paper's accuracy evaluation compares the online synopsis against the
complete list of extent-correlation frequencies produced by offline FIM over
the recorded transactions.  Since only pairs matter, the exact ground truth
is a single counting pass over every transaction's ``C(N, 2)`` pairs --
cheap enough to serve as the oracle for Figures 5, 6, 9 and the >90 %
headline, and as the cross-check for the three FIM implementations.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.extent import Extent, ExtentPair, unique_pairs


def exact_pair_counts(
    transactions: Iterable[Sequence[Extent]],
) -> Dict[ExtentPair, int]:
    """Frequency of every extent pair across all transactions."""
    counts: Counter = Counter()
    for extents in transactions:
        counts.update(unique_pairs(extents))
    return dict(counts)


def exact_extent_counts(
    transactions: Iterable[Sequence[Extent]],
) -> Dict[Extent, int]:
    """Frequency of every individual extent across all transactions."""
    counts: Counter = Counter()
    for extents in transactions:
        counts.update(set(extents))
    return dict(counts)


def pairs_with_support(
    counts: Dict[ExtentPair, int], min_support: int
) -> Dict[ExtentPair, int]:
    """Filter a pair-count map by minimum support."""
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    return {
        pair: count for pair, count in counts.items() if count >= min_support
    }


def sorted_by_frequency(
    counts: Dict[ExtentPair, int],
) -> List[Tuple[ExtentPair, int]]:
    """Pairs sorted most-frequent-first (ties broken canonically)."""
    return sorted(counts.items(), key=lambda entry: (-entry[1], entry[0]))


def itemsets_to_pair_counts(itemsets: Dict) -> Dict[ExtentPair, int]:
    """Convert a FIM result's 2-itemsets into an extent-pair count map."""
    out: Dict[ExtentPair, int] = {}
    for itemset, support in itemsets.items():
        if len(itemset) != 2:
            continue
        a, b = sorted(itemset)
        out[ExtentPair(a, b)] = support
    return out
