"""Association rules over detected correlations.

C-Miner -- the offline system the paper builds on -- emits *block
association rules* of the form "an access to A implies an access to B"
with a confidence.  Rules are the actionable form of a correlation: a
prefetcher follows the rule's direction, a placement engine weighs its
confidence.  This module derives rules from pair and item frequencies
(whether produced by offline FIM or by the online synopsis):

* ``support(A -> B)``   = count(A, B together)
* ``confidence(A -> B)`` = count(A, B) / count(A)
* ``lift(A -> B)``       = confidence / P(B), the independence ratio

Both directions of every qualifying pair are considered, since confidence
is asymmetric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.extent import Extent, ExtentPair


@dataclass(frozen=True)
class AssociationRule:
    """A directional rule ``antecedent -> consequent``."""

    antecedent: Extent
    consequent: Extent
    support: int        # co-occurrence count
    confidence: float   # support / count(antecedent)
    lift: float         # confidence / P(consequent)

    def __str__(self) -> str:
        return (
            f"{self.antecedent} -> {self.consequent} "
            f"(supp={self.support}, conf={self.confidence:.2f}, "
            f"lift={self.lift:.1f})"
        )


def mine_rules(
    pair_counts: Mapping[ExtentPair, int],
    item_counts: Mapping[Extent, int],
    transactions: int,
    min_support: int = 2,
    min_confidence: float = 0.5,
) -> List[AssociationRule]:
    """Derive directional rules from pair and item frequencies.

    ``transactions`` is the total transaction count (the probability base
    for lift).  A rule ``A -> B`` is emitted when the pair's support meets
    ``min_support`` and ``count(A, B) / count(A)`` meets
    ``min_confidence``.  Rules are returned strongest-first by
    (confidence, support).
    """
    if transactions < 1:
        raise ValueError(f"transactions must be >= 1, got {transactions}")
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError(
            f"min_confidence must be in (0, 1], got {min_confidence}"
        )

    rules: List[AssociationRule] = []
    for pair, together in pair_counts.items():
        if together < min_support:
            continue
        for antecedent, consequent in (
            (pair.first, pair.second),
            (pair.second, pair.first),
        ):
            antecedent_count = item_counts.get(antecedent, 0)
            if antecedent_count <= 0:
                continue
            confidence = min(1.0, together / antecedent_count)
            if confidence < min_confidence:
                continue
            consequent_probability = (
                item_counts.get(consequent, 0) / transactions
            )
            lift = (
                confidence / consequent_probability
                if consequent_probability > 0
                else float("inf")
            )
            rules.append(AssociationRule(
                antecedent=antecedent,
                consequent=consequent,
                support=together,
                confidence=confidence,
                lift=lift,
            ))
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support,
                                 rule.antecedent, rule.consequent))
    return rules


def rules_from_analyzer(
    analyzer,
    min_support: int = 2,
    min_confidence: float = 0.5,
) -> List[AssociationRule]:
    """Mine rules straight out of an online analyzer's synopsis.

    The synopsis tallies are lower bounds of the true counts (eviction can
    reset them), so the derived confidences are estimates -- which is the
    trade the whole framework makes for bounded memory.
    """
    pair_counts = analyzer.pair_frequencies()
    item_counts = {
        extent: tally for extent, tally, _tier in analyzer.items.items()
    }
    transactions = max(1, analyzer.report().transactions)
    return mine_rules(
        pair_counts, item_counts, transactions,
        min_support=min_support, min_confidence=min_confidence,
    )


class RuleIndex:
    """Rules indexed by antecedent, for O(1) prefetch-style lookups."""

    def __init__(self, rules: Iterable[AssociationRule]) -> None:
        self._by_antecedent: Dict[Extent, List[AssociationRule]] = {}
        for rule in rules:
            self._by_antecedent.setdefault(rule.antecedent, []).append(rule)
        for entries in self._by_antecedent.values():
            entries.sort(key=lambda rule: (-rule.confidence, -rule.support))

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._by_antecedent.values())

    def consequents_of(self, antecedent: Extent,
                       limit: Optional[int] = None) -> List[Extent]:
        """Predicted next extents after ``antecedent``, strongest first."""
        entries = self._by_antecedent.get(antecedent, [])
        if limit is not None:
            entries = entries[:limit]
        return [rule.consequent for rule in entries]

    def rules_of(self, antecedent: Extent) -> List[AssociationRule]:
        return list(self._by_antecedent.get(antecedent, []))
