"""Classic frequency sketches as bounded-memory baselines.

The paper's synopsis is one point in the design space of bounded-memory
frequent-item structures.  The canonical alternatives from the streaming
literature -- **Space-Saving** (Metwally, Agrawal & El Abbadi, 2005) and
the **Count-Min sketch** (Cormode & Muthukrishnan, 2005) -- are the FIM
baselines this module has always exposed.  The structures themselves now
live in :mod:`repro.core.sketches`, shared with the synopsis backends
(:mod:`repro.engine.backends`); this module re-exports them so every
existing FIM-baseline import keeps working unchanged.

Both differ from the paper's structure in a crucial way: they optimise
pure *frequency* with no recency dimension, so they cannot forget old
concepts (compare Fig. 10) -- the trade the benchmarks make visible.
"""

from __future__ import annotations

from ..core.sketches import CountMinParams, CountMinSketch, SpaceSaving

__all__ = ["CountMinParams", "CountMinSketch", "SpaceSaving"]
