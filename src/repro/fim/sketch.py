"""Classic frequency sketches as bounded-memory baselines.

The paper's synopsis is one point in the design space of bounded-memory
frequent-item structures.  The canonical alternatives from the streaming
literature are implemented here for comparison:

* **Space-Saving** (Metwally, Agrawal & El Abbadi, 2005) -- maintains
  exactly ``capacity`` counters; a new item takes over the minimum counter
  (inheriting its count as an overestimate).  Guarantees: every item with
  true frequency > N/capacity is in the summary, and each counter
  overestimates by at most the minimum counter value.
* **Count-Min sketch** (Cormode & Muthukrishnan, 2005) -- a ``depth x
  width`` counter array; estimates never underestimate and overestimate
  by at most ``e * N / width`` with probability ``1 - e^-depth``.  Paired
  with a top-k heap it yields a frequent-pair summary.

Both differ from the paper's structure in a crucial way: they optimise
pure *frequency* with no recency dimension, so they cannot forget old
concepts (compare Fig. 10) -- the trade the benchmarks make visible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Generic, Hashable, List, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)


class SpaceSaving(Generic[K]):
    """The Space-Saving heavy-hitters summary.

    ``update(key)`` is O(log capacity) via a lazy min-heap.  ``count(key)``
    returns the (over)estimate and ``error(key)`` its maximum overcount.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._counts: Dict[K, int] = {}
        self._errors: Dict[K, int] = {}
        self._heap: List[Tuple[int, K]] = []  # lazy (count, key) min-heap
        self.total = 0

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: K) -> bool:
        return key in self._counts

    def _push(self, key: K) -> None:
        heapq.heappush(self._heap, (self._counts[key], key))

    def _pop_minimum(self) -> K:
        """Pop the key with the (currently) smallest count, lazily fixing
        stale heap entries."""
        while True:
            count, key = heapq.heappop(self._heap)
            current = self._counts.get(key)
            if current == count:
                return key
            if current is not None:
                heapq.heappush(self._heap, (current, key))

    def update(self, key: K, increment: int = 1) -> None:
        """Record ``increment`` occurrences of ``key``."""
        if increment < 1:
            raise ValueError(f"increment must be >= 1, got {increment}")
        self.total += increment
        if key in self._counts:
            self._counts[key] += increment
            self._push(key)
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = increment
            self._errors[key] = 0
            self._push(key)
            return
        victim = self._pop_minimum()
        inherited = self._counts.pop(victim)
        self._errors.pop(victim, None)
        self._counts[key] = inherited + increment
        self._errors[key] = inherited
        self._push(key)

    def count(self, key: K) -> int:
        """Estimated count (0 when not tracked); never underestimates
        tracked keys."""
        return self._counts.get(key, 0)

    def error(self, key: K) -> int:
        """Maximum overestimate of ``key``'s count."""
        return self._errors.get(key, 0)

    def guaranteed_count(self, key: K) -> int:
        """A lower bound on the true count: estimate minus error."""
        return self.count(key) - self.error(key)

    def frequent(self, min_count: int = 1) -> List[Tuple[K, int]]:
        """Tracked keys with estimate >= ``min_count``, strongest first."""
        selected = [
            (key, count) for key, count in self._counts.items()
            if count >= min_count
        ]
        selected.sort(key=lambda entry: (-entry[1], repr(entry[0])))
        return selected


@dataclass(frozen=True)
class CountMinParams:
    """Sketch dimensions; defaults give ~0.1% relative error w.h.p."""

    width: int = 2048
    depth: int = 4

    def __post_init__(self) -> None:
        if self.width < 1 or self.depth < 1:
            raise ValueError("width and depth must be >= 1")


class CountMinSketch(Generic[K]):
    """A Count-Min sketch with an optional top-k heavy-hitter heap."""

    def __init__(self, params: Optional[CountMinParams] = None,
                 track_top: int = 0) -> None:
        self.params = params or CountMinParams()
        self._rows: List[List[int]] = [
            [0] * self.params.width for _ in range(self.params.depth)
        ]
        self.total = 0
        self._track_top = track_top
        self._top: Dict[K, int] = {}

    def _indexes(self, key: K) -> List[int]:
        base = hash(key)
        return [
            hash((row, base)) % self.params.width
            for row in range(self.params.depth)
        ]

    def update(self, key: K, increment: int = 1) -> None:
        if increment < 1:
            raise ValueError(f"increment must be >= 1, got {increment}")
        self.total += increment
        estimate = None
        for row, index in zip(self._rows, self._indexes(key)):
            row[index] += increment
            value = row[index]
            estimate = value if estimate is None else min(estimate, value)
        if self._track_top:
            self._top[key] = estimate
            if len(self._top) > 2 * self._track_top:
                keep = sorted(self._top.items(),
                              key=lambda entry: -entry[1])[:self._track_top]
                self._top = dict(keep)

    def count(self, key: K) -> int:
        """Point estimate; never underestimates the true count."""
        return min(
            row[index]
            for row, index in zip(self._rows, self._indexes(key))
        )

    def heavy_hitters(self, min_count: int = 1) -> List[Tuple[K, int]]:
        """Tracked candidates with estimate >= ``min_count`` (requires
        ``track_top`` > 0), strongest first."""
        selected = [
            (key, self.count(key))
            for key in self._top
            if self.count(key) >= min_count
        ]
        selected.sort(key=lambda entry: (-entry[1], repr(entry[0])))
        if self._track_top:
            selected = selected[: self._track_top]
        return selected

    @property
    def memory_counters(self) -> int:
        return self.params.width * self.params.depth
