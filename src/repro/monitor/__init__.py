"""Real-time monitoring: events, latency tracking, windows, transactions."""

from .batch import OP_READ, OP_WRITE, EventBatch, TransactionBatch
from .events import BlockIOEvent
from .histogram import LatencyHistogram, PercentileLatencyWindow
from .latency import EwmaLatencyTracker
from .merge import MergerStats, RequestMerger
from .monitor import (
    DEFAULT_MAX_TRANSACTION_SIZE,
    ClockPolicy,
    GroupingMode,
    Monitor,
    MonitorStats,
    TransactionRecorder,
    TransactionSink,
)
from .transaction import Transaction, dedup_events
from .window import DynamicLatencyWindow, StaticWindow, WindowPolicy

__all__ = [
    "BlockIOEvent",
    "ClockPolicy",
    "EventBatch",
    "OP_READ",
    "OP_WRITE",
    "TransactionBatch",
    "LatencyHistogram",
    "PercentileLatencyWindow",
    "DEFAULT_MAX_TRANSACTION_SIZE",
    "DynamicLatencyWindow",
    "EwmaLatencyTracker",
    "GroupingMode",
    "Monitor",
    "MergerStats",
    "MonitorStats",
    "RequestMerger",
    "StaticWindow",
    "Transaction",
    "TransactionRecorder",
    "TransactionSink",
    "WindowPolicy",
    "dedup_events",
]
