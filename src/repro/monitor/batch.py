"""Columnar event and transaction batches (the columnar ingest lane).

The per-event ingest path allocates one :class:`~repro.monitor.events.\
BlockIOEvent` dataclass per request and pays Python attribute/dispatch
overhead per field access; at hundreds of thousands of events per second
that object churn dominates the hot path.  This module provides the
structure-of-arrays alternative:

* :class:`EventBatch` -- issue events as parallel numpy columns
  (timestamp/pid/op/start/length/latency/pgid).  Produced by trace
  readers, workload generators, and the server's BATCH lane; consumed by
  :meth:`Monitor.on_batch <repro.monitor.monitor.Monitor.on_batch>`,
  which cuts transactions with vectorized window arithmetic.
* :class:`TransactionBatch` -- finished transactions in columnar form,
  carrying two views of the same cut:

  - the **distinct view** (``starts``/``lengths``/``ops`` +
    ``offsets``): per-transaction extents already deduplicated (keep-first
    operation) and sorted -- exactly the ``sorted(op_of)`` order the
    analyzers iterate, so the engine hot loop consumes it directly;
  - the **raw view** (``raw_*`` + ``raw_offsets``): the transactions'
    events in arrival order after the monitor's dedup, sufficient to
    materialize :class:`~repro.monitor.transaction.Transaction` objects
    for object sinks (recorders, custom callbacks).

Both batch types round-trip losslessly to the object representation
(``latency=None`` maps to NaN), and every consumer produces results
identical to the per-event path -- the columnar lane is a faster encoding
of the same semantics, not a different algorithm.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..trace.record import OpType, TraceRecord
from .events import BlockIOEvent
from .transaction import Transaction

#: Operation codes used in the ``ops`` columns.
OP_READ = 0
OP_WRITE = 1

_OP_TO_CODE = {OpType.READ: OP_READ, OpType.WRITE: OP_WRITE}
_OP_FROM_CODE = (OpType.READ, OpType.WRITE)


class EventBatch:
    """A batch of block I/O issue events in columnar form.

    Columns (parallel arrays, one row per event):

    * ``timestamps`` -- float64 issue times in seconds;
    * ``pids`` -- int64 process IDs;
    * ``ops`` -- uint8 operation codes (:data:`OP_READ` / :data:`OP_WRITE`);
    * ``starts`` / ``lengths`` -- int64 extent coordinates in blocks;
    * ``latencies`` -- float64 measured completion latencies, NaN when
      unknown (the columnar spelling of ``latency=None``);
    * ``pgids`` -- int64 process-group IDs.
    """

    __slots__ = ("timestamps", "pids", "ops", "starts", "lengths",
                 "latencies", "pgids")

    def __init__(
        self,
        timestamps,
        pids,
        ops,
        starts,
        lengths,
        latencies=None,
        pgids=None,
    ) -> None:
        self.timestamps = np.ascontiguousarray(timestamps, dtype=np.float64)
        n = len(self.timestamps)
        self.pids = np.ascontiguousarray(pids, dtype=np.int64)
        self.ops = np.ascontiguousarray(ops, dtype=np.uint8)
        self.starts = np.ascontiguousarray(starts, dtype=np.int64)
        self.lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        self.latencies = (
            np.full(n, np.nan, dtype=np.float64) if latencies is None
            else np.ascontiguousarray(latencies, dtype=np.float64)
        )
        self.pgids = (
            np.zeros(n, dtype=np.int64) if pgids is None
            else np.ascontiguousarray(pgids, dtype=np.int64)
        )
        for name in ("pids", "ops", "starts", "lengths", "latencies",
                     "pgids"):
            if len(getattr(self, name)) != n:
                raise ValueError(
                    f"column {name!r} has {len(getattr(self, name))} rows, "
                    f"expected {n}"
                )
        if n:
            if int(self.starts.min()) < 0:
                raise ValueError("event starts must be >= 0")
            if int(self.lengths.min()) <= 0:
                raise ValueError("event lengths must be > 0")
            if int(self.ops.max()) > OP_WRITE:
                raise ValueError("op codes must be OP_READ or OP_WRITE")

    def __len__(self) -> int:
        return len(self.timestamps)

    def __repr__(self) -> str:
        return f"EventBatch(n={len(self)})"

    @classmethod
    def from_events(cls, events: Sequence[BlockIOEvent]) -> "EventBatch":
        """Columnar form of a sequence of event objects."""
        op_code = _OP_TO_CODE
        nan = float("nan")
        return cls(
            [e.timestamp for e in events],
            [e.pid for e in events],
            [op_code[e.op] for e in events],
            [e.start for e in events],
            [e.length for e in events],
            [nan if e.latency is None else e.latency for e in events],
            [e.pgid for e in events],
        )

    @classmethod
    def from_records(
        cls,
        records: Sequence[TraceRecord],
        timestamps: Optional[Sequence[float]] = None,
        latencies: Optional[Sequence[Optional[float]]] = None,
        pgid: int = 0,
    ) -> "EventBatch":
        """Columnar issue events from trace records.

        ``timestamps``/``latencies`` override the records' own values (the
        replayer supplies accelerated issue times and measured latencies),
        mirroring :meth:`BlockIOEvent.from_record`.
        """
        op_code = _OP_TO_CODE
        nan = float("nan")
        if timestamps is None:
            timestamps = [r.timestamp for r in records]
        if latencies is None:
            lat = [nan if r.latency is None else r.latency for r in records]
        else:
            lat = [nan if value is None else value for value in latencies]
        n = len(records)
        return cls(
            timestamps,
            [r.pid for r in records],
            [op_code[r.op] for r in records],
            [r.start for r in records],
            [r.length for r in records],
            lat,
            np.full(n, pgid, dtype=np.int64),
        )

    def iter_events(self) -> Iterator[BlockIOEvent]:
        """Yield the batch as event objects (the scalar-lane adapter)."""
        op_from = _OP_FROM_CODE
        rows = zip(
            self.timestamps.tolist(), self.pids.tolist(), self.ops.tolist(),
            self.starts.tolist(), self.lengths.tolist(),
            self.latencies.tolist(), self.pgids.tolist(),
        )
        for ts, pid, op, start, length, latency, pgid in rows:
            yield BlockIOEvent(
                ts, pid, op_from[op], start, length,
                None if latency != latency else latency, pgid,
            )

    def to_events(self) -> List[BlockIOEvent]:
        return list(self.iter_events())


class TransactionBatch:
    """Finished transactions in columnar form (see module docstring).

    ``offsets`` has one more entry than there are transactions;
    transaction ``t``'s distinct extents are rows
    ``offsets[t]:offsets[t+1]`` of ``starts``/``lengths``/``ops``
    (sorted by ``(start, length)``, deduplicated, keep-first op).  The
    ``raw_*`` columns hold the same transactions' events in arrival
    order, sliced by ``raw_offsets``.
    """

    __slots__ = ("starts", "lengths", "ops", "offsets",
                 "raw_timestamps", "raw_pids", "raw_ops", "raw_starts",
                 "raw_lengths", "raw_latencies", "raw_pgids", "raw_offsets")

    def __init__(self, starts, lengths, ops, offsets,
                 raw_timestamps, raw_pids, raw_ops, raw_starts,
                 raw_lengths, raw_latencies, raw_pgids,
                 raw_offsets) -> None:
        self.starts = np.ascontiguousarray(starts, dtype=np.int64)
        self.lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        self.ops = np.ascontiguousarray(ops, dtype=np.uint8)
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.raw_timestamps = np.ascontiguousarray(raw_timestamps,
                                                   dtype=np.float64)
        self.raw_pids = np.ascontiguousarray(raw_pids, dtype=np.int64)
        self.raw_ops = np.ascontiguousarray(raw_ops, dtype=np.uint8)
        self.raw_starts = np.ascontiguousarray(raw_starts, dtype=np.int64)
        self.raw_lengths = np.ascontiguousarray(raw_lengths, dtype=np.int64)
        self.raw_latencies = np.ascontiguousarray(raw_latencies,
                                                  dtype=np.float64)
        self.raw_pgids = np.ascontiguousarray(raw_pgids, dtype=np.int64)
        self.raw_offsets = np.ascontiguousarray(raw_offsets, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def __repr__(self) -> str:
        return (f"TransactionBatch(transactions={len(self)}, "
                f"extents={len(self.starts)})")

    def counts(self) -> np.ndarray:
        """Distinct extents per transaction."""
        return np.diff(self.offsets)

    @classmethod
    def from_transactions(
        cls, transactions: Iterable[Transaction]
    ) -> "TransactionBatch":
        """Columnar form of monitor transaction objects.

        Builds the distinct view with the analyzers' exact dedup rule
        (keep-first operation, extents sorted by ``(start, length)``) so
        engines consuming the result perform the same table accesses as
        :meth:`process_transaction` on the originals.
        """
        op_code = _OP_TO_CODE
        nan = float("nan")
        d_starts: List[int] = []
        d_lengths: List[int] = []
        d_ops: List[int] = []
        offsets: List[int] = [0]
        r_ts: List[float] = []
        r_pid: List[int] = []
        r_op: List[int] = []
        r_start: List[int] = []
        r_len: List[int] = []
        r_lat: List[float] = []
        r_pgid: List[int] = []
        raw_offsets: List[int] = [0]
        for transaction in transactions:
            op_of: dict = {}
            keep_first = op_of.setdefault
            for event in transaction.events:
                keep_first((event.start, event.length), op_code[event.op])
                r_ts.append(event.timestamp)
                r_pid.append(event.pid)
                r_op.append(op_code[event.op])
                r_start.append(event.start)
                r_len.append(event.length)
                r_lat.append(nan if event.latency is None else event.latency)
                r_pgid.append(event.pgid)
            for start, length in sorted(op_of):
                d_starts.append(start)
                d_lengths.append(length)
                d_ops.append(op_of[(start, length)])
            offsets.append(len(d_starts))
            raw_offsets.append(len(r_ts))
        return cls(d_starts, d_lengths, d_ops, offsets,
                   r_ts, r_pid, r_op, r_start, r_len, r_lat, r_pgid,
                   raw_offsets)

    def transactions(self) -> List[Transaction]:
        """Materialize :class:`Transaction` objects from the raw view."""
        op_from = _OP_FROM_CODE
        out: List[Transaction] = []
        offsets = self.raw_offsets.tolist()
        rows = list(zip(
            self.raw_timestamps.tolist(), self.raw_pids.tolist(),
            self.raw_ops.tolist(), self.raw_starts.tolist(),
            self.raw_lengths.tolist(), self.raw_latencies.tolist(),
            self.raw_pgids.tolist(),
        ))
        for t in range(len(self)):
            events = [
                BlockIOEvent(ts, pid, op_from[op], start, length,
                             None if latency != latency else latency, pgid)
                for ts, pid, op, start, length, latency, pgid
                in rows[offsets[t]:offsets[t + 1]]
            ]
            out.append(Transaction(events))
        return out
