"""Block-layer I/O events.

The paper's monitoring module listens for blktrace "issue" events: the
moment a block I/O request is handed to the device driver.  An event carries
the same fields blktrace reports -- timestamp, event type, process ID,
starting block, and size -- plus the measured completion latency, which the
dynamic transaction window consumes (Section III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.extent import Extent
from ..trace.record import OpType, TraceRecord


@dataclass(frozen=True)
class BlockIOEvent:
    """One block-layer "issue" event.

    ``timestamp`` is the issue time in seconds on the replay clock;
    ``latency`` is the request's measured completion latency when known
    (the monitor's latency tracker feeds on it), else ``None``.
    ``pgid`` is the process group, used by the monitor's PID filter.
    """

    timestamp: float
    pid: int
    op: OpType
    start: int
    length: int
    latency: Optional[float] = None
    pgid: int = 0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"event length must be > 0, got {self.length}")
        if self.start < 0:
            raise ValueError(f"event start must be >= 0, got {self.start}")

    @property
    def extent(self) -> Extent:
        return Extent(self.start, self.length)

    @classmethod
    def from_record(
        cls,
        record: TraceRecord,
        timestamp: Optional[float] = None,
        latency: Optional[float] = None,
        pgid: int = 0,
    ) -> "BlockIOEvent":
        """Build an issue event from a trace record.

        ``timestamp`` overrides the record's own timestamp (the replayer
        supplies the accelerated issue time); ``latency`` overrides the
        recorded latency with the measured one.
        """
        return cls(
            timestamp=record.timestamp if timestamp is None else timestamp,
            pid=record.pid,
            op=record.op,
            start=record.start,
            length=record.length,
            latency=record.latency if latency is None else latency,
            pgid=pgid,
        )
