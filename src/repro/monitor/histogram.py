"""Log-bucketed latency histograms and percentile-based windows.

The kernel's hybrid-polling machinery (which the paper points to as the
source of the latency statistics its dynamic window needs) tracks more than
a mean: it classifies completions into buckets so percentiles are cheap.
An EWMA mean is vulnerable to heavy tails -- one garbage-collection stall
inflates the window for many requests -- whereas a median-based window
ignores outliers.  This module provides a fixed-memory log-bucketed
histogram and a :class:`PercentileLatencyWindow` policy built on it, as an
alternative to the paper's mean-based window (compared in the ablations).
"""

from __future__ import annotations

import math
from typing import List, Optional

from .window import WindowPolicy

#: Histogram range: 100 ns .. ~107 s in half-decade-ish log2 buckets.
_MIN_LATENCY = 1e-7
_BUCKETS = 60
_BUCKETS_PER_DOUBLING = 2


class LatencyHistogram:
    """A fixed-memory histogram of latencies with percentile queries.

    Buckets are logarithmic (two per doubling), so relative resolution is
    ~±19% across nine orders of magnitude with 60 counters -- the same
    flavour of structure the kernel keeps per I/O class.
    """

    def __init__(self) -> None:
        self._counts: List[int] = [0] * _BUCKETS
        self._total = 0
        self._sum = 0.0
        self._max = 0.0

    @property
    def count(self) -> int:
        return self._total

    @property
    def max_latency(self) -> float:
        return self._max

    def mean(self) -> float:
        return self._sum / self._total if self._total else 0.0

    @staticmethod
    def _bucket_of(latency: float) -> int:
        if latency <= _MIN_LATENCY:
            return 0
        index = int(
            math.log2(latency / _MIN_LATENCY) * _BUCKETS_PER_DOUBLING
        )
        return min(index, _BUCKETS - 1)

    @staticmethod
    def _bucket_bounds(index: int) -> tuple:
        low = _MIN_LATENCY * 2 ** (index / _BUCKETS_PER_DOUBLING)
        high = _MIN_LATENCY * 2 ** ((index + 1) / _BUCKETS_PER_DOUBLING)
        return low, high

    def record(self, latency: float) -> None:
        """Fold one latency observation (seconds) into the histogram."""
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self._counts[self._bucket_of(latency)] += 1
        self._total += 1
        self._sum += latency
        if latency > self._max:
            self._max = latency

    def percentile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1] (0 when empty).

        Linear interpolation within the matching bucket; the answer is
        accurate to the bucket's relative width.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._total == 0:
            return 0.0
        target = q * self._total
        running = 0
        for index, count in enumerate(self._counts):
            if count == 0:
                continue
            if running + count >= target:
                low, high = self._bucket_bounds(index)
                within = (target - running) / count
                return low + (high - low) * within
            running += count
        return self._max

    def median(self) -> float:
        return self.percentile(0.5)

    def reset(self) -> None:
        self._counts = [0] * _BUCKETS
        self._total = 0
        self._sum = 0.0
        self._max = 0.0


class PercentileLatencyWindow(WindowPolicy):
    """Window of ``multiplier`` x a latency *percentile* (default median).

    Robust to the heavy write tails the SSD model produces: a rare
    millisecond GC stall barely moves the median, whereas it would drag an
    EWMA (and hence the paper's 2x-mean window) upward for a while.
    """

    def __init__(
        self,
        multiplier: float = 2.0,
        quantile: float = 0.5,
        floor: float = 1e-6,
        ceiling: float = 1.0,
        histogram: Optional[LatencyHistogram] = None,
        initial: float = 1e-3,
    ) -> None:
        if multiplier <= 0:
            raise ValueError(f"multiplier must be > 0, got {multiplier}")
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        if floor <= 0 or ceiling <= 0 or floor > ceiling:
            raise ValueError(
                f"need 0 < floor <= ceiling, got floor={floor} "
                f"ceiling={ceiling}"
            )
        self.histogram = histogram if histogram is not None else LatencyHistogram()
        self.multiplier = multiplier
        self.quantile = quantile
        self.floor = floor
        self.ceiling = ceiling
        self.initial = initial

    def duration(self) -> float:
        if self.histogram.count == 0:
            base = self.initial
        else:
            base = self.histogram.percentile(self.quantile)
        window = self.multiplier * base
        return min(self.ceiling, max(self.floor, window))

    def observe_latency(self, latency: float) -> None:
        self.histogram.record(latency)
