"""Latency tracking for the dynamic transaction window.

The paper sizes the transaction window at double the *average access
latency* of the I/O requests, noting that the Linux kernel already keeps
similar running statistics for hybrid polling.  The kernel uses an
exponentially weighted moving average for that purpose, and so do we: an
EWMA adapts to workload and device changes at a controllable rate while
needing O(1) state -- exactly the property a real-time monitor needs.
"""

from __future__ import annotations

from typing import Optional


class EwmaLatencyTracker:
    """Exponentially weighted moving average of request latencies.

    ``alpha`` is the weight of each new observation.  Until the first
    observation arrives, :meth:`mean` reports ``initial`` (a conservative
    prior; the monitor needs *some* window before it has seen a completion).
    """

    def __init__(self, alpha: float = 0.125, initial: float = 1e-3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if initial <= 0:
            raise ValueError(f"initial latency must be > 0, got {initial}")
        self._alpha = alpha
        self._initial = initial
        self._mean: Optional[float] = None
        self._count = 0

    @property
    def count(self) -> int:
        """Number of latency observations folded in so far."""
        return self._count

    def observe(self, latency: float) -> None:
        """Fold one latency observation (seconds) into the average."""
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if self._mean is None:
            self._mean = latency
        else:
            self._mean += self._alpha * (latency - self._mean)
        self._count += 1

    def mean(self) -> float:
        """Current mean latency estimate in seconds."""
        return self._initial if self._mean is None else self._mean

    def reset(self) -> None:
        self._mean = None
        self._count = 0
