"""Block-layer request merging (the elevator stage of Fig. 3).

The paper's architecture figure places the monitor below the kernel block
layer, which "implements performance enhancements such as I/O scheduling
and request merging" before requests are issued.  When the event source is
a raw application stream rather than real blktrace output (as with our
replayer), this module reproduces that merging: requests that are adjacent
or overlapping in block space and close in time coalesce into one larger
request, exactly the front/back merging an I/O scheduler performs.

Merging matters to characterization: it converts runs of small sequential
requests into single extents, so the synopsis sees one item instead of a
quadratic blow-up of trivially-sequential pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .events import BlockIOEvent

EventSink = Callable[[BlockIOEvent], None]


@dataclass
class MergerStats:
    """Merge accounting."""

    events_in: int = 0
    events_out: int = 0
    front_merges: int = 0
    back_merges: int = 0

    @property
    def merge_ratio(self) -> float:
        """Fraction of incoming events absorbed into another request."""
        if self.events_in == 0:
            return 0.0
        return 1.0 - self.events_out / self.events_in


class RequestMerger:
    """Coalesces adjacent same-op requests within a merge window.

    Holds at most one pending request per operation type.  An incoming
    event *back-merges* when it starts exactly where the pending request
    ends, *front-merges* when it ends exactly where the pending one starts,
    and must arrive within ``merge_window`` seconds of the pending
    request's last extension -- a stand-in for the scheduler's dispatch
    deadline.  Anything else flushes the pending request downstream.
    """

    def __init__(
        self,
        sink: EventSink,
        merge_window: float = 500e-6,
        max_blocks: int = 2048,
    ) -> None:
        if merge_window <= 0:
            raise ValueError(f"merge_window must be > 0, got {merge_window}")
        if max_blocks < 1:
            raise ValueError(f"max_blocks must be >= 1, got {max_blocks}")
        self._sink = sink
        self.merge_window = merge_window
        self.max_blocks = max_blocks
        self.stats = MergerStats()
        self._pending: dict = {}     # op -> BlockIOEvent
        self._deadline: dict = {}    # op -> latest mergeable timestamp

    def _flush_op(self, op) -> None:
        pending = self._pending.pop(op, None)
        self._deadline.pop(op, None)
        if pending is not None:
            self.stats.events_out += 1
            self._sink(pending)

    def flush(self) -> None:
        """Emit every pending request (end of stream)."""
        for op in list(self._pending):
            self._flush_op(op)

    def on_event(self, event: BlockIOEvent) -> None:
        """Consume one raw request; emit merged requests downstream."""
        self.stats.events_in += 1
        op = event.op
        pending = self._pending.get(op)

        if pending is not None:
            in_window = event.timestamp <= self._deadline[op]
            back = pending.start + pending.length == event.start
            front = event.start + event.length == pending.start
            total = pending.length + event.length
            if in_window and total <= self.max_blocks and (back or front):
                start = pending.start if back else event.start
                merged = BlockIOEvent(
                    timestamp=pending.timestamp,
                    pid=pending.pid,
                    op=op,
                    start=start,
                    length=total,
                    latency=pending.latency,
                    pgid=pending.pgid,
                )
                self._pending[op] = merged
                self._deadline[op] = event.timestamp + self.merge_window
                if back:
                    self.stats.back_merges += 1
                else:
                    self.stats.front_merges += 1
                return
            self._flush_op(op)

        # Other ops' pending requests flush when overtaken in time.
        for other_op in list(self._pending):
            if event.timestamp > self._deadline[other_op]:
                self._flush_op(other_op)

        self._pending[op] = event
        self._deadline[op] = event.timestamp + self.merge_window
