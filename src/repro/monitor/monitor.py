"""The real-time monitoring module (paper Section III-C).

The monitor subscribes to block-layer issue events, optionally filters them
by process/process-group ID, feeds measured latencies to the transaction
window policy, groups events into transactions, enforces the transaction
size cap (8 requests in the paper's evaluation -- overflow simply starts a
new transaction), deduplicates repeated requests within a transaction, and
hands finished transactions to any number of sinks: typically the online
analyzer, and -- for the paper's dual evaluation methodology -- a recorder
that stores transactions for offline FIM.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, fields as dataclass_fields
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Union

import numpy as np

from ..telemetry.metrics import MetricsRegistry, get_default_registry
from .batch import _OP_FROM_CODE, _OP_TO_CODE, EventBatch, TransactionBatch
from .events import BlockIOEvent
from .transaction import Transaction, dedup_events
from .window import DynamicLatencyWindow, WindowPolicy

#: A transaction consumer.  Plain callables receive one
#: :class:`Transaction` object per finished transaction.  A sink object
#: that additionally exposes an ``on_transaction_batch(TransactionBatch)``
#: method is a *batch sink*: the columnar lane hands it whole
#: :class:`~repro.monitor.batch.TransactionBatch` objects instead of
#: materializing per-transaction objects (the scalar lane still calls it
#: per transaction through ``__call__``).
TransactionSink = Callable[[Transaction], None]

#: The paper's evaluation cap on requests per transaction.
DEFAULT_MAX_TRANSACTION_SIZE = 8


class GroupingMode(enum.Enum):
    """How event timestamps are compared against the window.

    ``GAP`` closes the open transaction when the gap since its *latest*
    event exceeds the window -- a burst of closely spaced requests stays
    together.  ``FIXED`` measures the window from the transaction's *first*
    event, bounding a transaction's total span.  Both satisfy the paper's
    definition (requests "within a brief window of time"); GAP is the
    default because it matches how coincident request bursts arrive.
    """

    GAP = "gap"
    FIXED = "fixed"


class ClockPolicy(enum.Enum):
    """What the monitor does with a non-monotonic (backwards) timestamp.

    blktrace merges per-CPU buffers, so slightly out-of-order delivery is
    normal; a large backwards jump instead means the clock source changed
    (suspend/resume, NTP step, a spliced trace).  The policies:

    * ``TOLERATE`` -- historical behaviour: the event goes through the
      normal gap comparison, where a negative gap never closes the open
      transaction (it can silently extend it indefinitely).
    * ``DROP`` -- discard the event.
    * ``REORDER`` -- fold the event into the open transaction when the
      backwards skew is within ``max_clock_skew`` (events that close
      together belong together regardless of delivery order); a jump
      beyond the skew bound escalates to a window reset.  The default.
    * ``RESET`` -- flush the open transaction and restart the window at
      the event's timestamp, adopting the new clock domain.
    """

    TOLERATE = "tolerate"
    DROP = "drop"
    REORDER = "reorder"
    RESET = "reset"


@dataclass
class MonitorStats:
    """Counters describing a monitor's activity.

    This dataclass stays the authoritative hot-path store; a monitor
    bound to a :class:`~repro.telemetry.metrics.MetricsRegistry`
    publishes each field as a ``repro_monitor_<field>_total`` counter at
    collect time (see :meth:`Monitor._collect_metrics`), so ingest never
    pays a registry call per event.
    """

    events_seen: int = 0
    events_filtered: int = 0
    transactions_emitted: int = 0
    singleton_transactions: int = 0
    duplicates_removed: int = 0
    size_splits: int = 0
    clock_anomalies: int = 0
    events_dropped: int = 0
    events_reordered: int = 0
    window_resets: int = 0
    window_clamps: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Field name -> value, in declaration order."""
        return {f.name: getattr(self, f.name) for f in
                dataclass_fields(self)}


#: Help strings for the registry counters derived from MonitorStats.
_STAT_HELP = {
    "events_seen": "Block I/O issue events consumed",
    "events_filtered": "Events rejected by the PID/PGID filter",
    "transactions_emitted": "Transactions handed to sinks",
    "singleton_transactions": "Emitted transactions with one request",
    "duplicates_removed": "Requests dropped by in-transaction dedup",
    "size_splits": "Transactions closed by the size cap",
    "clock_anomalies": "Backwards-timestamp events detected",
    "events_dropped": "Anomalous events discarded (ClockPolicy.DROP)",
    "events_reordered": "Anomalous events folded into the open transaction",
    "window_resets": "Window restarts after a clock-domain change",
    "window_clamps": "Degenerate window durations clamped to zero",
}


class Monitor:
    """Groups block I/O issue events into transactions."""

    def __init__(
        self,
        window: Optional[WindowPolicy] = None,
        sinks: Optional[Sequence[TransactionSink]] = None,
        max_transaction_size: int = DEFAULT_MAX_TRANSACTION_SIZE,
        dedup: bool = True,
        pid_filter: Optional[Set[int]] = None,
        pgid_filter: Optional[Set[int]] = None,
        grouping: GroupingMode = GroupingMode.GAP,
        clock_policy: ClockPolicy = ClockPolicy.REORDER,
        max_clock_skew: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        """``max_clock_skew`` bounds how far backwards a timestamp may jump
        and still be folded into the open transaction under
        :attr:`ClockPolicy.REORDER`; ``None`` uses the current window
        duration (jitter within one window is benign by definition).

        ``registry`` selects the telemetry registry the monitor publishes
        to (``None``: the process-local default; pass
        :data:`~repro.telemetry.NULL_REGISTRY` to disable).  All counters
        are published lazily at collect time from :attr:`stats`.
        """
        if max_transaction_size < 1:
            raise ValueError(
                f"max_transaction_size must be >= 1, got {max_transaction_size}"
            )
        if max_clock_skew is not None and max_clock_skew < 0:
            raise ValueError(
                f"max_clock_skew must be >= 0, got {max_clock_skew}"
            )
        self.window = window if window is not None else DynamicLatencyWindow()
        self._sinks: List[TransactionSink] = list(sinks or ())
        self.max_transaction_size = max_transaction_size
        self.dedup = dedup
        self.pid_filter = pid_filter
        self.pgid_filter = pgid_filter
        self.grouping = grouping
        self.clock_policy = clock_policy
        self.max_clock_skew = max_clock_skew
        self.stats = MonitorStats()
        self._pending: List[BlockIOEvent] = []
        self._high_water: Optional[float] = None
        self._bind_metrics(registry)

    def add_sink(self, sink: TransactionSink) -> None:
        self._sinks.append(sink)

    # -- telemetry ----------------------------------------------------------

    def _bind_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        registry = registry if registry is not None else \
            get_default_registry()
        self.registry = registry
        if not registry.enabled:
            return
        self._stat_counters = {
            name: registry.counter(f"repro_monitor_{name}_total", help)
            for name, help in _STAT_HELP.items()
        }
        self._pending_gauge = registry.gauge(
            "repro_monitor_pending_events",
            "Events buffered in the open transaction",
        )
        self._window_gauge = registry.gauge(
            "repro_monitor_window_seconds",
            "Current transaction window duration",
        )
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        """Publish the dataclass counters into the registry (pull seam)."""
        for name, value in self.stats.as_dict().items():
            self._stat_counters[name].set_total(value)
        self._pending_gauge.set(len(self._pending))
        duration = self.window.duration()
        self._window_gauge.set(duration if math.isfinite(duration) else 0.0)

    # -- event intake -------------------------------------------------------

    def _passes_filter(self, event: BlockIOEvent) -> bool:
        if self.pid_filter is not None and event.pid not in self.pid_filter:
            return False
        if self.pgid_filter is not None and event.pgid not in self.pgid_filter:
            return False
        return True

    def _window_anchor(self) -> float:
        if self.grouping is GroupingMode.GAP:
            # Max, not last: a reordered event folded into the transaction
            # must neither stretch the window backwards nor shrink it.
            return max(pending.timestamp for pending in self._pending)
        return self._pending[0].timestamp

    def _window_duration(self) -> float:
        """The window duration, guarded against degenerate policies.

        A custom :class:`WindowPolicy` may return zero, a negative value,
        or NaN; any of those would make the gap comparison nonsense (a
        negative window can never be exceeded by a zero gap, NaN compares
        false with everything).  Such durations are clamped to zero --
        every positive gap then closes the transaction -- and counted.
        """
        duration = self.window.duration()
        if not (duration > 0.0):  # catches negative, zero, and NaN
            self.stats.window_clamps += 1
            return 0.0
        return duration

    def on_event(self, event: BlockIOEvent) -> None:
        """Consume one issue event (the blktrace callback).

        Delegates to the same ingest core as :meth:`on_events`, so the
        clock-anomaly and degenerate-window accounting of the two entry
        points cannot drift apart: batch and per-event ingest of the
        same trace produce identical :class:`MonitorStats` by
        construction (``tests/test_monitor.py`` asserts the parity).
        """
        self._ingest((event,))

    def on_events(
        self, events: Union[EventBatch, Iterable[BlockIOEvent]]
    ) -> int:
        """Consume a batch of issue events; returns how many were seen.

        Semantically identical to calling :meth:`on_event` per event --
        both run the same ingest core -- but the per-event bookkeeping is
        amortized over the batch: method and attribute lookups are
        hoisted out of the loop, and the window duration is only
        recomputed when a new latency observation (or a clamped
        degenerate duration, which is counted and never cached) can
        actually have changed it, instead of once per event.

        An :class:`~repro.monitor.batch.EventBatch` argument routes to the
        columnar lane (:meth:`on_batch`), which cuts the same transactions
        with vectorized window arithmetic.
        """
        if isinstance(events, EventBatch):
            return self.on_batch(events)
        return self._ingest(events)

    def _ingest(self, events: Iterable[BlockIOEvent]) -> int:
        """The single ingest code path behind ``on_event``/``on_events``."""
        count = 0
        stats = self.stats
        unfiltered = self.pid_filter is None and self.pgid_filter is None
        passes = self._passes_filter
        observe = self.window.observe_latency
        max_size = self.max_transaction_size
        tolerate = self.clock_policy is ClockPolicy.TOLERATE
        duration: Optional[float] = None  # recompute lazily

        for event in events:
            count += 1
            stats.events_seen += 1
            if not unfiltered and not passes(event):
                stats.events_filtered += 1
                continue
            if event.latency is not None:
                observe(event.latency)
                duration = None  # the dynamic window may have moved
            if duration is None:
                duration = self._window_duration()
                if duration == 0.0:
                    # Possibly a clamped degenerate policy; never cache it.
                    cacheable = False
                else:
                    cacheable = True

            timestamp = event.timestamp
            high_water = self._high_water
            if high_water is not None and timestamp < high_water:
                stats.clock_anomalies += 1
                if not tolerate:
                    self._on_clock_anomaly(event, duration)
                    if not cacheable:
                        duration = None
                    continue

            pending = self._pending
            if pending:
                gap = timestamp - self._window_anchor()
                if gap > duration:
                    self._flush()
                elif len(pending) >= max_size:
                    stats.size_splits += 1
                    self._flush()
            self._pending.append(event)
            if high_water is None or timestamp > high_water:
                self._high_water = timestamp
            if not cacheable:
                duration = None
        return count

    # -- the columnar ingest lane -------------------------------------------

    def on_batch(self, batch: EventBatch) -> int:
        """Consume a columnar :class:`EventBatch`; returns events seen.

        The vectorized fast path computes every transaction cut of the
        batch with array arithmetic -- identical transactions, stats, and
        sink deliveries to feeding the same events through
        :meth:`on_event` one at a time.  It applies when the batch is
        well-ordered (the common case for trace replay and generated
        workloads): GAP grouping, timestamps non-decreasing and not
        behind the monitor's high-water mark, and a window policy whose
        :meth:`~repro.monitor.window.WindowPolicy.durations_after`
        supports batching.  Any other batch falls back to the scalar
        ingest core, so correctness never depends on the fast path
        being taken.
        """
        n = len(batch)
        if n == 0:
            return 0
        if self.grouping is not GroupingMode.GAP:
            return self._ingest(batch.iter_events())

        # The filter mask is computed up front so the fast-path checks see
        # only the events that would survive; nothing is counted yet, so a
        # fallback can still replay the whole batch through the scalar lane.
        if self.pid_filter is None and self.pgid_filter is None:
            keep_all = True
            ts_kept = batch.timestamps
            lat_kept = batch.latencies
            kept = n
        else:
            mask = np.ones(n, dtype=bool)
            if self.pid_filter is not None:
                mask &= np.isin(batch.pids,
                                np.fromiter(self.pid_filter, dtype=np.int64))
            if self.pgid_filter is not None:
                mask &= np.isin(batch.pgids,
                                np.fromiter(self.pgid_filter, dtype=np.int64))
            keep_all = bool(mask.all())
            ts_kept = batch.timestamps if keep_all else batch.timestamps[mask]
            lat_kept = batch.latencies if keep_all else batch.latencies[mask]
            kept = n if keep_all else int(mask.sum())

        stats = self.stats
        if kept == 0:
            stats.events_seen += n
            stats.events_filtered += n
            return n

        # Fast-path preconditions.  Each failure replays through the scalar
        # core, which owns the anomaly policies, degenerate-window clamping,
        # and the ValueError position for negative latencies.  All checks
        # precede durations_after() because that call advances window state.
        if np.any(np.diff(ts_kept) < 0):
            return self._ingest(batch.iter_events())
        if self._high_water is not None and ts_kept[0] < self._high_water:
            return self._ingest(batch.iter_events())
        if np.any(lat_kept < 0):
            return self._ingest(batch.iter_events())
        d0 = self.window.duration()
        if not (d0 > 0.0):
            return self._ingest(batch.iter_events())
        observed = ~np.isnan(lat_kept)
        durations_observed = self.window.durations_after(
            lat_kept[observed].tolist()
        )
        if durations_observed is None:
            return self._ingest(batch.iter_events())

        # Window duration in effect at each event: the value after the most
        # recent latency observation at or before it (d0 before the first).
        rank = np.cumsum(observed)
        dur_kept = np.concatenate(
            ([d0], np.asarray(durations_observed, dtype=np.float64))
        )[rank]

        pending = self._pending
        p = len(pending)
        if keep_all:
            pid_kept = batch.pids
            op_kept = batch.ops
            start_kept = batch.starts
            len_kept = batch.lengths
            pgid_kept = batch.pgids
        else:
            pid_kept = batch.pids[mask]
            op_kept = batch.ops[mask]
            start_kept = batch.starts[mask]
            len_kept = batch.lengths[mask]
            pgid_kept = batch.pgids[mask]

        if p:
            op_code = _OP_TO_CODE
            nan = float("nan")
            ts_all = np.concatenate(
                ([e.timestamp for e in pending], ts_kept))
            pid_all = np.concatenate(
                (np.asarray([e.pid for e in pending], dtype=np.int64),
                 pid_kept))
            op_all = np.concatenate(
                (np.asarray([op_code[e.op] for e in pending], dtype=np.uint8),
                 op_kept))
            start_all = np.concatenate(
                (np.asarray([e.start for e in pending], dtype=np.int64),
                 start_kept))
            len_all = np.concatenate(
                (np.asarray([e.length for e in pending], dtype=np.int64),
                 len_kept))
            lat_all = np.concatenate(
                ([nan if e.latency is None else e.latency for e in pending],
                 lat_kept))
            pgid_all = np.concatenate(
                (np.asarray([e.pgid for e in pending], dtype=np.int64),
                 pgid_kept))
            anchor0 = max(e.timestamp for e in pending)
            prev_ts = np.concatenate(([anchor0], ts_kept[:-1]))
        else:
            ts_all = ts_kept
            pid_all = pid_kept
            op_all = op_kept
            start_all = start_kept
            len_all = len_kept
            lat_all = lat_kept
            pgid_all = pgid_kept
            # A zero first gap with a positive window never cuts, matching
            # the scalar lane's "no check when pending is empty".
            prev_ts = np.concatenate(([ts_kept[0]], ts_kept[:-1]))

        total = p + kept
        max_size = self.max_transaction_size
        gap_cut = (ts_kept - prev_ts) > dur_kept

        # Transaction boundaries.  A cut before combined position j starts a
        # new transaction at j; gap cuts are position-independent (anchor is
        # always the previous event in a monotonic batch), and size cuts fall
        # at multiples of max_size within each gap-delimited segment.
        starts_flag = np.zeros(total, dtype=bool)
        starts_flag[0] = True
        starts_flag[p:] |= gap_cut
        idx = np.arange(total)
        run_start = np.maximum.accumulate(np.where(starts_flag, idx, 0))
        offset_in_run = idx - run_start
        size_cut = (~starts_flag) & (offset_in_run > 0) \
            & (offset_in_run % max_size == 0)
        cut = starts_flag | size_cut
        txn_id = np.cumsum(cut) - 1

        stats.events_seen += n
        stats.events_filtered += n - kept
        stats.size_splits += int(size_cut.sum())
        self._high_water = float(ts_kept[-1])

        # The last transaction stays open: materialize its events back into
        # the pending list (reusing the existing objects when the tail still
        # begins inside the old pending prefix).
        tail_start = int(np.flatnonzero(cut)[-1])
        op_from = _OP_FROM_CODE
        # Cuts happen only at position 0 or at batch positions (>= p), so a
        # tail reaching into the old pending prefix keeps all of it.
        tail_events: List[BlockIOEvent] = pending[tail_start:] if \
            tail_start < p else []
        for j in range(max(tail_start, p), total):
            latency = float(lat_all[j])
            tail_events.append(BlockIOEvent(
                float(ts_all[j]), int(pid_all[j]), op_from[int(op_all[j])],
                int(start_all[j]), int(len_all[j]),
                None if latency != latency else latency, int(pgid_all[j]),
            ))
        self._pending = tail_events

        if tail_start == 0:
            return n  # everything still fits in the open transaction

        # Flushed region: combined rows [0, tail_start).  One lexsort gives
        # both views: within each transaction the rows group by (start,
        # length) in sorted order -- the analyzers' iteration order -- and
        # the first row of each group (lowest arrival) is the dedup keeper.
        flushed = tail_start
        txn_f = txn_id[:flushed]
        start_f = start_all[:flushed]
        len_f = len_all[:flushed]
        emitted = int(txn_f[-1]) + 1
        order = np.lexsort((np.arange(flushed), len_f, start_f, txn_f))
        t_s = txn_f[order]
        s_s = start_f[order]
        l_s = len_f[order]
        first_of_group = np.empty(flushed, dtype=bool)
        first_of_group[0] = True
        np.not_equal(t_s[1:], t_s[:-1], out=first_of_group[1:])
        first_of_group[1:] |= s_s[1:] != s_s[:-1]
        first_of_group[1:] |= l_s[1:] != l_s[:-1]
        distinct_rows = order[first_of_group]
        distinct_counts = np.bincount(t_s[first_of_group],
                                      minlength=emitted)
        offsets = np.zeros(emitted + 1, dtype=np.int64)
        np.cumsum(distinct_counts, out=offsets[1:])

        if self.dedup:
            raw_keep = np.zeros(flushed, dtype=bool)
            raw_keep[distinct_rows] = True
            stats.duplicates_removed += flushed - len(distinct_rows)
            raw_counts = distinct_counts  # kept rows == distinct rows per txn
            raw_slice = raw_keep
        else:
            raw_counts = np.bincount(txn_f, minlength=emitted)
            raw_slice = slice(None)
        raw_offsets = np.zeros(emitted + 1, dtype=np.int64)
        np.cumsum(raw_counts, out=raw_offsets[1:])

        stats.transactions_emitted += emitted
        stats.singleton_transactions += int((raw_counts == 1).sum())

        transaction_batch = TransactionBatch(
            start_f[distinct_rows], len_f[distinct_rows],
            op_all[:flushed][distinct_rows], offsets,
            ts_all[:flushed][raw_slice], pid_all[:flushed][raw_slice],
            op_all[:flushed][raw_slice], start_f[raw_slice],
            len_f[raw_slice], lat_all[:flushed][raw_slice],
            pgid_all[:flushed][raw_slice], raw_offsets,
        )

        object_sinks = []
        for sink in self._sinks:
            if hasattr(sink, "on_transaction_batch"):
                sink.on_transaction_batch(transaction_batch)
            else:
                object_sinks.append(sink)
        if object_sinks:
            for transaction in transaction_batch.transactions():
                for sink in object_sinks:
                    sink(transaction)
        return n

    def _on_clock_anomaly(self, event: BlockIOEvent, duration: float) -> None:
        """Apply the configured policy to a backwards-timestamp event."""
        if self.clock_policy is ClockPolicy.DROP:
            self.stats.events_dropped += 1
            return
        skew = self._high_water - event.timestamp
        slack = (self.max_clock_skew if self.max_clock_skew is not None
                 else duration)
        if self.clock_policy is ClockPolicy.REORDER and skew <= slack:
            # Delivery jitter within the window: the event belongs to the
            # open transaction; the high-water mark is left untouched so
            # the stale timestamp cannot stretch the window backwards.
            self.stats.events_reordered += 1
            if self._pending and len(self._pending) >= self.max_transaction_size:
                self.stats.size_splits += 1
                self._flush()
            self._pending.append(event)
            return
        # RESET, or a REORDER jump beyond the skew bound: the clock domain
        # changed.  Close the open transaction and restart at the event.
        self.stats.window_resets += 1
        self._flush()
        self._pending.append(event)
        self._high_water = event.timestamp

    def flush(self) -> None:
        """Emit any open transaction (call at end of stream)."""
        self._flush()

    def _flush(self) -> None:
        if not self._pending:
            return
        events = self._pending
        self._pending = []
        if self.dedup:
            events, dropped = dedup_events(events)
            self.stats.duplicates_removed += dropped
        transaction = Transaction(events)
        self.stats.transactions_emitted += 1
        if len(transaction) == 1:
            self.stats.singleton_transactions += 1
        for sink in self._sinks:
            sink(transaction)


class TransactionRecorder:
    """A sink that stores transactions for offline analysis.

    Reproduces the paper's evaluation pipeline, in which "transactions
    generated by our real-time monitoring module are both stored for offline
    analysis and also passed to the online analysis module in real-time".
    """

    def __init__(self) -> None:
        self.transactions: List[Transaction] = []

    def __call__(self, transaction: Transaction) -> None:
        self.transactions.append(transaction)

    def __len__(self) -> int:
        return len(self.transactions)

    def extent_transactions(self) -> List[List]:
        """Transactions as extent lists -- the offline FIM input format."""
        return [transaction.extents for transaction in self.transactions]
