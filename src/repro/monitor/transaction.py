"""Transactions: sets of requests coincident in time."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..core.extent import Extent
from .events import BlockIOEvent


@dataclass
class Transaction:
    """A group of issue events the monitor considers correlated.

    ``events`` preserves arrival order and is already deduplicated when the
    monitor's dedup option is on (the default, per Section III-D2: repeated
    identical requests in one window would distort correlation frequencies).
    """

    events: List[BlockIOEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def start_time(self) -> float:
        if not self.events:
            raise ValueError("empty transaction has no start time")
        return self.events[0].timestamp

    @property
    def end_time(self) -> float:
        if not self.events:
            raise ValueError("empty transaction has no end time")
        return self.events[-1].timestamp

    @property
    def span(self) -> float:
        """Time between the first and last event in the transaction."""
        return self.end_time - self.start_time

    @property
    def extents(self) -> List[Extent]:
        """The extents of the member events, arrival order preserved."""
        return [event.extent for event in self.events]

    def read_write_split(self) -> Tuple[int, int]:
        """Counts of (reads, writes) -- correlation *types* per Section II-A."""
        reads = sum(1 for event in self.events if event.op.value == "R")
        return reads, len(self.events) - reads


def dedup_events(events: List[BlockIOEvent]) -> Tuple[List[BlockIOEvent], int]:
    """Remove events whose extent repeats an earlier event's extent.

    Returns the filtered list and the number of duplicates dropped.  This is
    the paper's O(N^2) per-transaction deduplication (Section III-D2): with
    the transaction size capped at 8, the quadratic scan is constant work.
    """
    kept: List[BlockIOEvent] = []
    dropped = 0
    for event in events:
        duplicate = False
        for earlier in kept:
            if earlier.start == event.start and earlier.length == event.length:
                duplicate = True
                break
        if duplicate:
            dropped += 1
        else:
            kept.append(event)
    return kept, dropped
