"""Transaction window policies (paper Section III-B).

A *transaction* is a set of requests coincident in time: requests arriving
within the transaction window belong together.  The window may be static
(a fixed duration ``t``) or dynamic; the paper proposes sizing it from the
storage subsystem's measured performance and evaluates with a window of
double the average I/O latency.
"""

from __future__ import annotations

import abc

from .latency import EwmaLatencyTracker


class WindowPolicy(abc.ABC):
    """Produces the current transaction-window duration in seconds."""

    @abc.abstractmethod
    def duration(self) -> float:
        """Current window duration, in seconds."""

    def observe_latency(self, latency: float) -> None:
        """Fold a measured request latency into the policy (no-op by default)."""


class StaticWindow(WindowPolicy):
    """A fixed window duration ``t``."""

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError(f"window must be > 0 seconds, got {seconds}")
        self._seconds = seconds

    def duration(self) -> float:
        return self._seconds


class DynamicLatencyWindow(WindowPolicy):
    """Window of ``multiplier`` times the average I/O latency.

    The paper uses a multiplier of 2.  ``floor`` and ``ceiling`` clamp the
    window so that a cold tracker or a latency spike cannot collapse or
    explode transaction grouping.
    """

    def __init__(
        self,
        tracker: EwmaLatencyTracker = None,
        multiplier: float = 2.0,
        floor: float = 1e-6,
        ceiling: float = 1.0,
    ) -> None:
        if multiplier <= 0:
            raise ValueError(f"multiplier must be > 0, got {multiplier}")
        if floor <= 0 or ceiling <= 0 or floor > ceiling:
            raise ValueError(
                f"need 0 < floor <= ceiling, got floor={floor} ceiling={ceiling}"
            )
        self.tracker = tracker if tracker is not None else EwmaLatencyTracker()
        self.multiplier = multiplier
        self.floor = floor
        self.ceiling = ceiling

    def duration(self) -> float:
        window = self.multiplier * self.tracker.mean()
        return min(self.ceiling, max(self.floor, window))

    def observe_latency(self, latency: float) -> None:
        self.tracker.observe(latency)
