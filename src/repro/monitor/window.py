"""Transaction window policies (paper Section III-B).

A *transaction* is a set of requests coincident in time: requests arriving
within the transaction window belong together.  The window may be static
(a fixed duration ``t``) or dynamic; the paper proposes sizing it from the
storage subsystem's measured performance and evaluates with a window of
double the average I/O latency.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence


from .latency import EwmaLatencyTracker


class WindowPolicy(abc.ABC):
    """Produces the current transaction-window duration in seconds."""

    @abc.abstractmethod
    def duration(self) -> float:
        """Current window duration, in seconds."""

    def observe_latency(self, latency: float) -> None:
        """Fold a measured request latency into the policy (no-op by default)."""

    def durations_after(
        self, latencies: Sequence[float]
    ) -> Optional[List[float]]:
        """Batched window durations for the columnar ingest lane.

        Given the non-negative latencies of a batch (in event order), fold
        each into the policy and return the window duration *after* each
        observation -- ``result[i]`` must equal what ``duration()`` would
        report after ``observe_latency(latencies[i])`` in the scalar lane.
        Returning ``None`` declares the batched form unsupported, and the
        monitor falls back to per-event ingest; the base implementation does
        so, and custom subclasses inherit that safe default.  The policy's
        internal state IS advanced by a successful call, so the monitor must
        invoke this exactly once per ingested batch, after all other
        fallback checks have passed.
        """
        return None


class StaticWindow(WindowPolicy):
    """A fixed window duration ``t``."""

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError(f"window must be > 0 seconds, got {seconds}")
        self._seconds = seconds

    def duration(self) -> float:
        return self._seconds

    def durations_after(
        self, latencies: Sequence[float]
    ) -> Optional[List[float]]:
        return [self._seconds] * len(latencies)


class DynamicLatencyWindow(WindowPolicy):
    """Window of ``multiplier`` times the average I/O latency.

    The paper uses a multiplier of 2.  ``floor`` and ``ceiling`` clamp the
    window so that a cold tracker or a latency spike cannot collapse or
    explode transaction grouping.
    """

    def __init__(
        self,
        tracker: EwmaLatencyTracker = None,
        multiplier: float = 2.0,
        floor: float = 1e-6,
        ceiling: float = 1.0,
    ) -> None:
        if multiplier <= 0:
            raise ValueError(f"multiplier must be > 0, got {multiplier}")
        if floor <= 0 or ceiling <= 0 or floor > ceiling:
            raise ValueError(
                f"need 0 < floor <= ceiling, got floor={floor} ceiling={ceiling}"
            )
        self.tracker = tracker if tracker is not None else EwmaLatencyTracker()
        self.multiplier = multiplier
        self.floor = floor
        self.ceiling = ceiling

    def duration(self) -> float:
        window = self.multiplier * self.tracker.mean()
        return min(self.ceiling, max(self.floor, window))

    def observe_latency(self, latency: float) -> None:
        self.tracker.observe(latency)

    def durations_after(
        self, latencies: Sequence[float]
    ) -> Optional[List[float]]:
        # Only the stock EWMA tracker has state we know how to advance
        # faithfully; a subclassed tracker gets the scalar fallback.
        tracker = self.tracker
        if type(tracker) is not EwmaLatencyTracker:
            return None
        # Sequential recurrence on purpose: the EWMA update is order-
        # dependent and must produce bit-identical floats to the scalar
        # lane, so no vectorized reformulation is safe here.  The loop is
        # still far cheaper than per-event ingest because it touches plain
        # floats, not event objects.
        mean = tracker._mean
        alpha = tracker._alpha
        multiplier = self.multiplier
        floor = self.floor
        ceiling = self.ceiling
        initial = tracker._initial
        out: List[float] = []
        append = out.append
        for latency in latencies:
            if latency < 0:
                raise ValueError(f"latency must be >= 0, got {latency}")
            if mean is None:
                mean = latency
            else:
                mean += alpha * (latency - mean)
            append(min(ceiling, max(floor, multiplier * mean)))
        tracker._mean = mean
        tracker._count += len(out)
        return out
