"""Automatic optimization scenarios enabled by the framework (paper §V)."""

from .selfopt import ControllerStats, SelfOptimizingController
from .multistream import (
    death_time_workload,
    CorrelationStreamAssigner,
    FlashConfig,
    FlashStats,
    MultiStreamSsd,
    SingleStreamAssigner,
    StreamAssigner,
    WearReport,
    run_waf_experiment,
)
from .openchannel import (
    CorrelationPlacement,
    OcssdConfig,
    ParallelIoStats,
    Placement,
    StripingPlacement,
    run_parallel_read_experiment,
    service_transaction,
)
from .scheduler import (
    CorrelationScheduler,
    FifoScheduler,
    SchedulerStats,
    run_dispatch_experiment,
)
from .energy import (
    CorrelationEnergyPlacement,
    DiskArrayEnergyModel,
    EnergyStats,
    PowerModel,
    StripingEnergyPlacement,
    run_energy_experiment,
)
from .zns import ZnsConfig, ZnsDevice, ZnsStats, run_zns_experiment
from .prefetch import (
    BlockCache,
    RulePrefetcher,
    CacheStats,
    CorrelationPrefetcher,
    run_cache_experiment,
)

__all__ = [
    "BlockCache",
    "ControllerStats",
    "SelfOptimizingController",
    "death_time_workload",
    "CacheStats",
    "CorrelationEnergyPlacement",
    "CorrelationPlacement",
    "CorrelationScheduler",
    "DiskArrayEnergyModel",
    "EnergyStats",
    "FifoScheduler",
    "PowerModel",
    "SchedulerStats",
    "StripingEnergyPlacement",
    "run_dispatch_experiment",
    "run_energy_experiment",
    "CorrelationPrefetcher",
    "CorrelationStreamAssigner",
    "FlashConfig",
    "FlashStats",
    "MultiStreamSsd",
    "OcssdConfig",
    "ParallelIoStats",
    "Placement",
    "RulePrefetcher",
    "SingleStreamAssigner",
    "StreamAssigner",
    "WearReport",
    "StripingPlacement",
    "ZnsConfig",
    "ZnsDevice",
    "ZnsStats",
    "run_zns_experiment",
    "run_cache_experiment",
    "run_parallel_read_experiment",
    "run_waf_experiment",
    "service_transaction",
]
