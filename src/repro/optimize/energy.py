"""Correlation-driven energy efficiency (paper §V's optimization list).

The paper cites dual-block-correlation work that cuts disk energy: if the
data a workload touches together lives on *one* disk of an array, the
others can spin down.  The model here is a multi-disk array with a
three-state power model (active / idle / standby, spin-down after an idle
timeout, a spin-up penalty on wake), and two placements:

* striping -- correlated data scatters over all disks, so every access
  burst wakes everything;
* correlation clustering -- frequently co-accessed extents are packed
  onto the same disk (clusters round-robin across disks for balance), so
  a burst touches one disk and the rest sleep.

Energy is integrated over the replayed access timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.analyzer import OnlineAnalyzer
from ..core.extent import Extent


@dataclass(frozen=True)
class PowerModel:
    """Disk power states, in watts and seconds (enterprise-HDD-flavoured)."""

    active_watts: float = 11.0
    idle_watts: float = 7.0
    standby_watts: float = 1.5
    spinup_joules: float = 60.0
    idle_timeout: float = 5.0       # idle seconds before spin-down
    access_time: float = 8e-3       # active time per request

    def __post_init__(self) -> None:
        if min(self.active_watts, self.idle_watts, self.standby_watts) < 0:
            raise ValueError("power draws must be >= 0")
        if self.idle_timeout <= 0 or self.access_time <= 0:
            raise ValueError("timeout and access time must be > 0")


@dataclass
class EnergyStats:
    """Energy accounting for one placement over one timeline."""

    disks: int
    total_joules: float = 0.0
    spinups: int = 0
    accesses: int = 0
    per_disk_accesses: List[int] = field(default_factory=list)

    @property
    def joules_per_access(self) -> float:
        return self.total_joules / self.accesses if self.accesses else 0.0


class DiskArrayEnergyModel:
    """Integrates the power model over a timestamped access sequence."""

    def __init__(self, disks: int, power: Optional[PowerModel] = None) -> None:
        if disks < 1:
            raise ValueError("need at least one disk")
        self.disks = disks
        self.power = power or PowerModel()

    def _energy_between(self, disk: int, start: float, end: float) -> Tuple[float, int]:
        """Energy of one disk between accesses, plus spin-up count."""
        span = max(0.0, end - start)
        power = self.power
        if span <= power.idle_timeout:
            return span * power.idle_watts, 0
        idle = power.idle_timeout * power.idle_watts
        standby = (span - power.idle_timeout) * power.standby_watts
        return idle + standby + power.spinup_joules, 1

    def simulate(
        self,
        accesses: Sequence[Tuple[float, int]],
        duration: Optional[float] = None,
    ) -> EnergyStats:
        """Integrate energy over ``(timestamp, disk)`` accesses.

        ``duration`` extends the tail (idle/standby) to a fixed horizon so
        placements are compared over identical wall time.
        """
        stats = EnergyStats(disks=self.disks,
                            per_disk_accesses=[0] * self.disks)
        power = self.power
        last = [0.0] * self.disks
        for timestamp, disk in sorted(accesses):
            if not 0 <= disk < self.disks:
                raise ValueError(f"disk {disk} out of range")
            gap_energy, spinups = self._energy_between(
                disk, last[disk], timestamp
            )
            stats.total_joules += gap_energy
            stats.spinups += spinups
            stats.total_joules += power.access_time * power.active_watts
            stats.accesses += 1
            stats.per_disk_accesses[disk] += 1
            last[disk] = timestamp + power.access_time
        horizon = duration
        if horizon is None:
            horizon = max(last) if stats.accesses else 0.0
        for disk in range(self.disks):
            gap_energy, spinups = self._energy_between(
                disk, last[disk], horizon
            )
            stats.total_joules += gap_energy
            stats.spinups += spinups
        return stats


class StripingEnergyPlacement:
    """Extent -> disk by block striping (the energy-oblivious baseline)."""

    def __init__(self, disks: int, stripe_blocks: int = 4096) -> None:
        if disks < 1 or stripe_blocks < 1:
            raise ValueError("disks and stripe_blocks must be >= 1")
        self.disks = disks
        self.stripe_blocks = stripe_blocks

    def disk_of(self, extent: Extent) -> int:
        return (extent.start // self.stripe_blocks) % self.disks


class CorrelationEnergyPlacement:
    """Pack correlated clusters onto single disks, round-robin for balance.

    Unknown extents fall back to striping -- the cold tail stays spread,
    only the hot correlated working set is consolidated.
    """

    def __init__(
        self,
        analyzer: OnlineAnalyzer,
        disks: int,
        min_support: int = 2,
        stripe_blocks: int = 4096,
    ) -> None:
        if disks < 1:
            raise ValueError("disks must be >= 1")
        self.disks = disks
        self._fallback = StripingEnergyPlacement(disks, stripe_blocks)
        self._disk_of: Dict[Extent, int] = {}

        parent: Dict[Extent, Extent] = {}

        def find(extent: Extent) -> Extent:
            root = extent
            while parent[root] != root:
                root = parent[root]
            return root

        for pair, _tally in analyzer.frequent_pairs(min_support):
            for member in (pair.first, pair.second):
                parent.setdefault(member, member)
            root_a, root_b = find(pair.first), find(pair.second)
            if root_a != root_b:
                parent[root_b] = root_a

        cluster_disk: Dict[Extent, int] = {}
        next_disk = 0
        for extent in sorted(parent):
            root = find(extent)
            if root not in cluster_disk:
                cluster_disk[root] = next_disk % self.disks
                next_disk += 1
            self._disk_of[extent] = cluster_disk[root]

    @property
    def placed_extents(self) -> int:
        return len(self._disk_of)

    def disk_of(self, extent: Extent) -> int:
        return self._disk_of.get(extent, self._fallback.disk_of(extent))


def run_energy_experiment(
    timeline: Sequence[Tuple[float, Extent]],
    placement,
    disks: int,
    power: Optional[PowerModel] = None,
    duration: Optional[float] = None,
) -> EnergyStats:
    """Map a ``(timestamp, extent)`` timeline through a placement and
    integrate the array's energy."""
    model = DiskArrayEnergyModel(disks, power)
    accesses = [
        (timestamp, placement.disk_of(extent))
        for timestamp, extent in timeline
    ]
    return model.simulate(accesses, duration=duration)
