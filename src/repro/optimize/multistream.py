"""Automatic garbage-collection optimization in multi-stream SSDs (paper §V-1).

Multi-stream SSDs expose several append points ("streams"); data written
with the same stream ID lands in the same erase unit (EU).  If blocks with
similar *death times* share an EU, garbage collection finds victims with few
valid pages and the write amplification factor (WAF) drops.  The paper's
proposed predictor is:

    if two or more data chunks were frequently written together in the
    past, their death times will likely be similar,

i.e. feed *write* correlations from the characterization framework into
stream assignment.  This module implements:

* a page-mapped flash model with erase units, greedy garbage collection,
  and WAF accounting;
* stream assignment policies: a single-stream baseline and a
  correlation-informed policy that unions frequently-correlated write
  extents into clusters and gives each cluster a stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.analyzer import OnlineAnalyzer
from ..core.extent import Extent, ExtentPair


@dataclass(frozen=True)
class FlashConfig:
    """Geometry of the simulated flash device."""

    erase_units: int = 64
    pages_per_eu: int = 256
    streams: int = 8
    overprovision_eus: int = 4  # EUs kept free for GC headroom

    def __post_init__(self) -> None:
        if self.erase_units < 2 or self.pages_per_eu < 1:
            raise ValueError("need >= 2 erase units and >= 1 page per EU")
        if self.streams < 1:
            raise ValueError("need >= 1 stream")
        if not 0 < self.overprovision_eus < self.erase_units:
            raise ValueError("overprovision_eus must be in (0, erase_units)")
        if self.erase_units <= self.reserved_eus:
            raise ValueError(
                f"erase_units={self.erase_units} cannot cover the "
                f"{self.reserved_eus} reserved units (one open unit per "
                f"stream, one for GC, plus overprovisioning)"
            )

    @property
    def reserved_eus(self) -> int:
        """Units unavailable to live data: open units + GC + overprovision."""
        return self.overprovision_eus + self.streams + 1

    @property
    def capacity_pages(self) -> int:
        return self.erase_units * self.pages_per_eu

    @property
    def logical_capacity_pages(self) -> int:
        """Live pages the host may keep; the rest guarantees GC progress."""
        return (self.erase_units - self.reserved_eus) * self.pages_per_eu


@dataclass
class _EraseUnit:
    """One erase unit: its pages hold logical block addresses or None."""

    index: int
    pages: List[Optional[int]] = field(default_factory=list)
    valid: int = 0

    def is_full(self, pages_per_eu: int) -> bool:
        return len(self.pages) >= pages_per_eu


@dataclass
class FlashStats:
    """Write-amplification accounting."""

    host_writes: int = 0
    gc_relocations: int = 0
    erases: int = 0

    @property
    def device_writes(self) -> int:
        return self.host_writes + self.gc_relocations

    @property
    def waf(self) -> float:
        """Write amplification factor: device writes over host writes."""
        if self.host_writes == 0:
            return 1.0
        return self.device_writes / self.host_writes


class MultiStreamSsd:
    """A page-mapped flash device with multiple write streams.

    Each stream has its own open erase unit; writes to a stream append to
    that unit.  When no free erase unit remains for a stream to open,
    greedy garbage collection picks the closed unit with the fewest valid
    pages, relocates them (counting towards WAF), and erases it.
    """

    def __init__(self, config: Optional[FlashConfig] = None) -> None:
        self.config = config or FlashConfig()
        self.stats = FlashStats()
        self._units = [_EraseUnit(i) for i in range(self.config.erase_units)]
        self._erase_counts = [0] * self.config.erase_units
        self._free: List[int] = list(range(self.config.erase_units))
        self._open: Dict[int, int] = {}   # stream -> EU index
        self._mapping: Dict[int, Tuple[int, int]] = {}  # lba -> (eu, page)

    # -- internals -------------------------------------------------------------

    def _open_unit(self, stream: int) -> _EraseUnit:
        eu_index = self._open.get(stream)
        if eu_index is not None:
            unit = self._units[eu_index]
            if not unit.is_full(self.config.pages_per_eu):
                return unit
        attempts = 0
        while not self._free:
            freed = self._collect_garbage()
            attempts += 1
            if not freed and attempts >= self.config.erase_units:
                break
        if not self._free:
            raise RuntimeError("flash device is full even after garbage collection")
        eu_index = self._free.pop(0)
        self._open[stream] = eu_index
        return self._units[eu_index]

    def _closed_units(self) -> List[_EraseUnit]:
        open_units = set(self._open.values())
        return [
            unit
            for unit in self._units
            if unit.index not in open_units
            and unit.index not in self._free
            and unit.is_full(self.config.pages_per_eu)
        ]

    def _collect_garbage(self) -> bool:
        """Greedy GC: erase the closed unit with the fewest valid pages.

        Returns whether at least one unit was reclaimed.
        """
        candidates = self._closed_units()
        if not candidates:
            return False
        victim = min(candidates, key=lambda unit: unit.valid)
        survivors = [lba for lba in victim.pages if lba is not None
                     and self._mapping.get(lba, (None, None))[0] == victim.index]
        for lba in survivors:
            del self._mapping[lba]  # stale once the victim is erased
        victim.pages = []
        victim.valid = 0
        self._free.append(victim.index)
        self.stats.erases += 1
        self._erase_counts[victim.index] += 1
        for lba in survivors:
            self.stats.gc_relocations += 1
            self._append(lba, stream=-1)  # GC writes use a reserved stream
        return True

    def _append(self, lba: int, stream: int) -> None:
        unit = self._open_unit(stream)
        old = self._mapping.get(lba)
        if old is not None:
            old_unit = self._units[old[0]]
            if old_unit.pages[old[1]] == lba:
                old_unit.pages[old[1]] = None
                old_unit.valid -= 1
        page_index = len(unit.pages)
        unit.pages.append(lba)
        unit.valid += 1
        self._mapping[lba] = (unit.index, page_index)
        if unit.is_full(self.config.pages_per_eu):
            self._open.pop(stream, None)

    # -- host interface ----------------------------------------------------------

    def write(self, lba: int, stream: int = 0) -> None:
        """Host write of one logical page to the given stream."""
        if not 0 <= stream < self.config.streams:
            raise ValueError(
                f"stream must be in [0, {self.config.streams}), got {stream}"
            )
        live_pages = sum(unit.valid for unit in self._units)
        limit = self.config.logical_capacity_pages
        if lba not in self._mapping and live_pages >= limit:
            raise RuntimeError(
                f"logical capacity exceeded: {live_pages} live pages, limit {limit}"
            )
        self.stats.host_writes += 1
        self._append(lba, stream)

    def write_extent(self, extent: Extent, stream: int = 0,
                     page_blocks: int = 8) -> None:
        """Write an extent as its covering pages (``page_blocks`` blocks/page)."""
        first_page = extent.start // page_blocks
        last_page = (extent.end - 1) // page_blocks
        for page in range(first_page, last_page + 1):
            self.write(page, stream)

    def valid_page_histogram(self) -> List[int]:
        """Valid-page count of every erase unit (GC quality diagnostic)."""
        return [unit.valid for unit in self._units]

    def wear_report(self) -> "WearReport":
        """Per-unit erase counts -- the wear-leveling view (paper §V).

        Flash endurance is per erase unit; a placement policy that funnels
        all churn into a few units wears them out early even if WAF is
        low.  The report exposes the erase distribution and its imbalance.
        """
        return WearReport(tuple(self._erase_counts))


@dataclass(frozen=True)
class WearReport:
    """Erase-count distribution across erase units."""

    erase_counts: Tuple[int, ...]

    @property
    def total_erases(self) -> int:
        return sum(self.erase_counts)

    @property
    def max_erases(self) -> int:
        return max(self.erase_counts) if self.erase_counts else 0

    @property
    def mean_erases(self) -> float:
        if not self.erase_counts:
            return 0.0
        return self.total_erases / len(self.erase_counts)

    @property
    def imbalance(self) -> float:
        """Max-to-mean erase ratio; 1.0 is perfectly level wear."""
        mean = self.mean_erases
        return self.max_erases / mean if mean else 1.0


class StreamAssigner:
    """Base: map each written extent to a stream ID."""

    def assign(self, extent: Extent) -> int:
        raise NotImplementedError


class SingleStreamAssigner(StreamAssigner):
    """The log-structured baseline: every write shares one append point."""

    def assign(self, extent: Extent) -> int:
        return 0


class CorrelationStreamAssigner(StreamAssigner):
    """Streams from write correlations detected by the online analyzer.

    Frequent write-extent pairs are unioned into clusters (death-time
    groups); each cluster hashes to a stream.  Extents outside any cluster
    fall back to stream 0, so the assigner degrades gracefully to the
    single-stream baseline when no correlations are known.
    """

    def __init__(
        self,
        analyzer: Optional[OnlineAnalyzer],
        streams: int,
        min_support: int = 2,
        pairs: Optional[Sequence[Tuple[ExtentPair, int]]] = None,
    ) -> None:
        if streams < 2:
            raise ValueError("correlation assignment needs >= 2 streams")
        if pairs is None:
            if analyzer is None:
                raise ValueError("need an analyzer or an explicit pair list")
            pairs = analyzer.frequent_pairs(min_support)
        self.streams = streams
        self._cluster_of: Dict[Extent, int] = {}
        self._build_clusters(pairs)

    def _build_clusters(self, pairs: Sequence[Tuple[ExtentPair, int]]) -> None:
        parent: Dict[Extent, Extent] = {}

        def find(extent: Extent) -> Extent:
            root = extent
            while parent[root] != root:
                root = parent[root]
            while parent[extent] != root:
                parent[extent], extent = root, parent[extent]
            return root

        for pair, _tally in pairs:
            for member in (pair.first, pair.second):
                parent.setdefault(member, member)
            root_a, root_b = find(pair.first), find(pair.second)
            if root_a != root_b:
                parent[root_b] = root_a

        cluster_ids: Dict[Extent, int] = {}
        for extent in parent:
            root = find(extent)
            if root not in cluster_ids:
                cluster_ids[root] = len(cluster_ids)
            self._cluster_of[extent] = cluster_ids[root]

    @property
    def clusters(self) -> int:
        return len(set(self._cluster_of.values()))

    def assign(self, extent: Extent) -> int:
        cluster = self._cluster_of.get(extent)
        if cluster is None:
            return 0
        # Streams 1.. are reserved for clusters; 0 is the catch-all.
        return 1 + cluster % (self.streams - 1)


def death_time_workload(
    hot_groups: int = 4,
    extents_per_group: int = 2,
    extent_blocks: int = 64,
    rounds: int = 120,
    cold_extents: int = 200,
    cold_blocks: int = 8,
    warm_batch: int = 4,
    seed: int = 0,
) -> List[List[Extent]]:
    """Write transactions with divergent death times (the §V-1 scenario).

    *Hot* groups are sets of extents always (over)written together -- their
    pages die together when the group is next rewritten.  *Cold* extents are
    written up front and then refreshed slowly (``warm_batch`` per round,
    round-robin), so their pages live through many hot generations.
    Interleaved into a single log, every erase unit mixes soon-dead hot
    pages with long-lived cold pages and GC victims carry valid data;
    correlation-informed streams separate the populations and WAF falls
    towards 1.
    """
    import random as _random

    rng = _random.Random(seed)
    transactions: List[List[Extent]] = []
    cold_base = (hot_groups + 1) * 10_000_000
    cold_pool = [
        Extent(cold_base + index * 1000, cold_blocks)
        for index in range(cold_extents)
    ]
    cold_cursor = 0
    warm_cursor = 0
    for round_index in range(rounds):
        group = round_index % hot_groups
        base = group * 10_000_000
        transactions.append([
            Extent(base + member * 100_000, extent_blocks)
            for member in range(extents_per_group)
        ])
        remaining = cold_extents - cold_cursor
        if remaining > 0:
            # Initial population: lay the cold data down early.
            take = min(remaining, max(1, cold_extents // max(1, rounds // 4)
                                      + rng.randint(0, 1)))
            transactions.append(cold_pool[cold_cursor:cold_cursor + take])
            cold_cursor += take
        elif warm_batch > 0 and cold_extents > 0:
            # Slow refresh: rewrite a few cold extents round-robin, so the
            # cold population keeps re-entering the log far from its peers.
            batch = [
                cold_pool[(warm_cursor + offset) % cold_extents]
                for offset in range(warm_batch)
            ]
            warm_cursor = (warm_cursor + warm_batch) % cold_extents
            transactions.append(batch)
    return transactions


def run_waf_experiment(
    write_transactions: Sequence[Sequence[Extent]],
    assigner: StreamAssigner,
    config: Optional[FlashConfig] = None,
    page_blocks: int = 8,
) -> FlashStats:
    """Replay write transactions through the flash model; return WAF stats."""
    device = MultiStreamSsd(config)
    for extents in write_transactions:
        for extent in extents:
            device.write_extent(extent, assigner.assign(extent), page_blocks)
    return device.stats
