"""Automatic parallel I/O optimization in open-channel SSDs (paper §V-2).

Open-channel SSDs expose their internal Parallel Units (PUs) to the host,
which owns data placement.  Accesses to different PUs proceed fully in
parallel; accesses landing on the same PU serialise.  The paper's proposed
optimization is:

    if two or more data chunks were frequently read together in the past,
    they will likely be read together again -- so place correlated *read*
    extents on different PUs.

This module implements a PU service model, the RAID-0-style striping
baseline, and a correlation-aware placer that greedily colors the
correlation graph so the strongest-correlated extents land on distinct PUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.analyzer import OnlineAnalyzer
from ..core.extent import Extent, ExtentPair


@dataclass(frozen=True)
class OcssdConfig:
    """Open-channel device geometry and timing."""

    parallel_units: int = 8
    read_latency: float = 60e-6      # one extent read on one PU
    stripe_blocks: int = 256          # RAID-0 baseline stripe width

    def __post_init__(self) -> None:
        if self.parallel_units < 1:
            raise ValueError("need >= 1 parallel unit")
        if self.read_latency <= 0 or self.stripe_blocks < 1:
            raise ValueError("read_latency must be > 0 and stripe_blocks >= 1")


class Placement:
    """Maps extents to parallel units."""

    def unit_of(self, extent: Extent) -> int:
        raise NotImplementedError


class StripingPlacement(Placement):
    """RAID-0-like striping over PUs -- the paper's initial-placement baseline.

    Effective for large sequential accesses, but correlated random extents
    can collide on one PU purely by address arithmetic, and (as the paper
    notes) out-of-place updates skew the layout over time.
    """

    def __init__(self, config: OcssdConfig) -> None:
        self.config = config

    def unit_of(self, extent: Extent) -> int:
        return (extent.start // self.config.stripe_blocks) % self.config.parallel_units


class CorrelationPlacement(Placement):
    """Greedy graph coloring of the read-correlation graph onto PUs.

    Extents are visited strongest-correlation-first; each is assigned the
    least-loaded PU not already used by a correlated neighbour (when every
    PU is taken by neighbours, the least-loaded PU overall wins).  Unknown
    extents fall back to the striping rule, so cold traffic still spreads.
    """

    def __init__(
        self,
        analyzer: Optional[OnlineAnalyzer],
        config: OcssdConfig,
        min_support: int = 2,
        pairs: Optional[Sequence[Tuple[ExtentPair, int]]] = None,
    ) -> None:
        if pairs is None:
            if analyzer is None:
                raise ValueError("need an analyzer or an explicit pair list")
            pairs = analyzer.frequent_pairs(min_support)
        self.config = config
        self._fallback = StripingPlacement(config)
        self._unit_of: Dict[Extent, int] = {}
        self._place(pairs)

    def _place(self, pairs: Sequence[Tuple[ExtentPair, int]]) -> None:
        neighbours: Dict[Extent, List[Extent]] = {}
        weight: Dict[Extent, int] = {}
        for pair, tally in pairs:
            neighbours.setdefault(pair.first, []).append(pair.second)
            neighbours.setdefault(pair.second, []).append(pair.first)
            weight[pair.first] = weight.get(pair.first, 0) + tally
            weight[pair.second] = weight.get(pair.second, 0) + tally

        load = [0] * self.config.parallel_units
        for extent in sorted(neighbours, key=lambda e: (-weight[e], e)):
            taken = {
                self._unit_of[other]
                for other in neighbours[extent]
                if other in self._unit_of
            }
            candidates = [
                unit for unit in range(self.config.parallel_units)
                if unit not in taken
            ] or list(range(self.config.parallel_units))
            chosen = min(candidates, key=lambda unit: load[unit])
            self._unit_of[extent] = chosen
            load[chosen] += 1

    @property
    def placed_extents(self) -> int:
        return len(self._unit_of)

    def unit_of(self, extent: Extent) -> int:
        unit = self._unit_of.get(extent)
        if unit is None:
            return self._fallback.unit_of(extent)
        return unit


@dataclass
class ParallelIoStats:
    """Latency accounting for parallel read transactions."""

    transactions: int = 0
    total_latency: float = 0.0
    serialized_latency: float = 0.0  # if every extent had hit one PU

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.transactions if self.transactions else 0.0

    @property
    def parallel_speedup(self) -> float:
        """How much faster than fully serialised service the placement is."""
        if self.total_latency == 0.0:
            return 1.0
        return self.serialized_latency / self.total_latency


def service_transaction(
    extents: Sequence[Extent],
    placement: Placement,
    config: OcssdConfig,
) -> float:
    """Latency of reading all extents at once under the placement.

    Each PU serves its share of the transaction serially; PUs run in
    parallel, so the transaction completes when the busiest PU finishes.
    """
    per_unit: Dict[int, int] = {}
    for extent in extents:
        unit = placement.unit_of(extent)
        per_unit[unit] = per_unit.get(unit, 0) + 1
    if not per_unit:
        return 0.0
    return max(per_unit.values()) * config.read_latency


def run_parallel_read_experiment(
    read_transactions: Iterable[Sequence[Extent]],
    placement: Placement,
    config: Optional[OcssdConfig] = None,
) -> ParallelIoStats:
    """Service every read transaction; accumulate latency statistics."""
    config = config or OcssdConfig()
    stats = ParallelIoStats()
    for extents in read_transactions:
        latency = service_transaction(extents, placement, config)
        stats.transactions += 1
        stats.total_latency += latency
        stats.serialized_latency += len(extents) * config.read_latency
    return stats
