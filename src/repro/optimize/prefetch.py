"""Correlation-driven prefetching (paper §I / §V: caching & prefetching).

.. deprecated::
    This module grew into the :mod:`repro.cache` subsystem and is now a
    compatibility shim over it.  New code should import from
    :mod:`repro.cache` directly:

    * ``BlockCache``             -> :class:`repro.cache.SimulatedBlockCache`
      (``BlockCache`` remains as an LRU-policy subclass below)
    * ``CacheStats``             -> :class:`repro.cache.CacheStats`
    * ``CorrelationPrefetcher``  -> :class:`repro.cache.CorrelationPrefetcher`
    * ``RulePrefetcher``         -> :class:`repro.cache.RulePrefetcher`
    * ``run_cache_experiment``   -> :func:`repro.cache.simulate_cache`

    The port also tightened prefetch attribution: a prefetched block
    that is evicted unused and later re-fetched on demand is a plain
    demand fill (counted in ``demand_refetches``), never a second
    prefetch hit.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.extent import Extent
from ..cache.prefetcher import (  # noqa: F401  (re-exports)
    CorrelationPrefetcher,
    RulePrefetcher,
)
from ..cache.simcache import SimulatedBlockCache
from ..cache.stats import CacheStats  # noqa: F401  (re-export)


class BlockCache(SimulatedBlockCache):
    """The legacy LRU block cache, now a fixed-policy simulator.

    Kept so existing callers (and :mod:`repro.optimize`'s namespace)
    construct the same LRU-replacement cache with the same signature;
    the pluggable-policy superclass lives in :mod:`repro.cache`.
    """

    def __init__(self, capacity_blocks: int) -> None:
        super().__init__(capacity_blocks, policy="lru")


def run_cache_experiment(
    accesses: Iterable[Extent],
    capacity_blocks: int,
    prefetcher: Optional[CorrelationPrefetcher] = None,
) -> CacheStats:
    """Drive a block cache over an access stream, with/without prefetching."""
    from ..cache.loop import simulate_cache

    return simulate_cache(
        accesses, capacity_blocks, policy="lru", prefetcher=prefetcher
    )
