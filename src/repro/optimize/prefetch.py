"""Correlation-driven prefetching (paper §I / §V: caching & prefetching).

Prefetching is the first optimization the paper's introduction motivates:
once the framework knows that extent A is frequently followed by extent B,
a cache can pull B in when A is requested.  This module provides a block
cache simulator with pluggable prefetch policies so the benefit of detected
correlations is measurable as a hit-ratio delta over plain LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.analyzer import OnlineAnalyzer
from ..core.extent import Extent, ExtentPair


@dataclass
class CacheStats:
    """Hit/miss accounting, with prefetch effectiveness split out."""

    hits: int = 0
    misses: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0   # hits on blocks that entered via prefetch

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetched blocks that saw a hit."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetch_hits / self.prefetches_issued


class BlockCache:
    """An LRU cache of blocks with optional correlation prefetching.

    Capacity is in blocks.  On access, every block of the extent is looked
    up; missing blocks are fetched.  With a prefetcher attached, the
    frequent partners of the accessed extent are pulled in as well (marked,
    so prefetch hits can be attributed).
    """

    def __init__(self, capacity_blocks: int) -> None:
        if capacity_blocks < 1:
            raise ValueError("cache needs >= 1 block of capacity")
        self.capacity = capacity_blocks
        self.stats = CacheStats()
        self._blocks: "OrderedDict[int, bool]" = OrderedDict()  # block -> prefetched

    def __len__(self) -> int:
        return len(self._blocks)

    def _insert(self, block: int, prefetched: bool) -> None:
        if block in self._blocks:
            self._blocks.move_to_end(block)
            return
        while len(self._blocks) >= self.capacity:
            self._blocks.popitem(last=False)
        self._blocks[block] = prefetched

    def access(self, extent: Extent) -> int:
        """Demand access; returns the number of block hits."""
        hits = 0
        for block in extent.blocks():
            if block in self._blocks:
                hits += 1
                self.stats.hits += 1
                if self._blocks[block]:
                    self.stats.prefetch_hits += 1
                    self._blocks[block] = False  # attribute each prefetch once
                self._blocks.move_to_end(block)
            else:
                self.stats.misses += 1
                self._insert(block, prefetched=False)
        return hits

    def prefetch(self, extent: Extent) -> None:
        """Speculatively load an extent's blocks (no hit/miss accounting)."""
        for block in extent.blocks():
            if block not in self._blocks:
                self.stats.prefetches_issued += 1
                self._insert(block, prefetched=True)


class CorrelationPrefetcher:
    """Prefetches the frequent partners of each accessed extent.

    Built from an analyzer's correlation table; ``fanout`` bounds how many
    partners are prefetched per access (strongest first), keeping cache
    pollution in check.
    """

    def __init__(
        self,
        analyzer: OnlineAnalyzer,
        min_support: int = 2,
        fanout: int = 2,
    ) -> None:
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.fanout = fanout
        self._partners: Dict[Extent, List[Tuple[Extent, int]]] = {}
        for pair, tally in analyzer.frequent_pairs(min_support):
            self._partners.setdefault(pair.first, []).append((pair.second, tally))
            self._partners.setdefault(pair.second, []).append((pair.first, tally))
        for partners in self._partners.values():
            partners.sort(key=lambda entry: (-entry[1], entry[0]))

    def partners_of(self, extent: Extent) -> List[Extent]:
        return [
            partner for partner, _tally in self._partners.get(extent, [])
        ][: self.fanout]


class RulePrefetcher:
    """Directional prefetching from association rules.

    Unlike :class:`CorrelationPrefetcher`, which prefetches the partners of
    a pair in both directions, a rule prefetcher follows ``A -> B`` rules
    only in their mined direction and only above a confidence threshold --
    so an extent that *follows* a popular extent, but rarely precedes it,
    does not trigger wasted prefetches of the popular one.
    """

    def __init__(self, rule_index, fanout: int = 2) -> None:
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self._rules = rule_index
        self.fanout = fanout

    def partners_of(self, extent: Extent) -> List[Extent]:
        return self._rules.consequents_of(extent, limit=self.fanout)


def run_cache_experiment(
    accesses: Iterable[Extent],
    capacity_blocks: int,
    prefetcher: Optional[CorrelationPrefetcher] = None,
) -> CacheStats:
    """Drive a block cache over an access stream, with/without prefetching."""
    cache = BlockCache(capacity_blocks)
    for extent in accesses:
        cache.access(extent)
        if prefetcher is not None:
            for partner in prefetcher.partners_of(extent):
                cache.prefetch(partner)
    return cache.stats
