"""Correlation-aware I/O scheduling (paper §V's optimization list).

Schedulers reorder queued requests.  A correlation-aware scheduler uses
the synopsis the other way around from prefetching: when it dispatches a
request, it *promotes* queued requests correlated with it so they dispatch
back-to-back.  Downstream machinery that exploits locality -- device-side
read caches, readahead, a single-actuator disk arm -- then sees correlated
work as one batch instead of interleaved fragments.

Two policies over the same queue model:

* :class:`FifoScheduler` -- dispatch in arrival order (the baseline);
* :class:`CorrelationScheduler` -- FIFO, but after each dispatch any
  queued request whose extent is a frequent partner of the dispatched one
  jumps to the front (bounded by a fairness window so nothing starves).

The quality metric is *partner distance*: how many dispatches separate the
two members of a correlated pair.  Distance 1 means the pair dispatched
adjacently.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..core.analyzer import OnlineAnalyzer
from ..core.extent import Extent, ExtentPair


@dataclass
class SchedulerStats:
    """Dispatch-order quality accounting."""

    dispatched: int = 0
    promotions: int = 0
    partner_distances: List[int] = field(default_factory=list)

    @property
    def mean_partner_distance(self) -> float:
        if not self.partner_distances:
            return 0.0
        return sum(self.partner_distances) / len(self.partner_distances)

    @property
    def adjacent_fraction(self) -> float:
        """Share of correlated pairs dispatched back-to-back."""
        if not self.partner_distances:
            return 0.0
        adjacent = sum(1 for d in self.partner_distances if d == 1)
        return adjacent / len(self.partner_distances)


class FifoScheduler:
    """Arrival-order dispatch -- the noop elevator."""

    def __init__(self) -> None:
        self._queue: Deque[Extent] = deque()

    def submit(self, extent: Extent) -> None:
        self._queue.append(extent)

    def dispatch(self) -> Optional[Extent]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class CorrelationScheduler:
    """FIFO with correlated-partner promotion.

    ``fairness_window`` bounds how deep in the queue a partner may be
    pulled from; requests deeper than that dispatch in their own time, so
    a hot correlation cannot starve unrelated traffic indefinitely.
    """

    def __init__(
        self,
        analyzer: OnlineAnalyzer,
        min_support: int = 2,
        fairness_window: int = 16,
    ) -> None:
        if fairness_window < 1:
            raise ValueError("fairness_window must be >= 1")
        self.fairness_window = fairness_window
        self._queue: Deque[Extent] = deque()
        self.stats_promotions = 0
        self._partners: Dict[Extent, set] = {}
        for pair, _tally in analyzer.frequent_pairs(min_support):
            self._partners.setdefault(pair.first, set()).add(pair.second)
            self._partners.setdefault(pair.second, set()).add(pair.first)

    def submit(self, extent: Extent) -> None:
        self._queue.append(extent)

    def dispatch(self) -> Optional[Extent]:
        if not self._queue:
            return None
        head = self._queue.popleft()
        partners = self._partners.get(head)
        if partners:
            window = min(self.fairness_window, len(self._queue))
            for index in range(window):
                if self._queue[index] in partners:
                    promoted = self._queue[index]
                    del self._queue[index]
                    self._queue.appendleft(promoted)
                    self.stats_promotions += 1
                    break
        return head

    def __len__(self) -> int:
        return len(self._queue)


def run_dispatch_experiment(
    arrivals: Sequence[Extent],
    scheduler,
    watched_pairs: Sequence[ExtentPair],
    queue_depth: int = 32,
) -> SchedulerStats:
    """Feed arrivals through the scheduler and score dispatch locality.

    ``queue_depth`` requests are admitted before dispatching begins, and
    the queue is refilled after each dispatch -- the steady state of a
    busy device.  Partner distance is measured between consecutive
    dispatches of the two members of each watched pair (closest pairing
    of each member occurrence).
    """
    if queue_depth < 1:
        raise ValueError("queue_depth must be >= 1")
    stats = SchedulerStats()
    order: List[Extent] = []
    pending = iter(arrivals)
    admitted = 0
    for extent in pending:
        scheduler.submit(extent)
        admitted += 1
        if admitted >= queue_depth:
            break
    while True:
        dispatched = scheduler.dispatch()
        if dispatched is None:
            break
        order.append(dispatched)
        stats.dispatched += 1
        try:
            scheduler.submit(next(pending))
        except StopIteration:
            pass
    stats.promotions = getattr(scheduler, "stats_promotions", 0)

    positions: Dict[Extent, List[int]] = {}
    for index, extent in enumerate(order):
        positions.setdefault(extent, []).append(index)
    for pair in watched_pairs:
        first_positions = positions.get(pair.first, [])
        second_positions = positions.get(pair.second, [])
        for position in first_positions:
            candidates = [
                abs(other - position) for other in second_positions
            ]
            if candidates:
                stats.partner_distances.append(min(candidates))
    return stats
