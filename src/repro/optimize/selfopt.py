"""The closed loop: monitoring -> analysis -> automatic optimization.

Figure 3 of the paper shows the third module -- "automatic optimization" --
consuming the online analysis output.  This module closes that loop: a
:class:`SelfOptimizingController` subscribes to the monitor's transaction
stream, keeps a typed synopsis up to date, and periodically refreshes two
live policies from it:

* a stream assigner for the multi-stream flash device, rebuilt from the
  current *write* correlations (death-time prediction, §V-1);
* a parallel-unit placement for the open-channel device, rebuilt from the
  current *read* correlations (§V-2).

Between refreshes the policies are stable (re-clustering on every
transaction would thrash placements); until the first refresh they degrade
to the baselines (single stream, striping), so the controller is safe to
attach from a cold start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.config import AnalyzerConfig
from ..core.extent import Extent
from ..core.typed import TypedOnlineAnalyzer
from ..monitor.transaction import Transaction
from .multistream import (
    CorrelationStreamAssigner,
    FlashConfig,
    SingleStreamAssigner,
)
from .openchannel import (
    CorrelationPlacement,
    OcssdConfig,
    Placement,
    StripingPlacement,
)


@dataclass
class ControllerStats:
    """How often the controller has acted."""

    transactions: int = 0
    refreshes: int = 0
    write_pairs_last_refresh: int = 0
    read_pairs_last_refresh: int = 0


class SelfOptimizingController:
    """Keeps optimization policies synchronised with the live synopsis.

    Use as a monitor sink::

        controller = SelfOptimizingController(flash_config, ocssd_config)
        monitor.add_sink(controller.on_transaction)
        ...
        stream = controller.assign_stream(extent)   # for writes
        unit = controller.place(extent)             # for reads
    """

    def __init__(
        self,
        flash_config: Optional[FlashConfig] = None,
        ocssd_config: Optional[OcssdConfig] = None,
        analyzer: Optional[TypedOnlineAnalyzer] = None,
        refresh_interval: int = 500,
        min_support: int = 3,
    ) -> None:
        if refresh_interval < 1:
            raise ValueError("refresh_interval must be >= 1")
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        self.flash_config = flash_config or FlashConfig()
        self.ocssd_config = ocssd_config or OcssdConfig()
        self.analyzer = analyzer if analyzer is not None else (
            TypedOnlineAnalyzer(AnalyzerConfig())
        )
        self.refresh_interval = refresh_interval
        self.min_support = min_support
        self.stats = ControllerStats()
        self._stream_assigner = SingleStreamAssigner()
        self._placement: Placement = StripingPlacement(self.ocssd_config)

    # -- the monitor sink -----------------------------------------------------

    def on_transaction(self, transaction: Transaction) -> None:
        """Fold one transaction into the synopsis; refresh when due."""
        self.analyzer.process_transaction(transaction)
        self.stats.transactions += 1
        if self.stats.transactions % self.refresh_interval == 0:
            self.refresh()

    # -- policy refresh -----------------------------------------------------------

    def refresh(self) -> None:
        """Rebuild both policies from the current synopsis contents."""
        write_pairs = self.analyzer.write_correlations(self.min_support)
        if write_pairs and self.flash_config.streams >= 2:
            self._stream_assigner = CorrelationStreamAssigner(
                None, self.flash_config.streams, pairs=write_pairs
            )
        read_pairs = self.analyzer.read_correlations(self.min_support)
        if read_pairs:
            self._placement = CorrelationPlacement(
                None, self.ocssd_config, pairs=read_pairs
            )
        self.stats.refreshes += 1
        self.stats.write_pairs_last_refresh = len(write_pairs)
        self.stats.read_pairs_last_refresh = len(read_pairs)

    # -- the live policies ----------------------------------------------------------

    def assign_stream(self, extent: Extent) -> int:
        """Stream ID for a write to ``extent`` (0 = the default stream)."""
        return self._stream_assigner.assign(extent)

    def place(self, extent: Extent) -> int:
        """Parallel unit for ``extent`` under the current placement."""
        return self._placement.unit_of(extent)

    @property
    def is_optimizing(self) -> bool:
        """Whether any refresh has replaced the baseline policies."""
        return not isinstance(self._stream_assigner, SingleStreamAssigner) \
            or not isinstance(self._placement, StripingPlacement)
