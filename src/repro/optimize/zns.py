"""Zoned-namespace (ZNS) SSD placement (paper §V's third enabler).

ZNS SSDs divide the LBA space into zones that must be written
sequentially and reclaimed wholesale by a zone reset -- the host owns
placement and garbage collection, just as with multi-stream and
open-channel devices, but under a stricter contract: no in-place updates,
one write pointer per zone.  The paper lists ZNS alongside multi-stream
and open-channel SSDs as the hardware its framework would optimise.

The optimization mirrors §V-1's death-time argument: a host FTL that
groups correlated writes into the same zone produces zones that die
together (reset with little or no valid data to relocate), while a single
append zone mixes lifetimes and forces copy-before-reset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.extent import Extent
from .multistream import StreamAssigner


@dataclass(frozen=True)
class ZnsConfig:
    """Zoned device geometry."""

    zones: int = 32
    zone_pages: int = 64
    open_zone_limit: int = 8   # max simultaneously open zones (ZNS MAR/MOR)
    reserved_zones: int = 2    # free zones kept for reclaim headroom

    def __post_init__(self) -> None:
        if self.zones < 2 or self.zone_pages < 1:
            raise ValueError("need >= 2 zones and >= 1 page per zone")
        if not 1 <= self.open_zone_limit < self.zones:
            raise ValueError("open_zone_limit must be in [1, zones)")
        if not 0 < self.reserved_zones < self.zones:
            raise ValueError("reserved_zones must be in (0, zones)")

    @property
    def capacity_pages(self) -> int:
        return self.zones * self.zone_pages

    @property
    def logical_capacity_pages(self) -> int:
        reserve = self.reserved_zones + self.open_zone_limit
        return max(1, (self.zones - reserve)) * self.zone_pages


@dataclass
class _Zone:
    index: int
    write_pointer: int = 0
    lbas: List[Optional[int]] = field(default_factory=list)
    valid: int = 0

    def is_full(self, zone_pages: int) -> bool:
        return self.write_pointer >= zone_pages


@dataclass
class ZnsStats:
    """Reclaim accounting (the ZNS analogue of WAF)."""

    host_writes: int = 0
    reclaim_copies: int = 0
    resets: int = 0

    @property
    def waf(self) -> float:
        if self.host_writes == 0:
            return 1.0
        return (self.host_writes + self.reclaim_copies) / self.host_writes


class ZnsDevice:
    """A host-managed zoned device with per-group open zones.

    ``write(lba, group)`` appends to the group's open zone (opening one
    when needed, within the open-zone limit -- groups beyond the limit
    share hash-assigned open zones).  When free zones run out, the closed
    zone with the fewest valid pages is reclaimed: its survivors are
    appended elsewhere (counted as reclaim copies) and the zone is reset.
    """

    def __init__(self, config: Optional[ZnsConfig] = None) -> None:
        self.config = config or ZnsConfig()
        self.stats = ZnsStats()
        self._zones = [_Zone(i) for i in range(self.config.zones)]
        self._free: List[int] = list(range(self.config.zones))
        self._open: Dict[int, int] = {}   # slot -> zone index
        self._mapping: Dict[int, Tuple[int, int]] = {}

    def _slot_of(self, group: int) -> int:
        return group % self.config.open_zone_limit

    def _open_zone(self, slot: int) -> _Zone:
        zone_index = self._open.get(slot)
        if zone_index is not None:
            zone = self._zones[zone_index]
            if not zone.is_full(self.config.zone_pages):
                return zone
        attempts = 0
        while not self._free:
            if not self._reclaim() :
                attempts += 1
                if attempts >= self.config.zones:
                    break
        if not self._free:
            raise RuntimeError("zoned device full even after reclaim")
        zone_index = self._free.pop(0)
        self._open[slot] = zone_index
        return self._zones[zone_index]

    def _closed_zones(self) -> List[_Zone]:
        open_zones = set(self._open.values())
        return [
            zone for zone in self._zones
            if zone.index not in open_zones
            and zone.index not in self._free
            and zone.is_full(self.config.zone_pages)
        ]

    def _reclaim(self) -> bool:
        candidates = self._closed_zones()
        if not candidates:
            return False
        victim = min(candidates, key=lambda zone: zone.valid)
        survivors = [
            lba for lba in victim.lbas
            if lba is not None
            and self._mapping.get(lba, (None, None))[0] == victim.index
        ]
        for lba in survivors:
            del self._mapping[lba]
        victim.lbas = []
        victim.write_pointer = 0
        victim.valid = 0
        self._free.append(victim.index)
        self.stats.resets += 1
        for lba in survivors:
            self.stats.reclaim_copies += 1
            self._append(lba, slot=-1 % self.config.open_zone_limit)
        return True

    def _append(self, lba: int, slot: int) -> None:
        zone = self._open_zone(slot)
        old = self._mapping.get(lba)
        if old is not None:
            old_zone = self._zones[old[0]]
            if old[1] < len(old_zone.lbas) and old_zone.lbas[old[1]] == lba:
                old_zone.lbas[old[1]] = None
                old_zone.valid -= 1
        position = zone.write_pointer
        zone.lbas.append(lba)
        zone.write_pointer += 1
        zone.valid += 1
        self._mapping[lba] = (zone.index, position)
        if zone.is_full(self.config.zone_pages):
            for slot_key, zone_index in list(self._open.items()):
                if zone_index == zone.index:
                    del self._open[slot_key]

    # -- host interface -----------------------------------------------------------

    def write(self, lba: int, group: int = 0) -> None:
        """Host write of one logical page tagged with a placement group."""
        live = sum(zone.valid for zone in self._zones)
        if lba not in self._mapping and live >= self.config.logical_capacity_pages:
            raise RuntimeError(
                f"logical capacity exceeded: {live} live pages"
            )
        self.stats.host_writes += 1
        self._append(lba, self._slot_of(group))

    def write_extent(self, extent: Extent, group: int = 0,
                     page_blocks: int = 8) -> None:
        first = extent.start // page_blocks
        last = (extent.end - 1) // page_blocks
        for page in range(first, last + 1):
            self.write(page, group)

    def zone_validity(self) -> List[int]:
        return [zone.valid for zone in self._zones]


def run_zns_experiment(
    write_transactions,
    assigner: StreamAssigner,
    config: Optional[ZnsConfig] = None,
    page_blocks: int = 8,
) -> ZnsStats:
    """Replay write transactions onto a zoned device; return WAF stats.

    ``assigner`` maps extents to placement groups -- the same interface as
    the multi-stream experiment, so the single-stream baseline and the
    correlation-informed assigner plug straight in.
    """
    device = ZnsDevice(config)
    for extents in write_transactions:
        for extent in extents:
            device.write_extent(extent, assigner.assign(extent), page_blocks)
    return device.stats
