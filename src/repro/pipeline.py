"""End-to-end pipeline: replay -> monitor -> online analysis.

This wires the substrates together exactly as the paper's evaluation does
(Fig. 3 and Section IV-A): a trace is replayed against a device model, the
monitor consumes the block-layer issue events, feeds measured latencies to
the dynamic transaction window, groups events into transactions, and hands
them simultaneously to the online analyzer and -- optionally -- to a
recorder whose stored transactions drive offline FIM for ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Union

from .blkdev.device import SimulatedDevice, SsdDevice
from .blkdev.replay import ReplayResult, replay_timed
from .cache.loop import CacheDriver
from .cache.prefetcher import SynopsisPrefetcher
from .cache.simcache import SimulatedBlockCache
from .cache.stats import CacheStats
from .core.analyzer import OnlineAnalyzer
from .core.config import AnalyzerConfig
from .core.extent import ExtentPair
from .engine.backends.host import BackendEngine
from .engine.procshard import ProcessShardedAnalyzer
from .engine.sharded import ShardedAnalyzer
from .monitor.batch import EventBatch, TransactionBatch
from .monitor.monitor import (
    DEFAULT_MAX_TRANSACTION_SIZE,
    GroupingMode,
    Monitor,
    MonitorStats,
    TransactionRecorder,
)
from .monitor.window import DynamicLatencyWindow, WindowPolicy
from .telemetry.metrics import MetricsRegistry
from .trace.record import TraceRecord


@dataclass
class PipelineResult:
    """Everything one end-to-end run produces.

    ``analyzer`` is whichever synopsis engine the run used: a (typed)
    :class:`OnlineAnalyzer` or a sharded engine -- both answer
    ``frequent_pairs`` / ``pair_frequencies`` / ``report()``.
    """

    replay: ReplayResult
    monitor_stats: MonitorStats
    analyzer: object
    recorder: Optional[TransactionRecorder]
    registry: Optional[MetricsRegistry] = None
    #: The monitor the run used.  Kept on the result so its telemetry
    #: collector (weakly held by the registry) stays alive for post-run
    #: export.
    monitor: Optional[Monitor] = None
    #: The simulated prefetching cache, when the run attached one
    #: (``cache=`` knob); its driver ran ahead of the analyzer on every
    #: transaction, so hit ratios reflect strictly-causal prefetching.
    cache: Optional[SimulatedBlockCache] = None

    def frequent_pairs(self, min_support: int = 2):
        """Detected correlations, strongest first."""
        return self.analyzer.frequent_pairs(min_support)

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/prefetch counters of the attached cache."""
        if self.cache is None:
            raise ValueError("pipeline ran without cache=")
        return self.cache.stats

    def offline_transactions(self) -> List[List]:
        """Recorded transactions as extent lists (offline FIM input)."""
        if self.recorder is None:
            raise ValueError("pipeline ran without offline recording")
        return self.recorder.extent_transactions()

    def release(self) -> None:
        """Shut down a process-backed engine's shard worker fleet.

        A run with ``parallel="process"`` leaves live worker processes
        behind the returned analyzer; call this once the result has been
        queried.  A no-op for in-process engines.
        """
        close = getattr(self.analyzer, "close", None)
        if close is not None:
            close()


class _EventBatcher:
    """Buffers replay listener callbacks into ``Monitor.on_events`` batches.

    With ``columnar=True`` each flushed batch is first converted to an
    :class:`EventBatch` so the monitor takes its vectorized lane; a batch
    numpy cannot represent (e.g. an offset beyond int64) falls back to
    the object list for that flush only.
    """

    def __init__(self, monitor: Monitor, batch_size: int,
                 columnar: bool = True) -> None:
        self._monitor = monitor
        self._batch_size = batch_size
        self._columnar = columnar
        self._buffer: List = []

    def add(self, event) -> None:
        buffer = self._buffer
        buffer.append(event)
        if len(buffer) >= self._batch_size:
            self._flush()

    def drain(self) -> None:
        if self._buffer:
            self._flush()

    def _flush(self) -> None:
        buffer = self._buffer
        batch = buffer
        if self._columnar:
            try:
                batch = EventBatch.from_events(buffer)
            except (OverflowError, ValueError, TypeError):
                pass
        self._monitor.on_events(batch)
        buffer.clear()


class _AnalyzerSink:
    """Monitor sink feeding a batch-capable synopsis engine.

    Scalar deliveries (per-event ingest, window flushes) arrive via
    ``__call__``; the monitor's columnar lane hands a whole
    :class:`TransactionBatch` to :meth:`on_transaction_batch`.
    """

    __slots__ = ("_analyzer", "_parallel")

    def __init__(self, analyzer, parallel: bool) -> None:
        self._analyzer = analyzer
        self._parallel = parallel

    def __call__(self, transaction) -> None:
        process = getattr(self._analyzer, "process_transaction", None)
        if process is not None:
            process(transaction)
        else:  # batch-only engine (process-backed shards)
            self._analyzer.process_transaction_batch(
                TransactionBatch.from_transactions([transaction])
            )

    def on_transaction_batch(self, batch) -> None:
        self._analyzer.process_transaction_batch(
            batch, parallel=self._parallel
        )


class _CacheSink:
    """Monitor sink serving the prefetching cache.

    Registered *before* the analyzer sink, so on every transaction the
    cache serves (and prefetches) off what the synopsis learned from
    strictly earlier traffic -- the closed loop stays causal even though
    both ride the same monitor.
    """

    __slots__ = ("_driver",)

    def __init__(self, driver: CacheDriver) -> None:
        self._driver = driver

    def __call__(self, transaction) -> None:
        self._driver.on_transaction(transaction.extents)

    def on_transaction_batch(self, batch) -> None:
        on_transaction = self._driver.on_transaction
        for transaction in batch.transactions():
            on_transaction(transaction.extents)


def run_pipeline(
    records: Sequence[TraceRecord],
    device: Optional[SimulatedDevice] = None,
    config: Optional[AnalyzerConfig] = None,
    window: Optional[WindowPolicy] = None,
    speedup: float = 1.0,
    record_offline: bool = True,
    max_transaction_size: int = DEFAULT_MAX_TRANSACTION_SIZE,
    dedup: bool = True,
    pid_filter: Optional[Set[int]] = None,
    grouping: GroupingMode = GroupingMode.GAP,
    collect_events: bool = False,
    analyzer: Optional[OnlineAnalyzer] = None,
    shards: int = 1,
    batch_size: Optional[int] = None,
    parallel: Optional[str] = None,
    columnar: bool = True,
    registry: Optional[MetricsRegistry] = None,
    cache: Optional[Union[int, SimulatedBlockCache]] = None,
    cache_policy: str = "lru",
    prefetch: bool = True,
) -> PipelineResult:
    """Replay ``records`` through the full monitoring/analysis stack.

    Defaults reproduce the paper's configuration: an SSD replay device, a
    dynamic window of twice the average measured latency, transactions
    capped at 8 deduplicated requests, and dual online + offline output.
    Set ``collect_events`` to keep every issue event in the result (memory
    proportional to the trace; off by default).

    ``shards > 1`` characterizes with a hash-partitioned
    :class:`~repro.engine.sharded.ShardedAnalyzer` (N shard synopses at
    ``capacity / N`` each) instead of a single analyzer.  ``batch_size``
    buffers that many issue events and feeds them through the monitor's
    amortized batch path (:meth:`Monitor.on_events`) instead of one call
    per event -- results are identical, ingest is faster.  ``columnar``
    (on by default) converts each such batch to an
    :class:`~repro.monitor.batch.EventBatch` so the monitor's vectorized
    lane cuts transactions in bulk and the engine consumes
    :class:`~repro.monitor.batch.TransactionBatch` columns.

    ``parallel`` selects how a sharded engine processes those batches:
    ``"thread"`` runs one worker thread per shard, ``"process"`` backs
    the run with a
    :class:`~repro.engine.procshard.ProcessShardedAnalyzer` -- one worker
    *process* per shard, sidestepping the GIL (call
    :meth:`PipelineResult.release` when done with the result).  ``None``
    processes shards sequentially.

    A pre-built ``analyzer`` may be injected (e.g. a
    :class:`~repro.core.typed.TypedOnlineAnalyzer` to track R/W correlation
    types, or an analyzer carried over from a previous run for continuous
    operation); analyzers exposing ``process_transaction`` receive the full
    transaction, others receive the extent list.

    ``registry`` selects the telemetry registry the monitor and any
    internally constructed analyzer publish to (``None``: the
    process-local default).  The registry used is returned on
    :attr:`PipelineResult.registry` so callers can export after the run
    (see :mod:`repro.telemetry.export`).

    ``cache`` attaches a correlation-prefetching block cache to the run
    (a capacity in blocks, or a ready
    :class:`~repro.cache.simcache.SimulatedBlockCache`): every
    transaction's extents are served through it *before* the analyzer
    trains, and the synopsis prefetcher pulls in each access's detected
    partners (disable with ``prefetch=False`` for a no-prefetch
    baseline).  ``cache_policy`` picks the eviction policy when a
    capacity is given.  The cache is returned on
    :attr:`PipelineResult.cache`.
    """
    if device is None:
        device = SsdDevice()
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if parallel not in (None, "thread", "process"):
        raise ValueError(
            f"parallel must be None, 'thread' or 'process', got {parallel!r}"
        )
    if analyzer is None:
        backend = getattr(config, "backend", "two-tier") \
            if config is not None else "two-tier"
        if parallel == "process":
            analyzer = ProcessShardedAnalyzer(config or AnalyzerConfig(),
                                              shards=shards,
                                              registry=registry)
        elif backend != "two-tier":
            analyzer = BackendEngine(config, shards=shards,
                                     registry=registry)
        elif shards > 1:
            analyzer = ShardedAnalyzer(config or AnalyzerConfig(),
                                       shards=shards, registry=registry)
        else:
            analyzer = OnlineAnalyzer(config, registry=registry)
    elif config is not None:
        raise ValueError("pass either a config or a pre-built analyzer")
    monitor = Monitor(
        window=window if window is not None else DynamicLatencyWindow(),
        max_transaction_size=max_transaction_size,
        dedup=dedup,
        pid_filter=pid_filter,
        grouping=grouping,
        registry=registry,
    )
    recorder = TransactionRecorder() if record_offline else None
    if cache is not None:
        if isinstance(cache, int):
            cache = SimulatedBlockCache(cache, policy=cache_policy,
                                        registry=registry)
        prefetcher = SynopsisPrefetcher(analyzer) if prefetch else None
        monitor.add_sink(_CacheSink(CacheDriver(cache, prefetcher)))
    if hasattr(analyzer, "process_transaction_batch"):
        monitor.add_sink(_AnalyzerSink(analyzer, parallel is not None))
    elif hasattr(analyzer, "process_transaction"):
        monitor.add_sink(analyzer.process_transaction)
    else:
        monitor.add_sink(
            lambda transaction: analyzer.process(transaction.extents)
        )
    if recorder is not None:
        monitor.add_sink(recorder)

    if batch_size is not None and batch_size > 1:
        batcher = _EventBatcher(monitor, batch_size, columnar=columnar)
        listener = batcher.add
    else:
        batcher = None
        listener = monitor.on_event

    replay = replay_timed(
        records,
        device,
        speedup=speedup,
        listeners=[listener],
        collect=collect_events,
    )
    if batcher is not None:
        batcher.drain()
    monitor.flush()

    return PipelineResult(
        replay=replay,
        monitor_stats=monitor.stats,
        analyzer=analyzer,
        recorder=recorder,
        registry=monitor.registry,
        monitor=monitor,
        cache=cache,
    )


def characterize(
    records: Sequence[TraceRecord],
    min_support: int = 2,
    config: Optional[AnalyzerConfig] = None,
    **pipeline_kwargs,
) -> List:
    """One-call characterization: replay a trace, return frequent pairs.

    This is the quickstart entry point: given any trace, it returns the
    detected extent correlations as ``(ExtentPair, tally)`` tuples,
    strongest first.
    """
    result = run_pipeline(
        records, config=config, record_offline=False, **pipeline_kwargs
    )
    try:
        return result.frequent_pairs(min_support)
    finally:
        # One-call convenience: nothing else will query the engine, so a
        # process-backed run must not leak its worker fleet.
        result.release()
