"""Resilience layer: fault-tolerant ingestion, integrity, and isolation.

The paper's premise is an *always-on* monitor characterizing correlations
on a live block layer; this package holds everything that keeps the stack
standing under real-world failure modes:

* error-policy ingestion and the dead-letter buffer
  (:mod:`repro.trace.errors`, re-exported here);
* sink/observer isolation (:class:`SinkGuard`);
* the fault-tolerant service wrapper
  (:class:`ResilientCharacterizationService`) with CRC-checked, atomic
  checkpoints (:class:`~repro.core.serialize.CheckpointCorruptError`);
* the deterministic fault-injection harness (:class:`FaultInjector`) used
  by ``tests/test_resilience.py`` to prove accuracy bounds under faults.
"""

from ..core.serialize import (
    CheckpointCorruptError,
    load_checkpoint,
    save_checkpoint,
)
from ..monitor.monitor import ClockPolicy
from ..trace.errors import (
    DeadLetterBuffer,
    ErrorPolicy,
    IngestReport,
    RowError,
)
from .faults import (
    FaultCounters,
    FaultInjector,
    FaultSpec,
    SimulatedCrash,
    corrupt_msr_csv,
    crash_before_rename,
    flip_bits,
    truncate_tail,
)
from .guard import DEFAULT_FAILURE_LIMIT, SinkGuard
from .policy import BackoffPolicy
from .wal import (
    FsyncPolicy,
    WalMeta,
    WalRecord,
    WalReplayStats,
    WriteAheadLog,
    read_wal_meta,
    write_wal_meta,
)
from .service import (
    HEALTH_DEGRADED,
    HEALTH_OK,
    ResilientCharacterizationService,
    ServiceHealth,
)

__all__ = [
    "BackoffPolicy",
    "CheckpointCorruptError",
    "ClockPolicy",
    "DEFAULT_FAILURE_LIMIT",
    "DeadLetterBuffer",
    "ErrorPolicy",
    "FaultCounters",
    "FaultInjector",
    "FaultSpec",
    "FsyncPolicy",
    "WalMeta",
    "WalRecord",
    "WalReplayStats",
    "WriteAheadLog",
    "read_wal_meta",
    "write_wal_meta",
    "HEALTH_DEGRADED",
    "HEALTH_OK",
    "IngestReport",
    "ResilientCharacterizationService",
    "RowError",
    "ServiceHealth",
    "SimulatedCrash",
    "SinkGuard",
    "corrupt_msr_csv",
    "crash_before_rename",
    "flip_bits",
    "truncate_tail",
    "load_checkpoint",
    "save_checkpoint",
]
