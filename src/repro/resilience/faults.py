"""Deterministic, seeded fault injection.

Testing an always-on monitor means feeding it the traffic it will actually
see: traces with corrupt rows, event streams with drops, duplicates, and
out-of-order delivery, checkpoints with flipped bits.  This module
manufactures exactly those faults, reproducibly -- every decision comes
from a ``random.Random`` seeded by the caller, so a failing run can be
replayed bit-for-bit.

Four layers of fault:

* :class:`FaultInjector` -- perturbs a :class:`BlockIOEvent` stream
  (drop / duplicate / reorder / corrupt), counting what it did;
* :func:`corrupt_msr_csv` -- mangles a fraction of the rows of an MSR CSV
  text so each mangled row is guaranteed unparseable;
* :func:`flip_bits` -- flips bits in a byte string (checkpoint corruption);
* crash injection -- :func:`crash_before_rename` raises
  :class:`SimulatedCrash` inside the atomic checkpoint writers' narrowest
  window (temp file durable, rename not yet issued), and
  :func:`truncate_tail` tears the final bytes off a file the way a crash
  mid-append does to a journal segment.
"""

from __future__ import annotations

import contextlib
import os
import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple, Union

from ..core import serialize as _serialize
from ..monitor.events import BlockIOEvent


@dataclass(frozen=True)
class FaultSpec:
    """Per-event fault probabilities and the RNG seed.

    Probabilities are evaluated independently per event, in the order
    corrupt -> drop -> duplicate -> reorder, so e.g. a corrupted event can
    still be duplicated (as happens when a flaky collector retransmits).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder", "corrupt"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} probability must be in [0, 1], got {value}"
                )


@dataclass
class FaultCounters:
    """What one injection pass actually did."""

    events_in: int = 0
    events_out: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    corrupted: int = 0

    @property
    def total_faults(self) -> int:
        return self.dropped + self.duplicated + self.reordered + self.corrupted


class FaultInjector:
    """Applies a :class:`FaultSpec` to an event stream, deterministically.

    Reordering is modelled as adjacent swaps: a selected event is held back
    one slot and emitted after its successor -- the out-of-order pattern
    blktrace produces when merging per-CPU buffers.  Corruption perturbs
    the event's start block and length (plausible-looking but wrong data,
    the hardest kind to notice).
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.counters = FaultCounters()
        self._rng = random.Random(spec.seed)

    def _corrupt(self, event: BlockIOEvent) -> BlockIOEvent:
        rng = self._rng
        start = max(0, event.start + rng.randint(-1_000_000, 1_000_000))
        length = rng.randint(1, 4096)
        return replace(event, start=start, length=length)

    def inject(self, events: Iterable[BlockIOEvent]) -> Iterator[BlockIOEvent]:
        """Yield the faulted stream (single pass, bounded memory)."""
        spec, counters, rng = self.spec, self.counters, self._rng
        held: List[BlockIOEvent] = []
        for event in events:
            counters.events_in += 1
            if spec.corrupt and rng.random() < spec.corrupt:
                counters.corrupted += 1
                event = self._corrupt(event)
            if spec.drop and rng.random() < spec.drop:
                counters.dropped += 1
                continue
            out = [event]
            if spec.duplicate and rng.random() < spec.duplicate:
                counters.duplicated += 1
                out.append(event)
            if spec.reorder and rng.random() < spec.reorder:
                # Hold this (possibly duplicated) event back one slot.
                counters.reordered += 1
                held.extend(out)
                continue
            for emitted in out:
                counters.events_out += 1
                yield emitted
            while held:
                counters.events_out += 1
                yield held.pop(0)
        for emitted in held:
            counters.events_out += 1
            yield emitted


# ---------------------------------------------------------------------------
# Trace-file corruption
# ---------------------------------------------------------------------------

#: Row manglings guaranteed to fail MSR CSV parsing.
_ROW_MANGLERS = (
    lambda row, rng: ",".join(row.split(",")[:4]),          # field loss
    lambda row, rng: row.replace(",", ";", 2),              # wrong separator
    lambda row, rng: _swap_field(row, 3, "Frobnicate"),     # unknown op
    lambda row, rng: _swap_field(row, 5, "-4096"),          # negative size
    lambda row, rng: _swap_field(row, 0, "not-a-number"),   # garbage ticks
    lambda row, rng: row + "," + str(rng.randint(0, 9)),    # extra field
)


def _swap_field(row: str, index: int, value: str) -> str:
    fields = row.split(",")
    if index < len(fields):
        fields[index] = value
    return ",".join(fields)


def corrupt_msr_csv(text: str, fraction: float,
                    seed: int = 0) -> Tuple[str, int]:
    """Mangle ``fraction`` of the CSV's data rows; returns (text, count).

    Each selected row is rewritten by a deterministic, rng-chosen mangler
    from a set every member of which is guaranteed to be rejected by
    :func:`~repro.trace.io.read_msr_csv` -- so the returned count is
    exactly the number of rows a lenient reader must report as bad.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    lines = text.splitlines()
    data_indexes = [
        index for index, line in enumerate(lines)
        if line.strip() and not line.strip().startswith("#")
    ]
    count = round(len(data_indexes) * fraction)
    corrupted = 0
    for index in sorted(rng.sample(data_indexes, count)):
        mangler = rng.choice(_ROW_MANGLERS)
        lines[index] = mangler(lines[index], rng)
        corrupted += 1
    return "\n".join(lines) + ("\n" if text.endswith("\n") else ""), corrupted


# ---------------------------------------------------------------------------
# Byte-level corruption (checkpoints)
# ---------------------------------------------------------------------------

class SimulatedCrash(RuntimeError):
    """Raised by crash-injection hooks to model sudden process death at a
    chosen point.  Not an :class:`OSError`: the retry machinery must not
    swallow it (a real crash isn't retried either)."""


@contextlib.contextmanager
def crash_before_rename(after_writes: int = 0):
    """Arm the checkpoint writers' pre-rename crash hook.

    Within the context, checkpoint save number ``after_writes`` (0-based;
    earlier saves complete normally) raises :class:`SimulatedCrash` in the
    exact window where the temp file is fully written and fsynced but the
    atomic rename has not happened -- the narrowest interval in which a
    real crash could conceivably hurt.  Both the v2
    (:func:`~repro.core.serialize.save_checkpoint`) and v3
    (:func:`~repro.engine.checkpoint.save_engine_checkpoint`) writers
    share the hook.  Yields a one-element list that ends up holding the
    number of saves that ran (crashed one included).
    """
    if after_writes < 0:
        raise ValueError(f"after_writes must be >= 0, got {after_writes}")
    calls = [0]

    def hook(tmp_path, path):
        calls[0] += 1
        if calls[0] > after_writes:
            raise SimulatedCrash(
                f"simulated crash before renaming {tmp_path} -> {path}"
            )

    previous = _serialize._pre_rename_hook
    _serialize._pre_rename_hook = hook
    try:
        yield calls
    finally:
        _serialize._pre_rename_hook = previous


def truncate_tail(path: Union[str, Path], drop_bytes: int) -> int:
    """Tear the last ``drop_bytes`` bytes off ``path`` in place; returns
    the new size.  This is the on-disk signature of a crash mid-append
    (the exact fault a journal's torn-tail-tolerant replay must absorb);
    truncating more than the file holds leaves an empty file.
    """
    if drop_bytes < 0:
        raise ValueError(f"drop_bytes must be >= 0, got {drop_bytes}")
    size = os.path.getsize(path)
    new_size = max(0, size - drop_bytes)
    with open(path, "r+b") as stream:
        stream.truncate(new_size)
    return new_size


def flip_bits(data: bytes, flips: int = 1, seed: int = 0) -> bytes:
    """Return ``data`` with ``flips`` random bits flipped (deterministic)."""
    if not data:
        raise ValueError("cannot flip bits in empty data")
    if flips < 1:
        raise ValueError(f"flips must be >= 1, got {flips}")
    rng = random.Random(seed)
    mutable = bytearray(data)
    for bit in rng.sample(range(len(mutable) * 8), min(flips, len(mutable) * 8)):
        mutable[bit // 8] ^= 1 << (bit % 8)
    return bytes(mutable)
