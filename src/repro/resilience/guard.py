"""Sink and observer isolation.

The monitor and service fan transactions and snapshots out to arbitrary
callables -- optimizer hooks, recorders, exporters.  Any of them can throw,
and in an always-on deployment (Fig. 3) a buggy consumer must not take the
characterization pipeline down with it.  :class:`SinkGuard` wraps a callable
so that exceptions are caught and counted, and after ``failure_limit``
*consecutive* failures the target is quarantined: it stops being invoked
(suppressed calls are counted) until an operator calls :meth:`reset`.

The guard is payload-agnostic -- it isolates monitor transaction sinks and
service snapshot observers alike.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

#: Consecutive failures after which a guarded target is quarantined.
DEFAULT_FAILURE_LIMIT = 3


class SinkGuard:
    """Wrap a callable so its failures cannot stop the caller."""

    def __init__(
        self,
        target: Callable[..., Any],
        failure_limit: int = DEFAULT_FAILURE_LIMIT,
        name: Optional[str] = None,
    ) -> None:
        if failure_limit < 1:
            raise ValueError(
                f"failure_limit must be >= 1, got {failure_limit}"
            )
        self.target = target
        self.failure_limit = failure_limit
        self.name = name if name is not None else _describe(target)
        self.calls = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.suppressed = 0
        self.quarantined = False
        self.last_error: Optional[str] = None

    def __call__(self, *args: Any, **kwargs: Any) -> None:
        if self.quarantined:
            self.suppressed += 1
            return
        self.calls += 1
        try:
            self.target(*args, **kwargs)
        except Exception as exc:  # deliberate: isolate *any* consumer bug
            self.failures += 1
            self.consecutive_failures += 1
            self.last_error = f"{type(exc).__name__}: {exc}"
            if self.consecutive_failures >= self.failure_limit:
                self.quarantined = True
        else:
            self.consecutive_failures = 0

    def reset(self) -> None:
        """Lift a quarantine and forget the consecutive-failure streak."""
        self.quarantined = False
        self.consecutive_failures = 0

    @property
    def healthy(self) -> bool:
        return not self.quarantined

    def __repr__(self) -> str:
        state = "quarantined" if self.quarantined else "ok"
        return (f"SinkGuard({self.name!r}, {state}, "
                f"failures={self.failures}/{self.calls})")


def _describe(target: Callable[..., Any]) -> str:
    return getattr(target, "__qualname__", None) or repr(target)
