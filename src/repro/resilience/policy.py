"""Retry/backoff policy shared by every layer that talks to flaky I/O.

The resilient service retries checkpoint writes, and the serving layer's
client retries connects and overloaded-server rejections; both follow the
same capped-exponential-backoff discipline, so the schedule lives in one
place.  A :class:`BackoffPolicy` is a pure value object: it computes
delays, it never sleeps -- the caller owns the clock so tests can inject
a fake one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff: ``base * 2**attempt``, capped at ``cap``.

    ``retries`` is the number of *re*-tries after the initial attempt; a
    policy with ``retries=0`` means "try once, never retry".
    """

    base: float = 0.05
    cap: float = 2.0
    retries: int = 3

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base <= 0 or self.cap < self.base:
            raise ValueError(
                f"need 0 < base <= cap, got base={self.base} cap={self.cap}"
            )

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        return min(self.cap, self.base * (2 ** attempt))

    def delays(self) -> Iterator[float]:
        """The full schedule: one delay per permitted retry."""
        for attempt in range(self.retries):
            yield self.delay(attempt)
