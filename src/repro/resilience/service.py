"""A fault-tolerant wrapper around the characterization service.

:class:`ResilientCharacterizationService` is the deployment-grade shape of
:class:`~repro.service.CharacterizationService` (Fig. 3's always-on
monitor).  It adds:

* **checkpoint I/O with retries** -- :meth:`checkpoint_to` writes
  atomically (temp file + rename) and retries transient I/O failures with
  capped exponential backoff;
* **corruption fallback** -- :meth:`restore_from` rejects a corrupt
  checkpoint (:class:`~repro.core.serialize.CheckpointCorruptError` is
  never retried: corruption is deterministic) and continues serving with a
  fresh analyzer, flagged *degraded* rather than crashed;
* **observer isolation** -- snapshot observers registered through
  :meth:`observe` are wrapped in :class:`~repro.resilience.guard.SinkGuard`
  so a crashing optimizer hook is counted and, after repeated failures,
  quarantined without stopping ingestion;
* **health reporting** -- :meth:`health` summarises all of the above as
  ``ok`` or ``degraded`` with machine-readable reasons.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.serialize import CheckpointCorruptError, save_checkpoint
from ..core.typed import TypedOnlineAnalyzer
from ..engine.checkpoint import (
    as_typed_engine,
    load_engine_checkpoint,
    save_engine_checkpoint,
)
from ..engine.backends.host import BackendEngine
from ..engine.sharded import ShardedAnalyzer
from ..service import CharacterizationService, SnapshotObserver
from .guard import DEFAULT_FAILURE_LIMIT, SinkGuard
from .policy import BackoffPolicy

HEALTH_OK = "ok"
HEALTH_DEGRADED = "degraded"


@dataclass
class ServiceHealth:
    """One service's condition at a glance."""

    status: str
    reasons: List[str] = field(default_factory=list)
    checkpoint_failures: int = 0
    checkpoint_retries: int = 0
    restore_failures: int = 0
    quarantined_observers: int = 0
    observer_failures: int = 0
    last_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == HEALTH_OK


class ResilientCharacterizationService(CharacterizationService):
    """Characterization service that survives I/O faults and bad consumers."""

    def __init__(
        self,
        *args,
        max_io_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        observer_failure_limit: int = DEFAULT_FAILURE_LIMIT,
        sleep: Callable[[float], None] = time.sleep,
        **kwargs,
    ) -> None:
        """``sleep`` is injectable so tests (and async hosts) can replace
        the real backoff delay; retries are attempted ``max_io_retries``
        times after the initial try, waiting ``backoff_base * 2**attempt``
        seconds, capped at ``backoff_cap``.
        """
        try:
            self.backoff_policy = BackoffPolicy(
                base=backoff_base, cap=backoff_cap, retries=max_io_retries
            )
        except ValueError as exc:
            raise ValueError(f"bad retry configuration: {exc}") from exc
        super().__init__(*args, **kwargs)
        self.max_io_retries = max_io_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.observer_failure_limit = observer_failure_limit
        self._sleep = sleep
        self._guards: List[SinkGuard] = []
        self._degraded_reasons: List[str] = []
        self._checkpoint_failures = 0
        self._checkpoint_retries = 0
        self._restore_failures = 0
        self._degraded_restores = 0
        self._last_error: Optional[str] = None
        self._bind_resilience_metrics()

    # -- telemetry ------------------------------------------------------------

    def _bind_resilience_metrics(self) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        self._resilience_counters = {
            name: registry.counter(f"repro_resilience_{name}_total", help)
            for name, help in {
                "checkpoint_retries": "Checkpoint I/O attempts retried",
                "checkpoint_failures": "Checkpoint writes that exhausted "
                                       "retries",
                "restore_failures": "Restores that hit corruption or I/O "
                                    "errors",
                "degraded_restores": "Restores completed with fresh "
                                     "replacement shards",
                "observer_failures": "Snapshot observer invocations that "
                                     "raised",
            }.items()
        }
        self._degraded_gauge = registry.gauge(
            "repro_resilience_degraded",
            "1 while the service reports itself degraded",
        )
        self._quarantined_gauge = registry.gauge(
            "repro_resilience_quarantined_observers",
            "Observers quarantined after repeated failures",
        )
        registry.register_collector(self._collect_resilience_metrics)

    def _collect_resilience_metrics(self) -> None:
        counters = self._resilience_counters
        counters["checkpoint_retries"].set_total(self._checkpoint_retries)
        counters["checkpoint_failures"].set_total(self._checkpoint_failures)
        counters["restore_failures"].set_total(self._restore_failures)
        counters["degraded_restores"].set_total(self._degraded_restores)
        counters["observer_failures"].set_total(
            sum(guard.failures for guard in self._guards)
        )
        quarantined = sum(1 for guard in self._guards if guard.quarantined)
        self._quarantined_gauge.set(quarantined)
        self._degraded_gauge.set(
            1.0 if (self._degraded_reasons or quarantined) else 0.0
        )

    # -- observer isolation ---------------------------------------------------

    def observe(self, observer: SnapshotObserver) -> SinkGuard:
        """Register an observer behind a :class:`SinkGuard`; returns it."""
        guard = SinkGuard(observer, failure_limit=self.observer_failure_limit)
        self._guards.append(guard)
        super().observe(guard)
        return guard

    @property
    def observer_guards(self) -> List[SinkGuard]:
        return list(self._guards)

    # -- retrying checkpoint I/O ----------------------------------------------

    def _with_retries(self, operation: Callable[[], object]) -> object:
        """Run ``operation``, retrying OSError per the backoff policy."""
        policy = self.backoff_policy
        attempt = 0
        while True:
            try:
                return operation()
            except OSError as exc:
                self._last_error = f"{type(exc).__name__}: {exc}"
                if attempt >= policy.retries:
                    raise
                self._sleep(policy.delay(attempt))
                attempt += 1
                self._checkpoint_retries += 1

    def _save_current(self, path) -> int:
        """Write the current engine: v3/v4 via the engine container for
        a sharded or backend engine, format v2 via
        :func:`~repro.core.serialize.save_checkpoint` for a single one.
        Dispatch rides the ``shard_analyzers``/``shard_backends`` seams
        (not a base class) so thread- and process-backed engines of
        either mode all take the engine-container path.  Both names
        resolve through module globals so tests (and hosts) can
        substitute the I/O layer.
        """
        if hasattr(self.analyzer, "shard_analyzers") or \
                hasattr(self.analyzer, "shard_backends"):
            return save_engine_checkpoint(self.analyzer, path)
        return save_checkpoint(self.analyzer, path)

    def checkpoint_to(self, path) -> int:
        """Atomically checkpoint to ``path``, retrying transient failures.

        A crash mid-write can never clobber a previous good checkpoint
        (see :func:`~repro.core.serialize.save_checkpoint`).  If every
        retry fails the last error is re-raised, but the failure is
        recorded and surfaced by :meth:`health` -- the service itself
        keeps ingesting.
        """
        self.flush()
        try:
            return self._with_retries(lambda: self._save_current(path))
        except OSError:
            self._checkpoint_failures += 1
            self._mark_degraded(f"checkpoint write failed: {self._last_error}")
            raise

    def restore_from(self, path) -> bool:
        """Restore from ``path``; returns True when the checkpoint loaded.

        A corrupt checkpoint (bad CRC, torn structure) is *never* loaded
        -- and never retried, since corruption is deterministic.  A
        sharded (format v3) checkpoint restores *per shard*: a corrupt
        shard envelope is replaced with a fresh synopsis while every
        intact shard keeps its learned state, and the service reports
        itself degraded rather than discarding everything.  Only
        whole-file corruption (v2, or broken v3 framing, or every shard
        corrupt) falls back to a completely fresh analyzer -- because a
        monitor with an empty synopsis still beats a dead monitor.
        """
        try:
            loaded = self._with_retries(
                lambda: load_engine_checkpoint(path, strict=False)
            )
        except CheckpointCorruptError as exc:
            self._restore_failures += 1
            self._last_error = f"{type(exc).__name__}: {exc}"
            self._fallback_fresh(f"checkpoint corrupt: {exc}")
            return False
        except OSError as exc:
            self._restore_failures += 1
            self._fallback_fresh(f"checkpoint unreadable: {exc}")
            return False
        self.analyzer = as_typed_engine(loaded)
        self.analyzer.rebind_metrics(self.registry)
        self.shards = getattr(self.analyzer, "shards", 1)
        if loaded.corrupt_shards:
            self._restore_failures += 1
            self._degraded_restores += 1
            self._mark_degraded(
                f"checkpoint shards {loaded.corrupt_shards} corrupt; "
                f"restored degraded with fresh replacements"
            )
        return True

    def _fallback_fresh(self, reason: str) -> None:
        if isinstance(self.analyzer, BackendEngine):
            fresh = BackendEngine(self.analyzer.config,
                                  shards=self.analyzer.shards,
                                  registry=self.registry)
        elif isinstance(self.analyzer, ShardedAnalyzer):
            fresh = ShardedAnalyzer(self.analyzer.config,
                                    shards=self.analyzer.shards,
                                    registry=self.registry)
        else:
            fresh = TypedOnlineAnalyzer(self.analyzer.config,
                                        registry=self.registry)
        self.analyzer = fresh
        self._mark_degraded(reason)

    def _mark_degraded(self, reason: str) -> None:
        if reason not in self._degraded_reasons:
            self._degraded_reasons.append(reason)

    # -- health ---------------------------------------------------------------

    def health(self) -> ServiceHealth:
        """The service's current condition (``ok`` or ``degraded``)."""
        reasons = list(self._degraded_reasons)
        quarantined = sum(1 for guard in self._guards if guard.quarantined)
        observer_failures = sum(guard.failures for guard in self._guards)
        for guard in self._guards:
            if guard.quarantined:
                reasons.append(
                    f"observer {guard.name} quarantined after "
                    f"{guard.consecutive_failures} consecutive failures: "
                    f"{guard.last_error}"
                )
        status = HEALTH_DEGRADED if reasons else HEALTH_OK
        return ServiceHealth(
            status=status,
            reasons=reasons,
            checkpoint_failures=self._checkpoint_failures,
            checkpoint_retries=self._checkpoint_retries,
            restore_failures=self._restore_failures,
            quarantined_observers=quarantined,
            observer_failures=observer_failures,
            last_error=self._last_error,
        )

    def clear_degraded(self) -> None:
        """Operator acknowledgement: drop degraded reasons, reset guards."""
        self._degraded_reasons.clear()
        for guard in self._guards:
            guard.reset()
