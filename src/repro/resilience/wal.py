"""Segmented write-ahead event journal.

The serving layer acknowledges an ingest frame the moment its events are
admitted to a connection queue -- which, without a journal, makes every
acknowledgement a small lie: a crash between the ack and the next
checkpoint silently discards the events.  The WAL closes that gap.  The
server appends each accepted EVENT/BATCH frame here *before* replying, so
"acked" always means "replayable": on restart, the last good checkpoint is
restored and the journal tail is replayed through the normal batch ingest
lane.

On-disk layout (one directory per log)::

    wal-00000000000000000001.seg      segments, named by first record seq
    wal-00000000000000004097.seg
    wal.meta.json                     checkpoint cut + producer high-marks

Each segment starts with a magic header and holds a run of records with
strictly increasing sequence numbers.  A record is::

    u32 body-length || u32 crc32(body) || body

where the body is one UTF-8 JSON line (NDJSON -- ``strings`` a segment and
you can read the traffic) carrying the sequence number, tenant, optional
producer identity, and the event payloads in the wire-protocol shape.

Durability is a policy, not an accident (:class:`FsyncPolicy`):

* ``always``   -- fsync after every append; an acked event survives even a
  machine crash (the cost is one fsync per frame);
* ``interval`` -- flush to the OS on every append, fsync at most once per
  ``fsync_interval`` seconds; an acked event survives process death
  (``kill -9``) always, and machine crash up to the interval;
* ``never``    -- flush to the OS only; survives process death, not power
  loss.

Replay (:meth:`WriteAheadLog.replay`) is *truncated-tail tolerant*: a torn
final record -- the signature of a crash mid-append -- ends replay cleanly
rather than raising, and is counted.  Corruption in the middle of a
segment abandons the rest of that segment (the length-prefixed framing
cannot be resynchronised) but continues with the next one, counting what
it skipped; recovery prefers a degraded synopsis over no synopsis, the
same stance the checkpoint loader takes.
"""

from __future__ import annotations

import enum
import json
import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from ..monitor.events import BlockIOEvent
from ..telemetry.metrics import MetricsRegistry
from ..trace.record import OpType

PathOrStr = Union[str, Path]

_SEGMENT_MAGIC = b"RTWAL\x01"
_RECORD_HEADER = struct.Struct("<II")  # body length, crc32(body)
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"
_SEQ_DIGITS = 20

META_FILENAME = "wal.meta.json"

#: Default rotation threshold; small enough that checkpoint truncation
#: reclaims space promptly, large enough to amortise file churn.
DEFAULT_SEGMENT_BYTES = 16 * 1024 * 1024
DEFAULT_FSYNC_INTERVAL = 0.05


class FsyncPolicy(enum.Enum):
    """When an append becomes durable against machine (not just process)
    crash."""

    ALWAYS = "always"
    INTERVAL = "interval"
    NEVER = "never"

    @classmethod
    def parse(cls, value: "Union[str, FsyncPolicy]") -> "FsyncPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).strip().lower())
        except ValueError:
            known = ", ".join(policy.value for policy in cls)
            raise ValueError(
                f"unknown fsync policy {value!r}; know {known}"
            ) from None


class WalCorruptError(ValueError):
    """A WAL structure check failed somewhere replay could not tolerate."""


# The event codec mirrors the wire protocol's compact shape
# (``repro.server.protocol``), but lives here so the resilience layer
# stays importable without the serving stack (server depends on
# resilience, never the reverse).

def event_to_payload(event: BlockIOEvent) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "ts": event.timestamp,
        "op": event.op.value,
        "start": event.start,
        "len": event.length,
    }
    if event.pid:
        payload["pid"] = event.pid
    if event.latency is not None:
        payload["lat"] = event.latency
    if event.pgid:
        payload["pgid"] = event.pgid
    return payload


def event_from_payload(payload: Dict[str, object]) -> BlockIOEvent:
    return BlockIOEvent(
        timestamp=float(payload["ts"]),
        pid=int(payload.get("pid", 0)),
        op=OpType.parse(payload["op"]),
        start=int(payload["start"]),
        length=int(payload["len"]),
        latency=(float(payload["lat"])
                 if payload.get("lat") is not None else None),
        pgid=int(payload.get("pgid", 0)),
    )


@dataclass(frozen=True)
class WalRecord:
    """One journalled ingest frame."""

    seq: int
    events: List[BlockIOEvent]
    tenant: str = ""
    producer: Optional[str] = None
    pseq: Optional[int] = None


@dataclass
class WalReplayStats:
    """What one replay pass saw (and what it had to give up on)."""

    segments_scanned: int = 0
    records_replayed: int = 0
    events_replayed: int = 0
    records_skipped: int = 0
    corrupt_records: int = 0
    torn_tail: bool = False


@dataclass
class WalMeta:
    """The checkpoint cut: everything at or below ``checkpoint_seq`` is
    covered by the on-disk checkpoint, and ``producers`` holds each
    producer's highest acknowledged frame sequence at that cut (so dedup
    state survives truncation of the records that carried it)."""

    checkpoint_seq: int = 0
    producers: Dict[str, int] = field(default_factory=dict)


def _meta_path(directory: PathOrStr) -> Path:
    return Path(directory) / META_FILENAME


def write_wal_meta(directory: PathOrStr, meta: WalMeta) -> None:
    """Atomically persist the checkpoint cut (temp + fsync + rename)."""
    path = _meta_path(directory)
    tmp_path = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    body = json.dumps({
        "checkpoint_seq": meta.checkpoint_seq,
        "producers": meta.producers,
    }, sort_keys=True)
    try:
        with open(tmp_path, "w", encoding="utf-8") as stream:
            stream.write(body)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_path, path)
    finally:
        if tmp_path.exists():
            tmp_path.unlink()


def read_wal_meta(directory: PathOrStr) -> WalMeta:
    """Read the checkpoint cut; a missing or corrupt meta file degrades to
    "nothing is covered" (replay everything), which is always safe."""
    try:
        with open(_meta_path(directory), encoding="utf-8") as stream:
            raw = json.load(stream)
        producers = {
            str(name): int(seq)
            for name, seq in dict(raw.get("producers", {})).items()
        }
        return WalMeta(checkpoint_seq=int(raw["checkpoint_seq"]),
                       producers=producers)
    except (OSError, ValueError, KeyError, TypeError):
        return WalMeta()


def _segment_name(first_seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_seq:0{_SEQ_DIGITS}d}{_SEGMENT_SUFFIX}"


def _segment_first_seq(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)):
        return None
    digits = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def _record_bytes(record_body: bytes) -> bytes:
    return _RECORD_HEADER.pack(len(record_body),
                               zlib.crc32(record_body)) + record_body


def _iter_segment_records(path: Path) -> Iterator[Union[WalRecord, str]]:
    """Yield records from one segment; a final string marks where (and
    why) reading stopped early.  ``"torn"`` means a short read at the
    tail, ``"corrupt"`` a CRC or structure failure."""
    with open(path, "rb") as stream:
        magic = stream.read(len(_SEGMENT_MAGIC))
        if magic != _SEGMENT_MAGIC:
            yield "corrupt"
            return
        while True:
            header = stream.read(_RECORD_HEADER.size)
            if not header:
                return
            if len(header) < _RECORD_HEADER.size:
                yield "torn"
                return
            length, crc_expected = _RECORD_HEADER.unpack(header)
            body = stream.read(length)
            if len(body) < length:
                yield "torn"
                return
            if zlib.crc32(body) != crc_expected:
                yield "corrupt"
                return
            try:
                raw = json.loads(body)
                record = WalRecord(
                    seq=int(raw["seq"]),
                    tenant=str(raw.get("tenant", "")),
                    producer=raw.get("producer"),
                    pseq=(int(raw["pseq"])
                          if raw.get("pseq") is not None else None),
                    events=[event_from_payload(entry)
                            for entry in raw["events"]],
                )
            except Exception:
                yield "corrupt"
                return
            yield record


class WriteAheadLog:
    """Append-only, segmented, CRC-framed event journal."""

    def __init__(
        self,
        directory: PathOrStr,
        *,
        fsync: Union[str, FsyncPolicy] = FsyncPolicy.INTERVAL,
        fsync_interval: float = DEFAULT_FSYNC_INTERVAL,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        registry: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
        readonly: bool = False,
    ) -> None:
        """``readonly`` opens the log for replay/tailing only -- no active
        segment is created or opened, so a warm standby can watch a
        primary's live journal without touching its files."""
        if segment_bytes < 1024:
            raise ValueError(
                f"segment_bytes must be >= 1024, got {segment_bytes}"
            )
        if fsync_interval <= 0:
            raise ValueError(
                f"fsync_interval must be > 0, got {fsync_interval}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = FsyncPolicy.parse(fsync)
        self.fsync_interval = fsync_interval
        self.segment_bytes = segment_bytes
        self._clock = clock
        self._last_fsync = clock()
        self._stream = None
        self._stream_path: Optional[Path] = None
        self._stream_size = 0
        self._closed = False
        self.readonly = readonly
        self.replay_stats = WalReplayStats()
        self._bind_metrics(registry)
        self._last_seq = self._scan_last_seq()
        if not readonly:
            self._open_active_segment()

    # -- telemetry ----------------------------------------------------------

    def _bind_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        if registry is None or not registry.enabled:
            self._counters = None
            return
        self._counters = {
            name: registry.counter(f"repro_wal_{name}_total", help)
            for name, help in {
                "appended_records": "Ingest frames journalled",
                "appended_events": "Events journalled",
                "fsyncs": "fsync calls issued by the journal",
                "rotations": "Segment rotations",
                "replayed_records": "Records replayed into the engine",
                "replayed_events": "Events replayed into the engine",
                "skipped_records": "Replayed records already covered by "
                                   "the checkpoint cut",
                "corrupt_records": "Records (or segment remainders) "
                                   "abandoned as corrupt during replay",
                "torn_tails": "Replays that ended at a torn final record",
            }.items()
        }
        self._segments_gauge = registry.gauge(
            "repro_wal_segments", "Segment files on disk"
        )
        self._bytes_gauge = registry.gauge(
            "repro_wal_bytes", "Journal bytes on disk"
        )
        registry.register_collector(self._collect)

    def _collect(self) -> None:
        segments = self.segments()
        self._segments_gauge.set(len(segments))
        self._bytes_gauge.set(
            sum(path.stat().st_size for path in segments
                if path.exists())
        )

    def _count(self, name: str, amount: int = 1) -> None:
        if self._counters is not None:
            self._counters[name].inc(amount)

    # -- segment management -------------------------------------------------

    def segments(self) -> List[Path]:
        """Segment files, oldest first."""
        found = [
            path for path in self.directory.iterdir()
            if _segment_first_seq(path) is not None
        ]
        return sorted(found, key=lambda path: _segment_first_seq(path))

    def _scan_last_seq(self) -> int:
        """Highest sequence durably recorded (reads only the last
        segment; earlier segments are bounded by its name)."""
        segments = self.segments()
        if not segments:
            return 0
        last_seq = _segment_first_seq(segments[-1]) - 1
        for item in _iter_segment_records(segments[-1]):
            if isinstance(item, WalRecord):
                last_seq = item.seq
        return last_seq

    def _open_active_segment(self) -> None:
        segments = self.segments()
        if segments:
            path = segments[-1]
            # Appending after a torn tail would interleave a fresh record
            # with half of an old one; start a new segment instead.
            tail_ok = all(isinstance(item, WalRecord)
                          for item in _iter_segment_records(path))
            if not tail_ok:
                self._start_segment(self._last_seq + 1)
                return
            self._stream = open(path, "ab")
            self._stream_path = path
            self._stream_size = path.stat().st_size
            return
        self._start_segment(self._last_seq + 1)

    def _start_segment(self, first_seq: int) -> None:
        if self._stream is not None:
            self._sync_stream()
            self._stream.close()
        path = self.directory / _segment_name(first_seq)
        if path.exists() and path.stat().st_size > 0:
            # The segment that should start at this seq is damaged from
            # its first record (that's the only way the name recurs);
            # quarantine it rather than appending after garbage.
            path.rename(path.with_suffix(".corrupt"))
        self._stream = open(path, "ab")
        if self._stream.tell() == 0:
            self._stream.write(_SEGMENT_MAGIC)
            self._stream.flush()
        self._stream_path = path
        self._stream_size = self._stream.tell()

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._last_seq

    def oldest_seq(self) -> Optional[int]:
        """First sequence number still on disk (the oldest segment's
        first record), or ``None`` for an empty journal.  A reader whose
        position is below ``oldest_seq() - 1`` cannot tail its way
        forward: the records in between were truncated away."""
        segments = self.segments()
        return _segment_first_seq(segments[0]) if segments else None

    @property
    def active_segment(self) -> Optional[Path]:
        return self._stream_path

    # -- appending ----------------------------------------------------------

    def append(
        self,
        events: Sequence[BlockIOEvent],
        tenant: str = "",
        producer: Optional[str] = None,
        pseq: Optional[int] = None,
    ) -> int:
        """Journal one accepted ingest frame; returns its sequence number.

        The record is flushed to the OS before this returns (process
        death cannot lose it); whether it is fsynced follows the policy.
        Raises :class:`OSError` on write failure -- the caller must *not*
        acknowledge the frame in that case.
        """
        if self._closed:
            raise ValueError("write-ahead log is closed")
        if self.readonly:
            raise ValueError("write-ahead log opened readonly")
        seq = self._last_seq + 1
        body = json.dumps({
            "seq": seq,
            "tenant": tenant,
            "producer": producer,
            "pseq": pseq,
            "events": [event_to_payload(event) for event in events],
        }, separators=(",", ":")).encode("utf-8") + b"\n"
        framed = _record_bytes(body)
        self._stream.write(framed)
        self._stream.flush()
        self._stream_size += len(framed)
        self._last_seq = seq
        if self.fsync is FsyncPolicy.ALWAYS:
            self._fsync_now()
        elif self.fsync is FsyncPolicy.INTERVAL:
            self.sync_if_due()
        if self._stream_size >= self.segment_bytes:
            self._start_segment(seq + 1)
            self._count("rotations")
        self._count("appended_records")
        self._count("appended_events", len(events))
        return seq

    def _fsync_now(self) -> None:
        os.fsync(self._stream.fileno())
        self._last_fsync = self._clock()
        self._count("fsyncs")

    def _sync_stream(self) -> None:
        self._stream.flush()
        if self.fsync is not FsyncPolicy.NEVER:
            self._fsync_now()

    def sync(self) -> None:
        """Force the journal durable now, regardless of policy."""
        if self._stream is not None and not self._closed:
            self._stream.flush()
            self._fsync_now()

    def sync_if_due(self) -> None:
        """Fsync when the interval policy's clock says so (no-op
        otherwise); hosts call this from a periodic task so an idle tail
        still becomes durable."""
        if self._stream is not None and not self._closed and \
                self.fsync is FsyncPolicy.INTERVAL and \
                self._clock() - self._last_fsync >= self.fsync_interval:
            self._stream.flush()
            self._fsync_now()

    # -- replay -------------------------------------------------------------

    def replay(self, after_seq: int = 0,
               stats: Optional[WalReplayStats] = None
               ) -> Iterator[WalRecord]:
        """Yield journalled records with ``seq > after_seq``, oldest first.

        Tolerates a torn final record (crash mid-append) and abandons the
        remainder of a mid-log corrupt segment while continuing with the
        next; everything it saw, skipped, or gave up on is counted in
        ``stats`` (also kept as :attr:`replay_stats`).  Safe to call on a
        live log written by another process -- segments are re-read from
        disk each call.
        """
        stats = stats if stats is not None else WalReplayStats()
        self.replay_stats = stats
        segments = self.segments()
        for index, path in enumerate(segments):
            is_last = index == len(segments) - 1
            next_first = (_segment_first_seq(segments[index + 1])
                          if not is_last else None)
            if next_first is not None and next_first - 1 <= after_seq:
                # Every record in this segment is at or below the cut.
                stats.records_skipped += \
                    next_first - _segment_first_seq(path)
                continue
            stats.segments_scanned += 1
            for item in _iter_segment_records(path):
                if item == "torn":
                    stats.torn_tail = True
                    self._count("torn_tails")
                    if not is_last:
                        stats.corrupt_records += 1
                        self._count("corrupt_records")
                    break
                if item == "corrupt":
                    stats.corrupt_records += 1
                    self._count("corrupt_records")
                    break
                if item.seq <= after_seq:
                    stats.records_skipped += 1
                    self._count("skipped_records")
                    continue
                stats.records_replayed += 1
                stats.events_replayed += len(item.events)
                self._count("replayed_records")
                self._count("replayed_events", len(item.events))
                yield item

    # -- truncation ---------------------------------------------------------

    def truncate_through(self, seq: int) -> int:
        """Delete segments every record of which is ``<= seq``; returns
        how many were removed.

        Called after a successful checkpoint covering ``seq``.  When the
        active segment itself is fully covered it is rotated first, so a
        checkpoint of a quiescent server reclaims the whole journal.
        """
        removed = 0
        if self._stream is not None and not self._closed and \
                self._last_seq <= seq and self._stream_size > \
                len(_SEGMENT_MAGIC):
            self._start_segment(self._last_seq + 1)
            self._count("rotations")
        segments = self.segments()
        for index, path in enumerate(segments):
            if path == self._stream_path:
                continue
            next_first = (_segment_first_seq(segments[index + 1])
                          if index + 1 < len(segments) else None)
            last_in_segment = (next_first - 1 if next_first is not None
                               else self._last_seq)
            if last_in_segment <= seq:
                path.unlink()
                removed += 1
        return removed

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._closed or self._stream is None:
            return
        self._sync_stream()
        self._stream.close()
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
