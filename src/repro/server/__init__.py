"""Serving layer: stream block I/O events in, query correlations out.

The paper's framework is explicitly *online* -- the synopsis answers
queries while events are still arriving -- and this package gives it the
network boundary a deployment needs:

* :class:`CharacterizationServer` -- asyncio TCP/Unix-socket server
  speaking length-prefixed NDJSON frames, with per-connection bounded
  ingest queues (soft ``THROTTLE`` / hard reject backpressure), optional
  per-tenant engines, graceful drain-and-checkpoint shutdown, and full
  telemetry;
* :class:`CharacterizationClient` / :class:`BatchingWriter` -- the
  blocking producer side, with resilience-layer retry/backoff, automatic
  reconnect, and count/age-bounded batch flushing;
* :class:`ServerThread` -- run the server on a background event loop for
  synchronous hosts (tests, benchmarks, notebooks);
* :mod:`~repro.server.protocol` -- the wire format itself;
* the durability additions: write-ahead journalling with crash recovery
  (:mod:`~repro.server.recovery`), a :class:`Supervisor` that restarts a
  crashed or hung worker process (with crash-loop give-up), a
  :class:`WarmStandby` that tails the journal for fast promotion, and a
  client-side :class:`CircuitBreaker` + request deadlines for the
  failover window.

See ``docs/serving.md`` for the protocol spec and deployment examples,
and ``docs/robustness.md`` for the durability/failover runbook.
"""

from .backpressure import (
    Admission,
    BoundedIngestQueue,
    DEFAULT_HARD_LIMIT,
    DEFAULT_SOFT_LIMIT,
    QueueStats,
)
from .circuit import CircuitBreaker, CircuitOpenError, CircuitState
from .client import (
    BatchingWriter,
    CharacterizationClient,
    DeadlineExceededError,
    ServerError,
    ServerOverloadedError,
)
from .metrics import ServerMetrics
from .protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    Frame,
    FrameDecoder,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
)
from .recovery import (
    RecoveryReport,
    StandbyGapError,
    WalRecovery,
    discover_tenant_checkpoints,
    tenant_checkpoint_path,
)
from .server import CharacterizationServer, ServerThread
from .supervisor import (
    RestartTracker,
    Supervisor,
    SupervisorGaveUp,
    WarmStandby,
    WorkerConfig,
    run_server_worker,
)
from .tenants import (
    DEFAULT_MAX_TENANTS,
    DEFAULT_TENANT,
    TenantLimitError,
    TenantRouter,
)

__all__ = [
    "Admission",
    "BatchingWriter",
    "BoundedIngestQueue",
    "CharacterizationClient",
    "CharacterizationServer",
    "CircuitBreaker",
    "CircuitOpenError",
    "CircuitState",
    "DEFAULT_HARD_LIMIT",
    "DEFAULT_MAX_FRAME_BYTES",
    "DEFAULT_MAX_TENANTS",
    "DEFAULT_SOFT_LIMIT",
    "DEFAULT_TENANT",
    "DeadlineExceededError",
    "Frame",
    "FrameDecoder",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueueStats",
    "RecoveryReport",
    "RestartTracker",
    "ServerError",
    "ServerMetrics",
    "ServerOverloadedError",
    "ServerThread",
    "StandbyGapError",
    "Supervisor",
    "SupervisorGaveUp",
    "TenantLimitError",
    "TenantRouter",
    "WalRecovery",
    "WarmStandby",
    "WorkerConfig",
    "discover_tenant_checkpoints",
    "encode_frame",
    "run_server_worker",
    "tenant_checkpoint_path",
]
