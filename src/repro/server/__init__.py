"""Serving layer: stream block I/O events in, query correlations out.

The paper's framework is explicitly *online* -- the synopsis answers
queries while events are still arriving -- and this package gives it the
network boundary a deployment needs:

* :class:`CharacterizationServer` -- asyncio TCP/Unix-socket server
  speaking length-prefixed NDJSON frames, with per-connection bounded
  ingest queues (soft ``THROTTLE`` / hard reject backpressure), optional
  per-tenant engines, graceful drain-and-checkpoint shutdown, and full
  telemetry;
* :class:`CharacterizationClient` / :class:`BatchingWriter` -- the
  blocking producer side, with resilience-layer retry/backoff, automatic
  reconnect, and count/age-bounded batch flushing;
* :class:`ServerThread` -- run the server on a background event loop for
  synchronous hosts (tests, benchmarks, notebooks);
* :mod:`~repro.server.protocol` -- the wire format itself.

See ``docs/serving.md`` for the protocol spec and deployment examples.
"""

from .backpressure import (
    Admission,
    BoundedIngestQueue,
    DEFAULT_HARD_LIMIT,
    DEFAULT_SOFT_LIMIT,
    QueueStats,
)
from .client import (
    BatchingWriter,
    CharacterizationClient,
    ServerError,
    ServerOverloadedError,
)
from .metrics import ServerMetrics
from .protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    Frame,
    FrameDecoder,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
)
from .server import CharacterizationServer, ServerThread
from .tenants import (
    DEFAULT_MAX_TENANTS,
    DEFAULT_TENANT,
    TenantLimitError,
    TenantRouter,
)

__all__ = [
    "Admission",
    "BatchingWriter",
    "BoundedIngestQueue",
    "CharacterizationClient",
    "CharacterizationServer",
    "DEFAULT_HARD_LIMIT",
    "DEFAULT_MAX_FRAME_BYTES",
    "DEFAULT_MAX_TENANTS",
    "DEFAULT_SOFT_LIMIT",
    "DEFAULT_TENANT",
    "Frame",
    "FrameDecoder",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueueStats",
    "ServerError",
    "ServerMetrics",
    "ServerOverloadedError",
    "ServerThread",
    "TenantLimitError",
    "TenantRouter",
    "encode_frame",
]
