"""Bounded per-connection ingest queues with two-level backpressure.

The serving layer must never buffer without bound: a producer faster than
the synopsis engine would otherwise grow the heap until the whole server
dies, taking every well-behaved connection with it.  Each connection gets
one :class:`BoundedIngestQueue` measured in *events* (not frames -- a
single 8k-event BATCH is 8k units of work), with two thresholds:

* **soft limit** -- an offer that lands the queue above it is *accepted*
  but acknowledged with ``THROTTLE``, telling the client to slow down
  before things get worse.  Nothing is lost.
* **hard limit** -- an offer that would push the queue past it is
  *rejected* whole (never partially: a half-applied batch would corrupt
  transaction grouping).  Rejected frames and events are counted as dead
  letters; the client sees ``ERROR code=overloaded`` and may retry after
  backoff.

The queue itself is a plain synchronous data structure; the asyncio server
owns the waiting/waking.  That keeps it unit-testable without a loop and
makes the admission decision atomic by construction (one event loop
thread).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from ..monitor.events import BlockIOEvent

#: Defaults sized for roughly one second of a fast producer.
DEFAULT_SOFT_LIMIT = 8192
DEFAULT_HARD_LIMIT = 65536


class Admission(enum.Enum):
    """Outcome of offering a frame's events to the queue."""

    ACCEPTED = "accepted"
    THROTTLED = "throttled"   # accepted, but the client should back off
    REJECTED = "rejected"     # dropped whole; nothing was enqueued


@dataclass
class QueueStats:
    """Counters one queue has accumulated over its lifetime."""

    offered_frames: int = 0
    offered_events: int = 0
    accepted_events: int = 0
    throttled_frames: int = 0
    rejected_frames: int = 0
    rejected_events: int = 0
    high_watermark: int = 0


class BoundedIngestQueue:
    """FIFO of event batches, bounded in total events."""

    def __init__(self, soft_limit: int = DEFAULT_SOFT_LIMIT,
                 hard_limit: int = DEFAULT_HARD_LIMIT) -> None:
        if soft_limit < 1:
            raise ValueError(f"soft_limit must be >= 1, got {soft_limit}")
        if hard_limit < soft_limit:
            raise ValueError(
                f"hard_limit ({hard_limit}) must be >= soft_limit "
                f"({soft_limit})"
            )
        self.soft_limit = soft_limit
        self.hard_limit = hard_limit
        self.stats = QueueStats()
        self._batches: Deque[Tuple[str, List[BlockIOEvent]]] = deque()
        self._depth = 0

    @property
    def depth(self) -> int:
        """Events currently queued."""
        return self._depth

    @property
    def pending_frames(self) -> int:
        return len(self._batches)

    @property
    def empty(self) -> bool:
        return not self._batches

    def would_reject(self, count: int) -> bool:
        """Would an offer of ``count`` events be rejected right now?

        The durable server asks this *before* journaling a frame, so a
        frame destined for rejection is never written to the WAL (a
        journaled-but-dropped frame would reappear on replay).  The check
        and the subsequent :meth:`offer` are atomic by construction: both
        run on the one event-loop thread with no await between them.
        """
        return self._depth + count > self.hard_limit

    def offer(self, events: Sequence[BlockIOEvent],
              tag: str = "") -> Admission:
        """Admit one frame's events, whole or not at all.

        ``tag`` rides along with the batch (the server stores the tenant
        name there) and comes back out of :meth:`pop` unchanged.
        """
        stats = self.stats
        stats.offered_frames += 1
        stats.offered_events += len(events)
        if self._depth + len(events) > self.hard_limit:
            stats.rejected_frames += 1
            stats.rejected_events += len(events)
            return Admission.REJECTED
        self._batches.append((tag, list(events)))
        self._depth += len(events)
        stats.accepted_events += len(events)
        if self._depth > stats.high_watermark:
            stats.high_watermark = self._depth
        if self._depth > self.soft_limit:
            stats.throttled_frames += 1
            return Admission.THROTTLED
        return Admission.ACCEPTED

    def pop(self) -> Optional[Tuple[str, List[BlockIOEvent]]]:
        """Dequeue the oldest ``(tag, batch)``, or ``None`` when empty."""
        if not self._batches:
            return None
        tag, batch = self._batches.popleft()
        self._depth -= len(batch)
        return tag, batch

    def drain(self) -> List[Tuple[str, List[BlockIOEvent]]]:
        """Dequeue everything, oldest first."""
        drained = list(self._batches)
        self._batches.clear()
        self._depth = 0
        return drained

    def retry_after(self) -> float:
        """Suggested client pause, scaled to how far past soft we are."""
        over = max(0, self._depth - self.soft_limit)
        span = max(1, self.hard_limit - self.soft_limit)
        return round(0.01 + 0.5 * (over / span), 4)
