"""Client-side circuit breaker: fail fast while the server is down.

During a failover window -- the worker crashed, the supervisor is
restarting it or promoting a standby -- every request is doomed for a few
hundred milliseconds to a few seconds.  Without a breaker each caller
discovers that the slow way: a full socket timeout times its retry
schedule, per request.  The breaker remembers recent outcomes and converts
"the server is down" into an immediate, cheap
:class:`CircuitOpenError`, so callers can shed work (or queue it) instead
of stacking up blocked threads.

Classic three-state machine:

* **closed** -- requests flow; ``failure_threshold`` *consecutive*
  failures trip it open;
* **open** -- requests are refused instantly until ``reset_timeout``
  elapses;
* **half-open** -- one probe request is let through; success closes the
  breaker, failure re-opens it (and restarts the timer).

The breaker is a passive value object: it never sleeps, never spawns
timers -- callers report outcomes and ask permission.  The clock is
injectable so tests run instantly.
"""

from __future__ import annotations

import enum
import time
from typing import Callable


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitOpenError(ConnectionError):
    """Refused locally: the breaker is open (the server looked down)."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"circuit open; retry in {retry_after:.3f}s"
        )
        self.retry_after = retry_after


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be > 0, got {reset_timeout}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        # -- lifetime counters (telemetry / tests) ------------------------
        self.opens = 0
        self.refused = 0

    @property
    def state(self) -> CircuitState:
        self._maybe_half_open()
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def _maybe_half_open(self) -> None:
        if self._state is CircuitState.OPEN and \
                self._clock() - self._opened_at >= self.reset_timeout:
            self._state = CircuitState.HALF_OPEN
            self._probe_outstanding = False

    def allow(self) -> bool:
        """May a request proceed right now?

        In half-open state exactly one caller gets a ``True`` (the probe);
        the rest are refused until its outcome is reported.
        """
        self._maybe_half_open()
        if self._state is CircuitState.CLOSED:
            return True
        if self._state is CircuitState.HALF_OPEN and \
                not self._probe_outstanding:
            self._probe_outstanding = True
            return True
        self.refused += 1
        return False

    def check(self) -> None:
        """:meth:`allow`, raising :class:`CircuitOpenError` on refusal."""
        if not self.allow():
            remaining = max(
                0.0,
                self.reset_timeout - (self._clock() - self._opened_at),
            )
            raise CircuitOpenError(remaining)

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._probe_outstanding = False
        self._state = CircuitState.CLOSED

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        self._probe_outstanding = False
        if self._state is CircuitState.HALF_OPEN or \
                self._consecutive_failures >= self.failure_threshold:
            if self._state is not CircuitState.OPEN:
                self.opens += 1
            self._state = CircuitState.OPEN
            self._opened_at = self._clock()
