"""Blocking client for the serving layer.

:class:`CharacterizationClient` speaks the frame protocol over TCP or a
Unix socket with the retry discipline of the resilience layer
(:class:`~repro.resilience.BackoffPolicy`): a connection failure
reconnects and resends with capped exponential backoff, and a hard
``overloaded`` rejection backs off and re-offers the same frame -- so a
producer pointed at a struggling server degrades to the server's pace
instead of losing data.  ``THROTTLE`` acknowledgements are obeyed by
sleeping the server-suggested ``retry_after`` before the next send.

The protocol is strict request/reply per connection, which keeps the
client a simple loop: write one frame, read frames until one reply.

:class:`BatchingWriter` is the producer-side ergonomic: hand it events one
at a time and it flushes ``BATCH`` frames by count or age, the exact
client-side mirror of the service's ``submit_many`` fast path.

Failure-window behaviour (the durable-serving additions):

* every ingest frame carries a **producer identity** (a random id plus a
  per-frame sequence number), so a frame retried after a mid-reply crash
  is recognised and deduplicated by the server's write-ahead journal --
  at-least-once delivery with exactly-once application;
* ``request_deadline`` bounds one logical request *end to end* -- connect,
  retries, and backoff sleeps included -- raising
  :class:`DeadlineExceededError` instead of blocking on a hung
  (e.g. SIGSTOPped) server;
* an optional :class:`~repro.server.circuit.CircuitBreaker` converts a
  down server into instant :class:`~repro.server.circuit.CircuitOpenError`
  refusals while the supervisor restarts it.
"""

from __future__ import annotations

import socket
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.extent import Extent, ExtentPair
from ..monitor.events import BlockIOEvent
from ..resilience.policy import BackoffPolicy
from ..telemetry.tracelog import TRACE_KEY, get_tracelog
from . import protocol
from .circuit import CircuitBreaker
from .protocol import DEFAULT_MAX_FRAME_BYTES, FrameDecoder

Address = Union[Tuple[str, int], str]

_RECV_CHUNK = 256 * 1024


class ServerError(RuntimeError):
    """The server answered with an ERROR frame."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServerOverloadedError(ServerError):
    """Hard backpressure: the frame was rejected, retries exhausted."""


class DeadlineExceededError(RuntimeError):
    """The request (including retries) outran its configured deadline.

    Deliberately *not* an :class:`OSError` subclass: the retry loop
    swallows transport errors, and a deadline must escape it.
    """


class CharacterizationClient:
    """Synchronous request/reply client with reconnect and backpressure.

    ``address`` is either a ``(host, port)`` tuple (TCP) or a filesystem
    path (Unix socket).  The client connects lazily on first use and can
    be used as a context manager.
    """

    def __init__(
        self,
        address: Address,
        *,
        tenant: Optional[str] = None,
        timeout: float = 30.0,
        request_deadline: Optional[float] = None,
        policy: Optional[BackoffPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        obey_throttle: bool = True,
        sleep=time.sleep,
        clock=time.monotonic,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        """``timeout`` bounds each socket operation; ``request_deadline``
        (seconds, ``None`` = unbounded) bounds one :meth:`request` end to
        end, backoff sleeps and reconnects included.  ``breaker`` is an
        optional shared :class:`CircuitBreaker` fed by every outcome.
        """
        if request_deadline is not None and request_deadline <= 0:
            raise ValueError(
                f"request_deadline must be > 0, got {request_deadline}"
            )
        self.address = address
        self.tenant = tenant
        self.timeout = timeout
        self.request_deadline = request_deadline
        self.policy = policy if policy is not None else BackoffPolicy()
        self.breaker = breaker
        self.obey_throttle = obey_throttle
        self._sleep = sleep
        self._clock = clock
        self._max_frame_bytes = max_frame_bytes
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder(max_frame_bytes=max_frame_bytes)
        #: Producer identity for exactly-once ingest across retries: the
        #: server's journal remembers the highest ``pseq`` applied per
        #: producer and acknowledges (without re-applying) anything at or
        #: below it.
        self.producer_id = uuid.uuid4().hex
        self._pseq = 0
        # -- producer-visible counters -----------------------------------
        self.events_sent = 0
        self.frames_sent = 0
        self.throttle_count = 0
        self.reconnects = 0
        self.overload_retries = 0
        self.duplicates_acked = 0

    # -- connection management ------------------------------------------------

    def connect(self) -> None:
        if self._sock is not None:
            return
        if isinstance(self.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.address)
        else:
            host, port = self.address
            sock = socket.create_connection((host, port),
                                            timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._decoder = FrameDecoder(max_frame_bytes=self._max_frame_bytes)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "CharacterizationClient":
        self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- request/reply core ---------------------------------------------------

    def _remaining(self, deadline: Optional[float]) -> Optional[float]:
        return None if deadline is None else deadline - self._clock()

    def _apply_deadline(self, sock: socket.socket,
                        deadline: Optional[float]) -> None:
        """Cap the next socket operation by both the per-op timeout and
        whatever is left of the request deadline."""
        remaining = self._remaining(deadline)
        if remaining is None:
            sock.settimeout(self.timeout)
            return
        if remaining <= 0:
            raise DeadlineExceededError(
                f"request deadline of {self.request_deadline}s exceeded"
            )
        sock.settimeout(min(self.timeout, remaining))

    def _send_and_receive(self, data: bytes,
                          deadline: Optional[float] = None
                          ) -> Dict[str, Any]:
        self.connect()
        sock = self._sock
        self._apply_deadline(sock, deadline)
        sock.sendall(data)
        while True:
            self._apply_deadline(sock, deadline)
            chunk = sock.recv(_RECV_CHUNK)
            if not chunk:
                raise ConnectionError("server closed the connection")
            frames = self._decoder.feed(chunk)
            if frames:
                frame = frames[0]
                if not frame.ok:
                    raise protocol.ProtocolError(frame.error)
                return frame.payload

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame and return its reply, reconnecting on failure.

        Connection errors retry per the backoff policy; the producer
        sequence carried by ingest frames makes the redelivery harmless
        (the server acknowledges a duplicate without re-applying it).  An
        ``overloaded`` rejection also retries after backoff, since the
        server sheds load transiently by design.  Any other ERROR raises
        :class:`ServerError` immediately.  ``request_deadline`` bounds
        the whole loop; an open circuit breaker refuses instantly.
        """
        if self.tenant is not None:
            payload.setdefault("tenant", self.tenant)
        tracer = get_tracelog()
        if tracer is None:
            return self._request_encoded(payload)
        span = tracer.span("client.request",
                           tags={"frame": payload.get("type", "")})
        # Attach before encoding: retries resend the same bytes, so a
        # redelivered frame stays on the original request's span tree,
        # and the server's frame span links under this one.
        payload.setdefault(TRACE_KEY, span.context.to_wire())
        with span:
            return self._request_encoded(payload)

    def _request_encoded(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        data = protocol.encode_frame(payload)
        policy = self.policy
        breaker = self.breaker
        deadline = (self._clock() + self.request_deadline
                    if self.request_deadline is not None else None)
        attempt = 0
        while True:
            if breaker is not None:
                breaker.check()
            try:
                reply = self._send_and_receive(data, deadline)
            except DeadlineExceededError:
                self.close()
                if breaker is not None:
                    breaker.record_failure()
                raise
            except (ConnectionError, socket.timeout, OSError) as exc:
                self.close()
                if breaker is not None:
                    breaker.record_failure()
                remaining = self._remaining(deadline)
                if remaining is not None and remaining <= 0:
                    raise DeadlineExceededError(
                        f"request deadline of {self.request_deadline}s "
                        f"exceeded after {attempt + 1} attempts"
                    ) from exc
                if attempt >= policy.retries:
                    raise
                delay = policy.delay(attempt)
                if remaining is not None:
                    delay = min(delay, max(0.0, remaining))
                self._sleep(delay)
                attempt += 1
                self.reconnects += 1
                continue
            # Any decoded reply means the server is up: the breaker
            # tracks availability, not load shedding.
            if breaker is not None:
                breaker.record_success()
            if reply.get("type") == protocol.REPLY_ERROR:
                code = reply.get("code", protocol.ERR_INTERNAL)
                message = reply.get("error", "")
                if code == protocol.ERR_OVERLOADED:
                    remaining = self._remaining(deadline)
                    if attempt >= policy.retries or \
                            (remaining is not None and remaining <= 0):
                        raise ServerOverloadedError(code, message)
                    delay = policy.delay(attempt)
                    if remaining is not None:
                        delay = min(delay, max(0.0, remaining))
                    self._sleep(delay)
                    attempt += 1
                    self.overload_retries += 1
                    continue
                raise ServerError(code, message)
            if reply.get("type") == protocol.REPLY_THROTTLE:
                self.throttle_count += 1
                if self.obey_throttle:
                    self._sleep(float(reply.get("retry_after", 0.05)))
            if reply.get("duplicate"):
                self.duplicates_acked += 1
            return reply

    # -- protocol verbs -------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        reply = self.request({"type": protocol.FRAME_PING})
        if reply.get("type") != protocol.REPLY_PONG:
            raise protocol.ProtocolError(f"expected PONG, got {reply!r}")
        return reply

    def _stamp_producer(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Attach the producer identity to one ingest frame.  The pseq is
        assigned once per frame -- retries resend the same number, which
        is exactly what lets the server deduplicate them."""
        self._pseq += 1
        payload["producer"] = self.producer_id
        payload["pseq"] = self._pseq
        return payload

    def send_event(self, event: BlockIOEvent) -> Dict[str, Any]:
        reply = self.request(self._stamp_producer({
            "type": protocol.FRAME_EVENT,
            "event": protocol.event_to_payload(event),
        }))
        self.frames_sent += 1
        self.events_sent += 1
        return reply

    def send_events(self, events: List[BlockIOEvent]) -> Dict[str, Any]:
        """Send one BATCH frame; returns the (OK or THROTTLE) reply."""
        reply = self.request(self._stamp_producer(protocol.batch_frame(events)))
        self.frames_sent += 1
        self.events_sent += int(reply.get("accepted", len(events)))
        return reply

    def query_top(
        self,
        k: int = 20,
        min_support: int = 2,
        kind: Optional[str] = None,
    ) -> List[Tuple[ExtentPair, int]]:
        """Top-``k`` frequent correlations, strongest first."""
        payload: Dict[str, Any] = {
            "type": protocol.FRAME_QUERY, "what": "correlations",
            "k": k, "min_support": min_support,
        }
        if kind is not None:
            payload["kind"] = kind
        reply = self.request(payload)
        return [protocol.pair_from_payload(entry)
                for entry in reply.get("pairs", [])]

    def query_items(self, k: int = 20,
                    min_support: int = 2) -> List[Tuple[Extent, int]]:
        """Top-``k`` frequent extents, strongest first."""
        reply = self.request({
            "type": protocol.FRAME_QUERY, "what": "items",
            "k": k, "min_support": min_support,
        })
        return [protocol.extent_from_payload(entry)
                for entry in reply.get("items", [])]

    def stats(self) -> Dict[str, Any]:
        return self.request({"type": protocol.FRAME_STATS})["stats"]

    def checkpoint(self) -> Dict[str, Any]:
        return self.request({"type": protocol.FRAME_CHECKPOINT})

    def metrics_prometheus(self) -> str:
        reply = self.request({"type": protocol.FRAME_METRICS})
        return reply.get("prometheus", "")


class BatchingWriter:
    """Client-side event batcher: flush by count or age.

    ``max_batch`` bounds the events per BATCH frame; ``max_age`` bounds
    how long the oldest buffered event waits (checked on every ``add``,
    so a stalled producer should call :meth:`flush` -- or use the context
    manager, which flushes on exit).
    """

    def __init__(self, client: CharacterizationClient,
                 max_batch: int = 512, max_age: float = 0.25) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_age <= 0:
            raise ValueError(f"max_age must be > 0, got {max_age}")
        self.client = client
        self.max_batch = max_batch
        self.max_age = max_age
        self.batches_flushed = 0
        self._buffer: List[BlockIOEvent] = []
        self._oldest: Optional[float] = None

    def __len__(self) -> int:
        return len(self._buffer)

    def add(self, event: BlockIOEvent) -> None:
        buffer = self._buffer
        if not buffer:
            self._oldest = time.monotonic()
        buffer.append(event)
        if len(buffer) >= self.max_batch or \
                time.monotonic() - self._oldest >= self.max_age:
            self.flush()

    def add_many(self, events: List[BlockIOEvent]) -> None:
        for event in events:
            self.add(event)

    def flush(self) -> None:
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        self._oldest = None
        self.client.send_events(batch)
        self.batches_flushed += 1

    def __enter__(self) -> "BatchingWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()
