"""Telemetry binding for the serving layer.

One :class:`ServerMetrics` instance per server, publishing into whatever
:class:`~repro.telemetry.metrics.MetricsRegistry` the server was built
with -- the same registry the backing service's monitor and engine publish
to, so a single ``METRICS`` frame (or ``render_prometheus``) exposes the
whole stack.  Instrument families:

* ``repro_server_connections`` / ``repro_server_connections_total`` --
  live and lifetime connection counts;
* ``repro_server_frames_total{type=...}`` -- request frames by type,
  plus ``repro_server_frame_errors_total{code=..., tenant=...}`` for
  decode or dispatch failures;
* ``repro_server_frame_latency_seconds{type=..., tenant=...}`` --
  dispatch wall time per frame type and tenant (ingest frames measure
  admission, not drain), so per-tenant p99 reads from one scrape;

The ``tenant`` label is cardinality-guarded: after
``max_tenant_labels`` distinct values, further tenants collapse into
the ``__other__`` overflow bucket (a client minting a tenant per
request must not be able to grow the scrape without bound).
* ``repro_server_throttles_total`` / ``repro_server_rejected_frames_total``
  / ``repro_server_rejected_events_total`` -- backpressure outcomes
  (rejections are the dead-letter count);
* ``repro_server_queue_depth`` -- events queued across live connections,
  with ``repro_server_queue_high_watermark`` the worst depth any
  connection ever reached;
* ``repro_server_ingested_events_total`` -- events drained into the
  engine, and ``repro_server_poisoned_frames_total`` batches the engine
  raised on (degrading that batch, not the server);
* ``repro_server_bytes_read_total`` / ``repro_server_bytes_written_total``.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..telemetry.metrics import MetricsRegistry, get_default_registry

#: Overflow label value once the tenant-cardinality cap is reached.
TENANT_OVERFLOW = "__other__"


class TenantLabelGuard:
    """Bound the distinct values a tenant label may take.

    The first ``max_values`` tenants seen keep their own series; every
    later tenant lands in :data:`TENANT_OVERFLOW`.  First-come keeps the
    guard deterministic and allocation-free on the hot path.
    """

    __slots__ = ("max_values", "_seen")

    def __init__(self, max_values: int = 32) -> None:
        self.max_values = max(1, int(max_values))
        self._seen: set = set()

    def label(self, tenant: str) -> str:
        value = tenant or "default"
        if value in self._seen:
            return value
        if len(self._seen) < self.max_values:
            self._seen.add(value)
            return value
        return TENANT_OVERFLOW


class ServerMetrics:
    """All serving-layer instruments, no-ops under a null registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 depth_probe: Optional[Callable[[], int]] = None,
                 max_tenant_labels: int = 32) -> None:
        registry = registry if registry is not None else \
            get_default_registry()
        self.registry = registry
        self.enabled = registry.enabled
        self.tenants = TenantLabelGuard(max_tenant_labels)
        self._frames = registry.counter(
            "repro_server_frames_total",
            "Request frames handled, by frame type",
            labelnames=("type",),
        )
        self._frame_errors = registry.counter(
            "repro_server_frame_errors_total",
            "Frames answered with ERROR, by code and tenant",
            labelnames=("code", "tenant"),
        )
        self._latency = registry.histogram(
            "repro_server_frame_latency_seconds",
            "Dispatch wall time per frame type and tenant",
            labelnames=("type", "tenant"),
        )
        self._connections = registry.gauge(
            "repro_server_connections", "Connections currently open"
        )
        self._connections_total = registry.counter(
            "repro_server_connections_total", "Connections ever accepted"
        )
        self._throttles = registry.counter(
            "repro_server_throttles_total",
            "Ingest frames acknowledged with THROTTLE",
        )
        self._rejected_frames = registry.counter(
            "repro_server_rejected_frames_total",
            "Ingest frames rejected at the hard limit (dead letters)",
        )
        self._rejected_events = registry.counter(
            "repro_server_rejected_events_total",
            "Events inside rejected ingest frames",
        )
        self._ingested = registry.counter(
            "repro_server_ingested_events_total",
            "Events drained from connection queues into the engine",
        )
        self._poisoned = registry.counter(
            "repro_server_poisoned_frames_total",
            "Queued batches the engine raised on (dropped, counted)",
        )
        self._bytes_read = registry.counter(
            "repro_server_bytes_read_total", "Bytes read off client sockets"
        )
        self._bytes_written = registry.counter(
            "repro_server_bytes_written_total",
            "Bytes written back to clients",
        )
        self._queue_depth = registry.gauge(
            "repro_server_queue_depth",
            "Events queued across live connections",
        )
        self._queue_watermark = registry.gauge(
            "repro_server_queue_high_watermark",
            "Highest per-connection queue depth seen",
        )
        self._depth_probe = depth_probe
        self._watermark = 0
        if depth_probe is not None and self.enabled:
            registry.register_collector(self._collect)

    def _collect(self) -> None:
        if self._depth_probe is not None:
            self._queue_depth.set(self._depth_probe())
        self._queue_watermark.set(self._watermark)

    # -- recording hooks (cheap, callable on every frame) --------------------

    def frame(self, kind: str, seconds: float, tenant: str = "") -> None:
        self._frames.labels(type=kind).inc()
        self._latency.labels(
            type=kind, tenant=self.tenants.label(tenant)).observe(seconds)

    def frame_error(self, code: str, tenant: str = "") -> None:
        self._frame_errors.labels(
            code=code, tenant=self.tenants.label(tenant)).inc()

    def connection_opened(self) -> None:
        self._connections_total.inc()
        self._connections.inc()

    def connection_closed(self) -> None:
        self._connections.dec()

    def throttled(self) -> None:
        self._throttles.inc()

    def rejected(self, events: int) -> None:
        self._rejected_frames.inc()
        self._rejected_events.inc(events)

    def ingested(self, events: int) -> None:
        self._ingested.inc(events)

    def poisoned(self) -> None:
        self._poisoned.inc()

    def bytes_read(self, count: int) -> None:
        self._bytes_read.inc(count)

    def bytes_written(self, count: int) -> None:
        self._bytes_written.inc(count)

    def note_depth(self, depth: int) -> None:
        if depth > self._watermark:
            self._watermark = depth
