"""Wire protocol for the serving layer: length-prefixed NDJSON frames.

Every frame on the wire is::

    <4-byte big-endian unsigned length> <UTF-8 JSON object> '\\n'

The length covers the JSON body *including* the trailing newline.  The
newline buys nothing for machines but keeps captures greppable -- ``nc -U``
against a server socket prints one JSON object per line.  The JSON object
always carries a ``"type"`` key naming the frame; everything else is
frame-specific payload (see ``docs/serving.md`` for the full spec).

Request frames (client -> server): ``EVENT``, ``BATCH``, ``QUERY``,
``STATS``, ``CHECKPOINT``, ``METRICS``, ``PING``.  Reply frames
(server -> client): ``OK``, ``THROTTLE``, ``RESULT``, ``PONG``, ``ERROR``.
``THROTTLE`` is a *positive* acknowledgement -- the events were accepted --
that also tells the client to back off; a hard rejection is an ``ERROR``
with ``code="overloaded"``.

:class:`FrameDecoder` is an incremental push parser: feed it whatever the
transport produced (half a length prefix, three frames at once) and it
yields complete frames.  Decode problems surface as :class:`Frame` objects
with ``error`` set rather than exceptions, because a server must answer a
malformed frame and *keep the connection*; an oversized frame is skipped
byte-exactly (the length prefix tells us how much to discard), so the
stream stays in sync without buffering an attacker-sized body.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.extent import Extent, ExtentPair
from ..monitor.events import BlockIOEvent
from ..trace.record import OpType

PROTOCOL_VERSION = 1

#: Default ceiling on one frame's body; a BATCH of ~8k events fits easily.
DEFAULT_MAX_FRAME_BYTES = 4 * 1024 * 1024

_LENGTH = struct.Struct(">I")

# Request frame types.
FRAME_EVENT = "EVENT"
FRAME_BATCH = "BATCH"
FRAME_QUERY = "QUERY"
FRAME_STATS = "STATS"
FRAME_CHECKPOINT = "CHECKPOINT"
FRAME_METRICS = "METRICS"
FRAME_PING = "PING"

REQUEST_TYPES = (
    FRAME_EVENT, FRAME_BATCH, FRAME_QUERY, FRAME_STATS,
    FRAME_CHECKPOINT, FRAME_METRICS, FRAME_PING,
)

# Reply frame types.
REPLY_OK = "OK"
REPLY_THROTTLE = "THROTTLE"
REPLY_RESULT = "RESULT"
REPLY_PONG = "PONG"
REPLY_ERROR = "ERROR"

# Machine-readable ERROR codes.
ERR_MALFORMED = "malformed"
ERR_TOO_LARGE = "too_large"
ERR_OVERLOADED = "overloaded"
ERR_BAD_REQUEST = "bad_request"
ERR_UNAVAILABLE = "unavailable"
ERR_INTERNAL = "internal"


class ProtocolError(ValueError):
    """A frame violated the wire protocol."""


@dataclass
class Frame:
    """One decoded frame: either a payload or a decode error, never both."""

    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    error_code: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def type(self) -> Optional[str]:
        if self.payload is None:
            return None
        kind = self.payload.get("type")
        return kind if isinstance(kind, str) else None


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialise one frame, length prefix included."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"
    return _LENGTH.pack(len(body)) + body


class FrameDecoder:
    """Incremental decoder resilient to fragmentation and bad frames.

    ``feed`` accepts any byte string (including the empty one) and returns
    the frames completed by it.  State carries across calls, so a frame
    split over N TCP reads decodes exactly once, after the final read.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < 2:
            raise ValueError(
                f"max_frame_bytes must be >= 2, got {max_frame_bytes}"
            )
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        #: Remaining bytes of an oversized body still being discarded,
        #: paired with its declared size (for the eventual error frame).
        self._discarding = 0
        self._discarded_size = 0

    def feed(self, data: bytes) -> List[Frame]:
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> Optional[Frame]:
        buffer = self._buffer
        if self._discarding:
            drop = min(self._discarding, len(buffer))
            del buffer[:drop]
            self._discarding -= drop
            if self._discarding:
                return None
            size = self._discarded_size
            return Frame(
                error=f"frame of {size} bytes exceeds limit "
                      f"{self.max_frame_bytes}",
                error_code=ERR_TOO_LARGE,
            )
        if len(buffer) < _LENGTH.size:
            return None
        (length,) = _LENGTH.unpack_from(buffer)
        if length > self.max_frame_bytes:
            del buffer[:_LENGTH.size]
            self._discarding = length
            self._discarded_size = length
            return self._next_frame()
        if len(buffer) < _LENGTH.size + length:
            return None
        body = bytes(buffer[_LENGTH.size:_LENGTH.size + length])
        del buffer[:_LENGTH.size + length]
        try:
            payload = json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return Frame(error=f"malformed JSON: {exc}",
                         error_code=ERR_MALFORMED)
        if not isinstance(payload, dict) or \
                not isinstance(payload.get("type"), str):
            return Frame(error="frame must be a JSON object with a "
                               "string 'type'",
                         error_code=ERR_MALFORMED)
        return Frame(payload=payload)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered while waiting for the rest of a frame."""
        return len(self._buffer)


# ---------------------------------------------------------------------------
# Payload codecs
# ---------------------------------------------------------------------------

def event_to_payload(event: BlockIOEvent) -> Dict[str, Any]:
    """A compact JSON shape for one issue event."""
    payload: Dict[str, Any] = {
        "ts": event.timestamp,
        "op": event.op.value,
        "start": event.start,
        "len": event.length,
    }
    if event.pid:
        payload["pid"] = event.pid
    if event.latency is not None:
        payload["lat"] = event.latency
    if event.pgid:
        payload["pgid"] = event.pgid
    return payload


def event_from_payload(payload: Any) -> BlockIOEvent:
    """Parse one event payload; raises :class:`ProtocolError` when invalid."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"event must be an object, got {type(payload).__name__}")
    try:
        return BlockIOEvent(
            timestamp=float(payload["ts"]),
            pid=int(payload.get("pid", 0)),
            op=OpType.parse(payload["op"]),
            start=int(payload["start"]),
            length=int(payload["len"]),
            latency=(float(payload["lat"])
                     if payload.get("lat") is not None else None),
            pgid=int(payload.get("pgid", 0)),
        )
    except KeyError as exc:
        raise ProtocolError(f"event missing field {exc.args[0]!r}") from exc
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad event field: {exc}") from exc


def events_from_frame(payload: Dict[str, Any]) -> List[BlockIOEvent]:
    """The events an EVENT or BATCH frame carries."""
    kind = payload.get("type")
    if kind == FRAME_EVENT:
        return [event_from_payload(payload.get("event"))]
    raw = payload.get("events")
    if not isinstance(raw, list):
        raise ProtocolError("BATCH frame needs an 'events' array")
    return [event_from_payload(entry) for entry in raw]


def pair_to_payload(pair: ExtentPair, count: int) -> Dict[str, Any]:
    return {
        "a": [pair.first.start, pair.first.length],
        "b": [pair.second.start, pair.second.length],
        "count": count,
    }


def pair_from_payload(payload: Dict[str, Any]) -> Tuple[ExtentPair, int]:
    try:
        a_start, a_length = payload["a"]
        b_start, b_length = payload["b"]
        pair = ExtentPair(Extent(int(a_start), int(a_length)),
                          Extent(int(b_start), int(b_length)))
        return pair, int(payload["count"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad pair payload: {exc}") from exc


def extent_to_payload(extent: Extent, count: int) -> Dict[str, Any]:
    return {"extent": [extent.start, extent.length], "count": count}


def extent_from_payload(payload: Dict[str, Any]) -> Tuple[Extent, int]:
    try:
        start, length = payload["extent"]
        return Extent(int(start), int(length)), int(payload["count"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad extent payload: {exc}") from exc


def error_frame(code: str, message: str,
                request_id: Optional[Any] = None) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "type": REPLY_ERROR, "code": code, "error": message,
    }
    if request_id is not None:
        payload["id"] = request_id
    return payload


def batch_frame(events: Iterable[BlockIOEvent],
                tenant: Optional[str] = None) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "type": FRAME_BATCH,
        "events": [event_to_payload(event) for event in events],
    }
    if tenant:
        payload["tenant"] = tenant
    return payload
