"""Crash recovery: restore the checkpoint, replay the journal tail.

On startup (or standby warm-up) the durable server rebuilds its state in
two moves:

1. **checkpoint restore** -- each tenant's last good checkpoint is loaded
   through the resilience layer (corrupt shards degrade, a corrupt file
   falls back fresh rather than refusing to start);
2. **journal replay** -- the write-ahead log's records are streamed
   through the normal batch ingest lane (``submit_many``), skipping
   whatever the checkpoint already covers.  A tenant whose checkpoint
   failed to load is replayed *from the beginning of the journal*, so an
   intact WAL rescues a corrupt checkpoint outright.

The same machinery doubles as the warm standby's tailing loop: call
:meth:`WalRecovery.recover` once, then :meth:`WalRecovery.catch_up`
periodically to apply whatever a (still running, or recently dead)
primary appended since.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..core.serialize import CheckpointCorruptError
from ..resilience.service import ResilientCharacterizationService
from ..resilience.wal import WalMeta, WriteAheadLog, read_wal_meta
from ..service import CharacterizationService
from .tenants import DEFAULT_TENANT, TenantLimitError, TenantRouter


def tenant_checkpoint_path(checkpoint_path: str, tenant: str) -> str:
    """Where one tenant's checkpoint lives (default tenant: the path
    itself; others: a dotted suffix)."""
    return checkpoint_path if tenant == DEFAULT_TENANT \
        else f"{checkpoint_path}.{tenant}"


def discover_tenant_checkpoints(checkpoint_path: str) -> Dict[str, str]:
    """Map tenant name -> checkpoint file for every checkpoint on disk."""
    base = Path(checkpoint_path)
    found: Dict[str, str] = {}
    if base.exists():
        found[DEFAULT_TENANT] = str(base)
    if base.parent.exists():
        for path in base.parent.glob(f"{base.name}.*"):
            tenant = path.name[len(base.name) + 1:]
            if tenant:
                found[tenant] = str(path)
    return found


@dataclass
class RecoveryReport:
    """What one recovery pass restored, replayed, and gave up on."""

    restored_tenants: List[str] = field(default_factory=list)
    failed_tenants: List[str] = field(default_factory=list)
    checkpoint_seq: int = 0
    applied_seq: int = 0
    replayed_records: int = 0
    replayed_events: int = 0
    skipped_records: int = 0
    corrupt_records: int = 0
    torn_tail: bool = False
    refused_tenants: int = 0
    producers: Dict[str, int] = field(default_factory=dict)

    @property
    def checkpoint_loaded(self) -> bool:
        return bool(self.restored_tenants) and not self.failed_tenants


def _restore_service(service: CharacterizationService, path: str) -> bool:
    """Load one tenant's checkpoint; True when its state actually loaded
    (a degraded-but-loaded restore counts, a fresh fallback does not)."""
    if isinstance(service, ResilientCharacterizationService):
        return service.restore_from(path)
    try:
        with open(path, "rb") as stream:
            service.restore(stream)
        return True
    except (OSError, CheckpointCorruptError):
        return False


class WalRecovery:
    """Restores a tenant router from checkpoint + journal, then tails."""

    def __init__(
        self,
        router: TenantRouter,
        wal: WriteAheadLog,
        checkpoint_path: Optional[str] = None,
    ) -> None:
        self.router = router
        self.wal = wal
        self.checkpoint_path = checkpoint_path
        self.applied_seq = 0
        self.producers: Dict[str, int] = {}
        self._tenant_ok: Dict[str, bool] = {}
        self.report = RecoveryReport()

    # -- initial recovery ---------------------------------------------------

    def recover(self) -> RecoveryReport:
        """One-shot startup recovery; returns the report (also kept as
        :attr:`report`)."""
        report = self.report = RecoveryReport()
        meta = read_wal_meta(self.wal.directory) if self.checkpoint_path \
            else WalMeta()
        report.checkpoint_seq = meta.checkpoint_seq
        self.producers = dict(meta.producers)
        if self.checkpoint_path:
            self._restore_checkpoints(report)
        self._apply_records(report, meta.checkpoint_seq)
        report.producers = dict(self.producers)
        return report

    def _restore_checkpoints(self, report: RecoveryReport) -> None:
        for tenant, path in sorted(
                discover_tenant_checkpoints(self.checkpoint_path).items()):
            try:
                service = self.router.get(tenant)
            except TenantLimitError:
                report.refused_tenants += 1
                continue
            ok = _restore_service(service, path)
            self._tenant_ok[tenant] = ok
            (report.restored_tenants if ok
             else report.failed_tenants).append(tenant)

    def _apply_records(self, report: RecoveryReport, cut: int) -> None:
        """Replay the whole journal, skipping records the checkpoint
        already covers *for tenants whose checkpoint actually loaded*."""
        for record in self.wal.replay(after_seq=0):
            self.applied_seq = record.seq
            self._note_producer(record)
            if record.seq <= cut and self._tenant_ok.get(record.tenant):
                report.skipped_records += 1
                continue
            if self._apply(record):
                report.replayed_records += 1
                report.replayed_events += len(record.events)
            else:
                report.refused_tenants += 1
        stats = self.wal.replay_stats
        report.corrupt_records = stats.corrupt_records
        report.torn_tail = stats.torn_tail

    def _note_producer(self, record) -> None:
        if record.producer is not None and record.pseq is not None:
            previous = self.producers.get(record.producer, 0)
            if record.pseq > previous:
                self.producers[record.producer] = record.pseq

    def _apply(self, record) -> bool:
        try:
            service = self.router.get(record.tenant)
        except TenantLimitError:
            return False
        service.submit_many(record.events)
        return True

    # -- standby tailing ----------------------------------------------------

    def catch_up(self) -> int:
        """Apply every record appended since the last call (or since
        :meth:`recover`); returns how many were applied.  This is the warm
        standby's whole job: poll, apply, repeat, stay seconds-fresh."""
        applied = 0
        for record in self.wal.replay(after_seq=self.applied_seq):
            self.applied_seq = record.seq
            self._note_producer(record)
            if self._apply(record):
                applied += 1
        return applied
