"""Crash recovery: restore the checkpoint, replay the journal tail.

On startup (or standby warm-up) the durable server rebuilds its state in
two moves:

1. **checkpoint restore** -- each tenant's last good checkpoint is loaded
   through the resilience layer (corrupt shards degrade, a corrupt file
   falls back fresh rather than refusing to start);
2. **journal replay** -- the write-ahead log's records are streamed
   through the normal batch ingest lane (``submit_many``), skipping
   whatever the checkpoint already covers.  A tenant whose checkpoint
   failed to load is replayed *from the beginning of the journal*, so an
   intact WAL rescues a corrupt checkpoint outright.

The same machinery doubles as the warm standby's tailing loop: call
:meth:`WalRecovery.recover` once, then :meth:`WalRecovery.catch_up`
periodically to apply whatever a (still running, or recently dead)
primary appended since.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..core.serialize import CheckpointCorruptError
from ..resilience.service import ResilientCharacterizationService
from ..resilience.wal import WalMeta, WriteAheadLog, read_wal_meta
from ..service import CharacterizationService
from ..telemetry.log import get_logger
from .tenants import DEFAULT_TENANT, TenantLimitError, TenantRouter

#: How many replayed records between ``progress`` callbacks (a worker
#: recovering a large journal uses this to keep its heartbeat fresh, so
#: a supervisor doesn't mistake slow recovery for a wedged process).
PROGRESS_EVERY = 1000


class StandbyGapError(RuntimeError):
    """The journal was truncated past this reader's position and no
    checkpoint can bridge the gap -- continuing would silently serve
    with acknowledged events missing."""


def tenant_checkpoint_path(checkpoint_path: str, tenant: str) -> str:
    """Where one tenant's checkpoint lives (default tenant: the path
    itself; others: a dotted suffix)."""
    return checkpoint_path if tenant == DEFAULT_TENANT \
        else f"{checkpoint_path}.{tenant}"


def discover_tenant_checkpoints(checkpoint_path: str) -> Dict[str, str]:
    """Map tenant name -> checkpoint file for every checkpoint on disk."""
    base = Path(checkpoint_path)
    found: Dict[str, str] = {}
    if base.exists():
        found[DEFAULT_TENANT] = str(base)
    if base.parent.exists():
        for path in base.parent.glob(f"{base.name}.*"):
            tenant = path.name[len(base.name) + 1:]
            if tenant:
                found[tenant] = str(path)
    return found


@dataclass
class RecoveryReport:
    """What one recovery pass restored, replayed, and gave up on."""

    restored_tenants: List[str] = field(default_factory=list)
    failed_tenants: List[str] = field(default_factory=list)
    checkpoint_seq: int = 0
    applied_seq: int = 0
    replayed_records: int = 0
    replayed_events: int = 0
    skipped_records: int = 0
    corrupt_records: int = 0
    torn_tail: bool = False
    refused_tenants: int = 0
    producers: Dict[str, int] = field(default_factory=dict)

    @property
    def checkpoint_loaded(self) -> bool:
        return bool(self.restored_tenants) and not self.failed_tenants


def _restore_service(service: CharacterizationService, path: str) -> bool:
    """Load one tenant's checkpoint; True when its state actually loaded
    (a degraded-but-loaded restore counts, a fresh fallback does not)."""
    if isinstance(service, ResilientCharacterizationService):
        return service.restore_from(path)
    try:
        with open(path, "rb") as stream:
            service.restore(stream)
        return True
    except (OSError, CheckpointCorruptError):
        return False


class WalRecovery:
    """Restores a tenant router from checkpoint + journal, then tails."""

    def __init__(
        self,
        router: TenantRouter,
        wal: WriteAheadLog,
        checkpoint_path: Optional[str] = None,
        progress: Optional[Callable[[], None]] = None,
    ) -> None:
        self.router = router
        self.wal = wal
        self.checkpoint_path = checkpoint_path
        self.progress = progress
        self.applied_seq = 0
        self.producers: Dict[str, int] = {}
        self._tenant_ok: Dict[str, bool] = {}
        self.report = RecoveryReport()
        self._log = get_logger("recovery")

    # -- initial recovery ---------------------------------------------------

    def recover(self) -> RecoveryReport:
        """One-shot startup recovery; returns the report (also kept as
        :attr:`report`)."""
        report = self.report = RecoveryReport()
        meta = read_wal_meta(self.wal.directory) if self.checkpoint_path \
            else WalMeta()
        report.checkpoint_seq = meta.checkpoint_seq
        self.producers = dict(meta.producers)
        self._log.info("recovery.start", wal_dir=str(self.wal.directory),
                       checkpoint_seq=meta.checkpoint_seq)
        if self.checkpoint_path:
            self._restore_checkpoints(report)
        self._apply_records(report, meta.checkpoint_seq)
        report.producers = dict(self.producers)
        self._log.info(
            "recovery.complete",
            restored_tenants=len(report.restored_tenants),
            failed_tenants=report.failed_tenants,
            replayed_records=report.replayed_records,
            replayed_events=report.replayed_events,
            skipped_records=report.skipped_records,
            corrupt_records=report.corrupt_records,
            torn_tail=report.torn_tail,
            applied_seq=self.applied_seq,
        )
        return report

    def _restore_checkpoints(self, report: RecoveryReport,
                             fresh: bool = False) -> None:
        """Load every on-disk tenant checkpoint; ``fresh`` rebuilds each
        tenant's service first, discarding partially-applied state (a
        resyncing standby must not restore over a monitor that already
        holds half a transaction window)."""
        for tenant, path in sorted(
                discover_tenant_checkpoints(self.checkpoint_path).items()):
            try:
                service = self.router.reset(tenant) if fresh \
                    else self.router.get(tenant)
            except TenantLimitError:
                report.refused_tenants += 1
                continue
            ok = _restore_service(service, path)
            self._tenant_ok[tenant] = ok
            (report.restored_tenants if ok
             else report.failed_tenants).append(tenant)

    def _apply_records(self, report: RecoveryReport, cut: int) -> None:
        """Replay the whole journal, skipping records the checkpoint
        already covers *for tenants whose checkpoint actually loaded*."""
        for index, record in enumerate(self.wal.replay(after_seq=0)):
            self.applied_seq = record.seq
            self._note_producer(record)
            if self.progress is not None and index % PROGRESS_EVERY == 0:
                self.progress()
            if record.seq <= cut and self._tenant_ok.get(record.tenant):
                report.skipped_records += 1
                continue
            if self._apply(record):
                report.replayed_records += 1
                report.replayed_events += len(record.events)
            else:
                report.refused_tenants += 1
        stats = self.wal.replay_stats
        report.corrupt_records = stats.corrupt_records
        report.torn_tail = stats.torn_tail

    def _note_producer(self, record) -> None:
        if record.producer is not None and record.pseq is not None:
            previous = self.producers.get(record.producer, 0)
            if record.pseq > previous:
                self.producers[record.producer] = record.pseq

    def _apply(self, record) -> bool:
        try:
            service = self.router.get(record.tenant)
        except TenantLimitError:
            return False
        service.submit_many(record.events)
        return True

    # -- standby tailing ----------------------------------------------------

    def catch_up(self) -> int:
        """Apply every record appended since the last call (or since
        :meth:`recover`); returns how many were applied.  This is the warm
        standby's whole job: poll, apply, repeat, stay seconds-fresh.

        A primary that checkpoints with ``wal_truncate=True`` deletes
        segments this tailer may not have read yet; tailing blindly would
        skip that range without a whisper.  So each call first checks the
        checkpoint cut against our position: if the cut moved past us
        *and* the journal no longer holds the records in between, the
        gap is bridged by re-restoring the (newer) checkpoint that covers
        it -- or, when no checkpoint is available, by raising
        :class:`StandbyGapError` rather than silently losing acked
        events."""
        self._resync_if_truncated()
        applied = 0
        for index, record in enumerate(
                self.wal.replay(after_seq=self.applied_seq)):
            self.applied_seq = record.seq
            self._note_producer(record)
            if self.progress is not None and index % PROGRESS_EVERY == 0:
                self.progress()
            if self._apply(record):
                applied += 1
        return applied

    def _resync_if_truncated(self) -> None:
        meta = read_wal_meta(self.wal.directory)
        if meta.checkpoint_seq <= self.applied_seq:
            return  # the cut has not moved past us
        oldest = self.wal.oldest_seq()
        if oldest is not None and oldest <= self.applied_seq + 1:
            return  # full history retained; a plain tail sees everything
        if not self.checkpoint_path:
            raise StandbyGapError(
                f"journal truncated through seq {meta.checkpoint_seq} "
                f"while this tailer had applied only {self.applied_seq}, "
                f"and no checkpoint_path is configured to bridge the gap;"
                f" give the standby the primary's checkpoint path, or run"
                f" the primary with wal_truncate=False"
            )
        # The checkpoint files for the new cut are already on disk: the
        # primary writes them *before* committing the cut to wal.meta.
        self._log.warning("recovery.standby_resync",
                          checkpoint_seq=meta.checkpoint_seq,
                          applied_seq=self.applied_seq)
        resync = RecoveryReport()
        self._tenant_ok = {}
        self._restore_checkpoints(resync, fresh=True)
        if resync.failed_tenants:
            raise StandbyGapError(
                f"journal truncated through seq {meta.checkpoint_seq} "
                f"and re-restoring the covering checkpoint failed for "
                f"tenants {resync.failed_tenants}; acked events would be "
                f"lost"
            )
        for producer, pseq in meta.producers.items():
            if pseq > self.producers.get(producer, 0):
                self.producers[producer] = pseq
        self.applied_seq = meta.checkpoint_seq
        self.report.checkpoint_seq = meta.checkpoint_seq
        self.report.restored_tenants = list(resync.restored_tenants)
        self.report.refused_tenants += resync.refused_tenants
