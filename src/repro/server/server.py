"""The asyncio serving layer: stream events in, query correlations out.

:class:`CharacterizationServer` turns the in-process
:class:`~repro.service.CharacterizationService` into a long-lived network
service (the deployment shape every online-mining system in this line of
work assumes): clients connect over TCP or a Unix socket, stream ``EVENT``
/ ``BATCH`` frames in, and ask ``QUERY`` / ``STATS`` / ``METRICS`` /
``CHECKPOINT`` questions of the live synopsis.

Design points:

* **one event loop, no locks** -- frame dispatch and ingest both run on
  the loop thread, so engine state needs no synchronisation.  Ingest is
  decoupled from the socket by a per-connection
  :class:`~repro.server.backpressure.BoundedIngestQueue` drained by a
  per-connection task: admission (and the client's acknowledgement) is
  immediate, the synopsis catches up concurrently with network round
  trips, and a producer that outruns the engine sees ``THROTTLE`` then
  hard rejection instead of growing the heap.
* **read-your-writes** -- a ``QUERY``/``STATS``/``CHECKPOINT`` frame first
  drains the *same connection's* pending ingest, so a client that streams
  a trace and immediately asks for the top-K sees every event it sent.
* **failure isolation** -- the default backend is
  :class:`~repro.resilience.ResilientCharacterizationService`; a batch the
  engine raises on (a poisoned frame) is dropped and counted against that
  connection, and a malformed or oversized frame gets an ``ERROR`` reply
  while the connection lives on.
* **graceful drain** -- :meth:`shutdown` stops accepting, drains every
  queue, flushes every tenant's monitor (the final open transaction
  window reaches the analyzer), and checkpoints via the resilience
  layer's atomic, retried writer when a checkpoint path is configured.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from ..core.typed import CorrelationKind
from ..monitor.events import BlockIOEvent
from ..resilience.service import ResilientCharacterizationService
from ..resilience.wal import (
    DEFAULT_FSYNC_INTERVAL,
    DEFAULT_SEGMENT_BYTES,
    FsyncPolicy,
    WalMeta,
    WriteAheadLog,
    write_wal_meta,
)
from ..service import CharacterizationService
from ..telemetry.export import render_prometheus
from ..telemetry.httpd import OpsServer
from ..telemetry.log import get_logger
from ..telemetry.metrics import MetricsRegistry, get_default_registry
from ..telemetry.tracelog import (
    NULL_SPAN,
    TRACE_KEY,
    TraceContext,
    current_context,
    get_tracelog,
    trace_span,
)
from ..trace.errors import DeadLetterBuffer, RowError
from . import protocol
from .backpressure import (
    Admission,
    BoundedIngestQueue,
    DEFAULT_HARD_LIMIT,
    DEFAULT_SOFT_LIMIT,
)
from .metrics import ServerMetrics
from .protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    PROTOCOL_VERSION,
    ProtocolError,
)
from .recovery import RecoveryReport, WalRecovery, tenant_checkpoint_path
from .tenants import (
    DEFAULT_MAX_TENANTS,
    DEFAULT_TENANT,
    ServiceFactory,
    TenantLimitError,
    TenantRouter,
)

#: How often the durable server touches its heartbeat file (and gives the
#: interval-fsync policy a chance to run while ingest is idle).
DEFAULT_HEARTBEAT_INTERVAL = 0.5

#: Bound on the producer-dedup map.  Every client instance mints a fresh
#: producer id, so a long-lived server sees an unbounded stream of them;
#: past this many the least recently seen entry is evicted (its producer
#: is almost certainly gone -- the cost of being wrong is one re-applied
#: retry, not data loss).
DEFAULT_MAX_PRODUCERS = 4096

#: Producers idle at least this long (seconds) are dropped at each
#: checkpoint cut, so wal.meta.json carries only live dedup state.
DEFAULT_PRODUCER_TTL = 3600.0

#: ``host:port`` for TCP, or a filesystem path for a Unix socket.
Address = Union[Tuple[str, int], str]

_READ_CHUNK = 256 * 1024


class _Connection:
    """Per-connection state: decoder, bounded queue, drainer plumbing."""

    _next_id = 0

    def __init__(self, soft_limit: int, hard_limit: int,
                 max_frame_bytes: int) -> None:
        _Connection._next_id += 1
        self.id = _Connection._next_id
        self.decoder = FrameDecoder(max_frame_bytes=max_frame_bytes)
        self.queue = BoundedIngestQueue(soft_limit=soft_limit,
                                        hard_limit=hard_limit)
        self.wake = asyncio.Event()
        self.closing = False
        self.poisoned_batches = 0
        self.drainer: Optional[asyncio.Task] = None


class CharacterizationServer:
    """Streaming ingest/query server over TCP or a Unix socket."""

    def __init__(
        self,
        service: Optional[CharacterizationService] = None,
        *,
        unix_path: Optional[Union[str, os.PathLike]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        soft_limit: int = DEFAULT_SOFT_LIMIT,
        hard_limit: int = DEFAULT_HARD_LIMIT,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        checkpoint_path: Optional[Union[str, os.PathLike]] = None,
        service_factory: Optional[ServiceFactory] = None,
        max_tenants: int = DEFAULT_MAX_TENANTS,
        registry: Optional[MetricsRegistry] = None,
        wal_dir: Optional[Union[str, os.PathLike]] = None,
        fsync: Union[str, FsyncPolicy] = FsyncPolicy.INTERVAL,
        fsync_interval: float = DEFAULT_FSYNC_INTERVAL,
        wal_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        wal_truncate: bool = True,
        heartbeat_path: Optional[Union[str, os.PathLike]] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        dead_letter_path: Optional[Union[str, os.PathLike]] = None,
        standby_recovery: Optional[WalRecovery] = None,
        max_producers: int = DEFAULT_MAX_PRODUCERS,
        producer_ttl: float = DEFAULT_PRODUCER_TTL,
        http_port: Optional[int] = None,
        http_host: str = "127.0.0.1",
    ) -> None:
        """``unix_path`` selects a Unix socket; otherwise TCP on
        ``host:port`` (port 0: ephemeral, read :attr:`address` after
        :meth:`start`).  ``service`` is the default tenant's backend
        (default: a fresh
        :class:`~repro.resilience.ResilientCharacterizationService`);
        ``service_factory`` builds engines for additional tenants, and
        defaults to more of whatever the default tenant runs.

        ``wal_dir`` turns on the write-ahead journal: every accepted
        ingest frame is appended (durability per ``fsync`` /
        ``fsync_interval``) *before* it is acknowledged, and
        :meth:`start` recovers by restoring the last checkpoint then
        replaying the journal tail.  ``wal_truncate=False`` keeps
        checkpoint-covered segments on disk (full-history retention; also
        what lets an intact journal rescue a *corrupt* checkpoint).
        ``heartbeat_path`` is touched every ``heartbeat_interval`` seconds
        for an external supervisor to watch.  Frames rejected by
        backpressure are quarantined in a byte-bounded dead-letter buffer
        and dumped to ``dead_letter_path`` (default:
        ``<wal_dir>/dead-letters.ndjson``) on graceful shutdown.

        ``standby_recovery`` promotes a warm standby: instead of
        restoring from scratch, :meth:`start` adopts the tailer's
        already-recovered tenants and producer map, does one final
        catch-up against the journal, and serves.

        ``http_port`` starts the :class:`OpsServer` sidecar on
        ``http_host`` (port 0: ephemeral, read ``server.ops.port``).
        The sidecar binds *before* recovery so ``/healthz`` answers
        while a large journal replays; ``/readyz`` flips to 200 only
        once the data socket is accepting.
        """
        registry = registry if registry is not None else \
            get_default_registry()
        self.registry = registry
        if service is None:
            service = ResilientCharacterizationService(registry=registry)
        self.service = service
        if service_factory is None:
            service_factory = lambda: ResilientCharacterizationService(  # noqa: E731
                registry=self.registry
            )
        self.router = TenantRouter(service_factory, max_tenants=max_tenants)
        self.router.adopt(DEFAULT_TENANT, service)
        self.unix_path = os.fspath(unix_path) if unix_path is not None \
            else None
        self.host = host
        self.port = port
        self.soft_limit = soft_limit
        self.hard_limit = hard_limit
        self.max_frame_bytes = max_frame_bytes
        self.checkpoint_path = os.fspath(checkpoint_path) \
            if checkpoint_path is not None else None
        self.wal_dir = os.fspath(wal_dir) if wal_dir is not None else None
        self.wal: Optional[WriteAheadLog] = None
        self._wal_config = {
            "fsync": fsync,
            "fsync_interval": fsync_interval,
            "segment_bytes": wal_segment_bytes,
        }
        self.wal_truncate = wal_truncate
        self.heartbeat_path = os.fspath(heartbeat_path) \
            if heartbeat_path is not None else None
        self.heartbeat_interval = heartbeat_interval
        if dead_letter_path is not None:
            self.dead_letter_path: Optional[str] = os.fspath(dead_letter_path)
        elif self.wal_dir is not None:
            self.dead_letter_path = os.path.join(self.wal_dir,
                                                 "dead-letters.ndjson")
        else:
            self.dead_letter_path = None
        self.dead_letters = DeadLetterBuffer(capacity=256)
        self._standby_recovery = standby_recovery
        if standby_recovery is not None and self.wal_dir is None:
            raise ValueError("standby promotion requires wal_dir")
        if max_producers < 1:
            raise ValueError(f"max_producers must be >= 1, "
                             f"got {max_producers}")
        if producer_ttl <= 0:
            raise ValueError(f"producer_ttl must be > 0, "
                             f"got {producer_ttl}")
        self.max_producers = max_producers
        self.producer_ttl = producer_ttl
        # Insertion order doubles as recency order: every touch pops and
        # re-inserts, so the first key is always the LRU eviction victim.
        self._producers: Dict[str, int] = {}
        self._producer_seen: Dict[str, float] = {}
        self.expired_producers = 0
        self.duplicate_frames = 0
        self.recovery_report: Optional[RecoveryReport] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._connections: Set[_Connection] = set()
        self._writers: Dict[_Connection, asyncio.StreamWriter] = {}
        self._handler_tasks: Set[asyncio.Task] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self.metrics = ServerMetrics(registry, depth_probe=self._total_depth)
        self.http_port = http_port
        self.http_host = http_host
        self.ops: Optional[OpsServer] = None
        self.ready = False
        self._started_at = time.time()
        self._log = get_logger("server")

    # -- lifecycle ------------------------------------------------------------

    @property
    def address(self) -> Address:
        """Where clients should connect (valid after :meth:`start`)."""
        if self.unix_path is not None:
            return self.unix_path
        if self._server is not None and self._server.sockets:
            bound = self._server.sockets[0].getsockname()
            return (bound[0], bound[1])
        return (self.host, self.port)

    def _total_depth(self) -> int:
        return sum(conn.queue.depth for conn in self._connections)

    async def start(self) -> None:
        """Bind and start accepting connections.

        With a WAL configured this is where crash recovery happens:
        restore every tenant's last good checkpoint, then replay the
        journal tail through the batch ingest lane before the first
        client can connect.
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        self._started_at = time.time()
        # The ops sidecar binds before recovery: liveness probes must see
        # "alive, still recovering" during a long journal replay, and
        # /readyz correctly answers 503 until the data socket is up.
        if self.http_port is not None and self.ops is None:
            self.ops = OpsServer(registry=self.registry,
                                 host=self.http_host, port=self.http_port,
                                 ready=self._readiness,
                                 vars_probe=self._ops_vars)
            self.ops.start()
        # First beat before recovery: a supervisor must see "alive, still
        # recovering" (the journal replay below keeps beating via the
        # progress hook), not "no heartbeat yet" while a large journal
        # replays.
        self._write_heartbeat()
        if self.wal_dir is not None:
            self.wal = WriteAheadLog(self.wal_dir, registry=self.registry,
                                     **self._wal_config)
            if self._standby_recovery is not None:
                # Promotion: the standby already recovered and has been
                # tailing; adopt its state and close the last gap.
                recovery = self._standby_recovery
                recovery.wal = self.wal
                recovery.progress = self._write_heartbeat
                recovery.catch_up()
                self.router = recovery.router
                self.service = self.router.get(DEFAULT_TENANT)
                self.recovery_report = recovery.report
            else:
                recovery = WalRecovery(self.router, self.wal,
                                       self.checkpoint_path,
                                       progress=self._write_heartbeat)
                self.recovery_report = recovery.recover()
            self._adopt_producers(recovery.producers)
        elif self.checkpoint_path and os.path.exists(self.checkpoint_path):
            self._restore_default(self.checkpoint_path)
        if self.unix_path is not None:
            if os.path.exists(self.unix_path):
                os.unlink(self.unix_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
        if self.heartbeat_path is not None or self.wal is not None:
            self._heartbeat_task = asyncio.create_task(
                self._heartbeat_loop()
            )
        self.ready = True
        started = {"address": str(self.address),
                   "ops": self.ops.address if self.ops is not None else None}
        if self.recovery_report is not None:
            started["replayed_events"] = self.recovery_report.replayed_events
            started["restored_tenants"] = \
                len(self.recovery_report.restored_tenants)
        self._log.info("server.started", **started)

    def _readiness(self) -> Tuple[bool, Dict[str, Any]]:
        """``/readyz`` probe: ready only once the data socket accepts
        (recovery/WAL replay done) and until shutdown begins."""
        detail: Dict[str, Any] = {
            "connections": len(self._connections),
            "tenants": self.router.tenants,
        }
        if self.wal_dir is not None and not self.ready:
            detail["recovering"] = True
        if self.recovery_report is not None:
            detail["replayed_events"] = self.recovery_report.replayed_events
        if self.wal is not None:
            detail["wal_last_seq"] = self.wal.last_seq
        return self.ready, detail

    def _ops_vars(self) -> Dict[str, Any]:
        """``/vars`` contribution: server identity and counters that have
        no natural metrics family."""
        info: Dict[str, Any] = {
            "address": str(self.address),
            "ready": self.ready,
            "uptime": round(time.time() - self._started_at, 3),
            "connections": len(self._connections),
            "tenants": self.router.tenants,
            "duplicate_frames": self.duplicate_frames,
            "dead_letters": len(self.dead_letters),
        }
        if self.wal is not None:
            info["wal_last_seq"] = self.wal.last_seq
        if self.recovery_report is not None:
            info["replayed_events"] = self.recovery_report.replayed_events
        return {"server": info}

    async def _heartbeat_loop(self) -> None:
        """Touch the heartbeat file and let an idle journal tail reach
        disk (the interval fsync policy only runs inside ``append``
        otherwise)."""
        while True:
            self._write_heartbeat()
            if self.wal is not None:
                self.wal.sync_if_due()
            await asyncio.sleep(self.heartbeat_interval)

    def _write_heartbeat(self) -> None:
        if self.heartbeat_path is None:
            return
        beat = {
            "pid": os.getpid(),
            "time": time.time(),
            "last_seq": self.wal.last_seq if self.wal is not None else 0,
        }
        try:
            with open(self.heartbeat_path, "w", encoding="utf-8") as stream:
                stream.write(json.dumps(beat, sort_keys=True))
        except OSError:
            pass  # a failed beat must never take down the server

    # -- producer dedup map (bounded) ---------------------------------------

    def _adopt_producers(self, producers: Dict[str, int]) -> None:
        """Take over recovered dedup state; replay order means later
        entries are more recent, so those survive a cap overflow."""
        entries = list(producers.items())[-self.max_producers:]
        self._producers = dict(entries)
        now = time.monotonic()
        self._producer_seen = {name: now for name in self._producers}

    def _note_producer(self, producer: str, pseq: int) -> None:
        """Record a producer's newest applied frame and mark it
        recently seen (moved to the back of the eviction order)."""
        self._producers.pop(producer, None)
        self._producers[producer] = pseq
        self._producer_seen[producer] = time.monotonic()
        while len(self._producers) > self.max_producers:
            victim = next(iter(self._producers))
            del self._producers[victim]
            del self._producer_seen[victim]
            self.expired_producers += 1

    def _prune_producers(self) -> int:
        """Forget producers idle past ``producer_ttl``.  Called at each
        checkpoint cut, which is also what bounds ``wal.meta.json``: the
        persisted map only ever carries live producers (evicting one
        risks re-applying a retry that arrives after the TTL -- an
        acceptable trade against unbounded growth, and impossible for a
        client that has been gone that long)."""
        now = time.monotonic()
        expired = [name for name, seen in self._producer_seen.items()
                   if now - seen >= self.producer_ttl]
        for name in expired:
            self._producers.pop(name, None)
            self._producer_seen.pop(name, None)
        self.expired_producers += len(expired)
        return len(expired)

    def _restore_default(self, path: str) -> None:
        service = self.service
        if isinstance(service, ResilientCharacterizationService):
            service.restore_from(path)
        else:
            with open(path, "rb") as stream:
                service.restore(stream)

    async def shutdown(self) -> None:
        """Stop accepting, drain all queues, flush, checkpoint."""
        self.ready = False  # /readyz goes 503 before the drain starts
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections):
            self._drain_now(conn)
            conn.closing = True
            conn.wake.set()
            if conn.drainer is not None:
                await conn.drainer
            writer = self._writers.get(conn)
            if writer is not None:
                writer.close()
        if self._handler_tasks:
            await asyncio.gather(*self._handler_tasks,
                                 return_exceptions=True)
        self.router.close_all()
        if self.checkpoint_path:
            self._checkpoint_tenants()
            self._commit_wal_cut()
        # Checkpoints are written, nothing queries tenants past this
        # point: shut down any process-backed shard worker fleets.
        self.router.release_all()
        if self.wal is not None:
            self.wal.close()
        self._dump_dead_letters()
        if self.unix_path is not None and os.path.exists(self.unix_path):
            os.unlink(self.unix_path)
        self._log.info("server.stopped",
                       duplicate_frames=self.duplicate_frames,
                       dead_letters=len(self.dead_letters))
        # The sidecar stops last: diagnostics stay reachable through the
        # whole drain.
        if self.ops is not None:
            self.ops.stop()
            self.ops = None

    def _checkpoint_tenants(self) -> int:
        written = 0
        for tenant, service in self.router.items():
            written += self._checkpoint_service(
                service, tenant_checkpoint_path(self.checkpoint_path, tenant)
            )
        return written

    def _commit_wal_cut(self) -> int:
        """Record that the checkpoint just written covers the whole
        journal; truncate covered segments unless retention is on.
        Returns the number of segments removed."""
        if self.wal is None:
            return 0
        self._prune_producers()
        cut = self.wal.last_seq
        write_wal_meta(self.wal.directory, WalMeta(
            checkpoint_seq=cut, producers=dict(self._producers)
        ))
        return self.wal.truncate_through(cut) if self.wal_truncate else 0

    def _dump_dead_letters(self) -> None:
        if self.dead_letter_path is None or not len(self.dead_letters):
            return
        try:
            self.dead_letters.dump_ndjson(self.dead_letter_path)
        except OSError:
            pass  # best effort: quarantine must not block shutdown

    @staticmethod
    def _checkpoint_service(service: CharacterizationService,
                            path: str) -> int:
        if isinstance(service, ResilientCharacterizationService):
            return service.checkpoint_to(path)
        with open(path, "wb") as stream:
            return service.checkpoint(stream)

    def serve_forever(self) -> None:
        """Run until interrupted (SIGINT/SIGTERM), then drain gracefully."""
        asyncio.run(self._serve_until_interrupt())

    async def _serve_until_interrupt(self) -> None:
        import signal

        await self.start()
        interrupted = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, interrupted.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signal support
        try:
            await interrupted.wait()
        finally:
            await self.shutdown()

    # -- connection handling --------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn = _Connection(self.soft_limit, self.hard_limit,
                           self.max_frame_bytes)
        self._connections.add(conn)
        self._writers[conn] = writer
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        self.metrics.connection_opened()
        conn.drainer = asyncio.create_task(self._drain_loop(conn))
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                self.metrics.bytes_read(len(data))
                for frame in conn.decoder.feed(data):
                    await self._dispatch(conn, frame, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            # The peer is gone, but its acknowledged events are not:
            # drain whatever it managed to enqueue before disconnecting.
            self._drain_now(conn)
            conn.closing = True
            conn.wake.set()
            if conn.drainer is not None:
                await conn.drainer
            self._connections.discard(conn)
            self._writers.pop(conn, None)
            self.metrics.connection_closed()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _drain_loop(self, conn: _Connection) -> None:
        """Feed queued batches to the engine, yielding between batches."""
        while True:
            item = conn.queue.pop()
            if item is None:
                if conn.closing:
                    return
                conn.wake.clear()
                await conn.wake.wait()
                continue
            tag, batch = item
            tenant, context = tag if isinstance(tag, tuple) else (tag, None)
            self._ingest_batch(conn, tenant, batch, context)
            # Yield so the reader (and other connections) interleave.
            await asyncio.sleep(0)

    def _ingest_batch(self, conn: _Connection, tenant: str,
                      batch: List[BlockIOEvent],
                      context: Optional[TraceContext] = None) -> None:
        tracer = get_tracelog()
        if tracer is not None and context is not None:
            span = tracer.span("server.ingest", parent=context,
                               tags={"tenant": tenant,
                                     "events": len(batch)})
        else:
            span = NULL_SPAN
        with span:
            try:
                service = self.router.get(tenant)
                service.submit_many(batch)
            except Exception as exc:
                # A poisoned batch (or a sink failure inside the engine)
                # degrades this batch only; the server keeps serving.
                conn.poisoned_batches += 1
                self.metrics.poisoned()
                self._log.warning(
                    "server.batch_poisoned", tenant=tenant,
                    events=len(batch),
                    error=f"{type(exc).__name__}: {exc}")
            else:
                self.metrics.ingested(len(batch))

    def _drain_now(self, conn: _Connection) -> None:
        """Synchronously ingest everything this connection has queued."""
        for tag, batch in conn.queue.drain():
            tenant, context = tag if isinstance(tag, tuple) else (tag, None)
            self._ingest_batch(conn, tenant, batch, context)

    # -- frame dispatch -------------------------------------------------------

    async def _reply(self, writer: asyncio.StreamWriter,
                     payload: Dict[str, Any]) -> None:
        data = protocol.encode_frame(payload)
        writer.write(data)
        self.metrics.bytes_written(len(data))
        await writer.drain()

    async def _dispatch(self, conn: _Connection, frame: protocol.Frame,
                        writer: asyncio.StreamWriter) -> None:
        if not frame.ok:
            self.metrics.frame_error(frame.error_code or
                                     protocol.ERR_MALFORMED)
            await self._reply(writer, protocol.error_frame(
                frame.error_code or protocol.ERR_MALFORMED, frame.error
            ))
            return
        payload = frame.payload
        kind = frame.type
        tenant = payload.get("tenant", "")
        if not isinstance(tenant, str):
            tenant = ""
        tracer = get_tracelog()
        if tracer is not None:
            # A wire context links this span under the client's request;
            # without one the server mints its own root (sampling + slow
            # exemplars still apply to untraced clients).
            span = tracer.span(
                "server.frame",
                parent=TraceContext.from_wire(payload.get(TRACE_KEY)),
                tags={"frame": kind, "tenant": tenant},
            )
        else:
            span = NULL_SPAN
        started = time.perf_counter()
        with span:
            try:
                reply = self._handle_frame(conn, kind, payload)
            except ProtocolError as exc:
                reply = protocol.error_frame(
                    protocol.ERR_BAD_REQUEST, str(exc))
            except TenantLimitError as exc:
                reply = protocol.error_frame(
                    protocol.ERR_UNAVAILABLE, str(exc))
            except Exception as exc:  # never let a frame kill the connection
                reply = protocol.error_frame(
                    protocol.ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
                )
        self.metrics.frame(kind, time.perf_counter() - started, tenant)
        if reply.get("type") == protocol.REPLY_ERROR:
            self.metrics.frame_error(
                reply.get("code", protocol.ERR_INTERNAL), tenant)
        request_id = payload.get("id")
        if request_id is not None:
            reply.setdefault("id", request_id)
        await self._reply(writer, reply)
        conn.wake.set()

    def _handle_frame(self, conn: _Connection, kind: str,
                      payload: Dict[str, Any]) -> Dict[str, Any]:
        if kind == protocol.FRAME_PING:
            return {"type": protocol.REPLY_PONG,
                    "version": PROTOCOL_VERSION}
        if kind in (protocol.FRAME_EVENT, protocol.FRAME_BATCH):
            return self._handle_ingest(conn, payload)
        if kind == protocol.FRAME_QUERY:
            self._drain_now(conn)
            return self._handle_query(payload)
        if kind == protocol.FRAME_STATS:
            self._drain_now(conn)
            return self._handle_stats(conn, payload)
        if kind == protocol.FRAME_CHECKPOINT:
            self._drain_now(conn)
            return self._handle_checkpoint(payload)
        if kind == protocol.FRAME_METRICS:
            return {"type": protocol.REPLY_RESULT,
                    "prometheus": render_prometheus(self.registry)}
        return protocol.error_frame(
            protocol.ERR_BAD_REQUEST, f"unknown frame type {kind!r}"
        )

    def _tenant_of(self, payload: Dict[str, Any]) -> str:
        tenant = payload.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str):
            raise ProtocolError("tenant must be a string")
        return tenant

    def _producer_of(self, payload: Dict[str, Any]
                     ) -> Tuple[Optional[str], Optional[int]]:
        producer = payload.get("producer")
        pseq = payload.get("pseq")
        if producer is None or pseq is None:
            return None, None
        if not isinstance(producer, str) or not producer:
            raise ProtocolError("producer must be a non-empty string")
        if not isinstance(pseq, int) or isinstance(pseq, bool) or pseq < 1:
            raise ProtocolError(
                f"pseq must be a positive integer, got {pseq!r}"
            )
        return producer, pseq

    def _handle_ingest(self, conn: _Connection,
                       payload: Dict[str, Any]) -> Dict[str, Any]:
        tenant = self._tenant_of(payload)
        self.router.get(tenant)  # admit the tenant before accepting events
        producer, pseq = self._producer_of(payload)
        if producer is not None and \
                pseq <= self._producers.get(producer, 0):
            # A retry of a frame we already accepted (the ack was lost,
            # not the events).  Ack again, apply nothing: exactly-once
            # application under the client's at-least-once delivery.
            self._note_producer(producer, self._producers[producer])
            self.duplicate_frames += 1
            return {"type": protocol.REPLY_OK, "accepted": 0,
                    "duplicate": True}
        events = protocol.events_from_frame(payload)
        rejected = conn.queue.would_reject(len(events))
        if not rejected and self.wal is not None:
            # Journal *before* acknowledging: an OSError here means the
            # frame is neither enqueued nor acked, so nothing is lost --
            # the client retries against a server that can't promise
            # durability right now.
            try:
                with trace_span("wal.append", require_parent=True,
                                tags={"events": len(events)}):
                    self.wal.append(events, tenant=tenant,
                                    producer=producer, pseq=pseq)
            except OSError as exc:
                self._log.warning("server.wal_append_failed", tenant=tenant,
                                  events=len(events), error=str(exc))
                return protocol.error_frame(
                    protocol.ERR_UNAVAILABLE,
                    f"journal append failed: {exc}; frame not accepted",
                )
        # The queue tag carries the trace context across the async hop to
        # the drain loop, so the engine-side ingest span stays linked to
        # the frame that admitted the events.
        admission = conn.queue.offer(
            events, tag=(tenant, current_context()))
        if admission is Admission.REJECTED:
            self.metrics.rejected(len(events))
            self._dead_letter_frame(conn, tenant, payload, len(events))
            return protocol.error_frame(
                protocol.ERR_OVERLOADED,
                f"ingest queue full ({conn.queue.depth} events pending, "
                f"hard limit {conn.queue.hard_limit}); frame dropped",
            )
        if producer is not None:
            self._note_producer(producer, pseq)
        self.metrics.note_depth(conn.queue.depth)
        if admission is Admission.THROTTLED:
            self.metrics.throttled()
            return {
                "type": protocol.REPLY_THROTTLE,
                "accepted": len(events),
                "queue_depth": conn.queue.depth,
                "retry_after": conn.queue.retry_after(),
            }
        return {"type": protocol.REPLY_OK, "accepted": len(events)}

    def _dead_letter_frame(self, conn: _Connection, tenant: str,
                           payload: Dict[str, Any], count: int) -> None:
        self.dead_letters.offer(RowError(
            line_number=conn.id,
            row=json.dumps(payload, sort_keys=True, default=str),
            error=f"overloaded: {count} events rejected for tenant "
                  f"{tenant!r} at queue depth {conn.queue.depth}",
        ))

    def _handle_query(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        service = self.router.get(self._tenant_of(payload))
        what = payload.get("what", "correlations")
        k = payload.get("k", 20)
        min_support = payload.get("min_support", service.min_support)
        if not isinstance(k, int) or k < 1:
            raise ProtocolError(f"k must be a positive integer, got {k!r}")
        if not isinstance(min_support, int) or min_support < 1:
            raise ProtocolError(
                f"min_support must be a positive integer, got {min_support!r}"
            )
        if what == "correlations":
            kind_name = payload.get("kind")
            if kind_name is None:
                pairs = service.analyzer.frequent_pairs(min_support)
            else:
                try:
                    kind = CorrelationKind(kind_name)
                except ValueError:
                    raise ProtocolError(
                        f"unknown correlation kind {kind_name!r}"
                    ) from None
                pairs = service.analyzer.frequent_pairs_of_kind(
                    kind, min_support
                )
            return {
                "type": protocol.REPLY_RESULT,
                "pairs": [protocol.pair_to_payload(pair, count)
                          for pair, count in pairs[:k]],
            }
        if what == "items":
            items = service.analyzer.frequent_extents(min_support)
            return {
                "type": protocol.REPLY_RESULT,
                "items": [protocol.extent_to_payload(extent, count)
                          for extent, count in items[:k]],
            }
        raise ProtocolError(
            f"unknown query {what!r}; know 'correlations' and 'items'"
        )

    def _handle_stats(self, conn: _Connection,
                      payload: Dict[str, Any]) -> Dict[str, Any]:
        service = self.router.get(self._tenant_of(payload))
        stats: Dict[str, Any] = {
            "monitor": service.monitor.stats.as_dict(),
            "transactions": service.transactions,
            "queue_depth": conn.queue.depth,
            "queue_high_watermark": conn.queue.stats.high_watermark,
            "rejected_events": conn.queue.stats.rejected_events,
            "poisoned_batches": conn.poisoned_batches,
            "connections": len(self._connections),
            "tenants": self.router.tenants,
        }
        if isinstance(service, ResilientCharacterizationService):
            health = service.health()
            stats["health"] = {"status": health.status,
                               "reasons": health.reasons}
        if self.wal is not None:
            stats["wal"] = {
                "last_seq": self.wal.last_seq,
                "duplicate_frames": self.duplicate_frames,
                "dead_letters": len(self.dead_letters),
                "producers": len(self._producers),
                "expired_producers": self.expired_producers,
            }
        if self.recovery_report is not None:
            report = self.recovery_report
            stats["recovery"] = {
                "checkpoint_seq": report.checkpoint_seq,
                "replayed_records": report.replayed_records,
                "replayed_events": report.replayed_events,
                "skipped_records": report.skipped_records,
                "corrupt_records": report.corrupt_records,
                "torn_tail": report.torn_tail,
                "restored_tenants": list(report.restored_tenants),
                "failed_tenants": list(report.failed_tenants),
            }
        return {"type": protocol.REPLY_RESULT, "stats": stats}

    def _handle_checkpoint(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if not self.checkpoint_path:
            return protocol.error_frame(
                protocol.ERR_UNAVAILABLE,
                "server started without a checkpoint path",
            )
        if self.wal is not None:
            return self._handle_checkpoint_cut()
        tenant = self._tenant_of(payload)
        service = self.router.get(tenant)
        path = tenant_checkpoint_path(self.checkpoint_path, tenant)
        written = self._checkpoint_service(service, path)
        return {"type": protocol.REPLY_RESULT, "bytes": written,
                "path": path}

    def _handle_checkpoint_cut(self) -> Dict[str, Any]:
        """Checkpoint *every* tenant at a consistent journal cut.

        The cut is only correct if every journalled record at or below it
        has reached an engine, so all connections' queues are drained
        first (the dispatcher already drained the requester's).  All of
        this runs synchronously on the loop thread: no new frame can be
        journalled between the drain and the cut.
        """
        for conn in list(self._connections):
            self._drain_now(conn)
        cut = self.wal.last_seq
        written = self._checkpoint_tenants()
        removed = self._commit_wal_cut()
        return {"type": protocol.REPLY_RESULT, "bytes": written,
                "path": self.checkpoint_path, "wal_cut": cut,
                "segments_removed": removed}


class ServerThread:
    """Run a :class:`CharacterizationServer` on a background event loop.

    The serving layer is asyncio-native, but tests, benchmarks, and the
    blocking client all live in synchronous code; this wrapper owns a
    daemon thread running the loop.  Use as a context manager::

        with ServerThread(CharacterizationServer(unix_path=sock)) as handle:
            client = CharacterizationClient(handle.address)
            ...

    Exit drains and checkpoints through :meth:`CharacterizationServer.shutdown`.
    """

    def __init__(self, server: CharacterizationServer) -> None:
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> Address:
        return self.server.address

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-server")
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 10s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to the caller
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        loop.run_forever()
        loop.run_until_complete(self.server.shutdown())
        loop.close()

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            return
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
