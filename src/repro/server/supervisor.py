"""Supervised failover: keep the durable server alive, or hand over.

The durability story has three legs.  The journal (``resilience.wal``)
makes acknowledged events replayable; recovery (``server.recovery``)
turns the journal back into a synopsis; this module makes sure *somebody
actually runs recovery* -- without an operator watching.

* :class:`Supervisor` runs the server in a child process and watches two
  signals: process liveness and the worker's heartbeat file.  A dead
  worker (crash, OOM-kill, ``kill -9``) or a stale heartbeat (a hung
  worker is as dead as a crashed one) triggers a restart after a
  :class:`~repro.resilience.BackoffPolicy` delay.  The restarted worker
  recovers from checkpoint + journal before it accepts its first frame.
* :class:`RestartTracker` is the crash-loop detector: more than
  ``max_restarts`` restarts inside ``window`` seconds means the failure
  is deterministic (bad config, corrupt disk, poison pill at the journal
  head) and restarting is just a space heater -- the supervisor gives up
  with :class:`SupervisorGaveUp` and a clear message instead.
* :class:`WarmStandby` is the faster failover: a second process tails the
  primary's journal read-only, staying seconds behind.  Promotion
  (explicit, or via a touched *promote file*) does one final catch-up and
  starts serving -- recovery time is the journal *tail*, not the whole
  journal.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..resilience.policy import BackoffPolicy
from ..resilience.wal import WriteAheadLog
from ..service import CharacterizationService
from ..telemetry.log import get_logger
from ..telemetry.metrics import MetricsRegistry, get_default_registry
from ..telemetry.tracelog import TraceLog, install_tracelog
from .backpressure import DEFAULT_HARD_LIMIT, DEFAULT_SOFT_LIMIT
from .recovery import RecoveryReport, WalRecovery
from .server import (
    CharacterizationServer,
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_MAX_PRODUCERS,
    DEFAULT_PRODUCER_TTL,
)
from .tenants import DEFAULT_MAX_TENANTS, TenantRouter


class SupervisorGaveUp(RuntimeError):
    """The worker crash-looped past the restart budget; restarting is not
    going to fix whatever this is."""


@dataclass
class WorkerConfig:
    """Everything a worker process needs to build its server.

    Kept to plain picklable fields so it crosses a ``spawn`` boundary;
    mirrors the :class:`~repro.server.server.CharacterizationServer`
    constructor.
    """

    unix_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    checkpoint_path: Optional[str] = None
    wal_dir: Optional[str] = None
    fsync: str = "interval"
    fsync_interval: float = 0.05
    wal_truncate: bool = True
    heartbeat_path: Optional[str] = None
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL
    dead_letter_path: Optional[str] = None
    soft_limit: int = DEFAULT_SOFT_LIMIT
    hard_limit: int = DEFAULT_HARD_LIMIT
    max_tenants: int = DEFAULT_MAX_TENANTS
    max_producers: int = DEFAULT_MAX_PRODUCERS
    producer_ttl: float = DEFAULT_PRODUCER_TTL
    # -- observability plane ----------------------------------------------
    http_port: Optional[int] = None
    http_host: str = "127.0.0.1"
    trace_log: Optional[str] = None
    trace_sample_rate: float = 0.01
    trace_slow_threshold: float = 0.25
    # -- engine shape (None: the server's stock defaults) -----------------
    capacity: Optional[int] = None
    support: int = 5
    shards: int = 1
    shard_processes: bool = False
    snapshot_interval: int = 1000

    def _build_service(self):
        if self.capacity is None:
            return None, None
        from ..core.config import AnalyzerConfig
        from ..resilience.service import ResilientCharacterizationService

        def factory():
            return ResilientCharacterizationService(
                config=AnalyzerConfig(
                    item_capacity=self.capacity,
                    correlation_capacity=self.capacity,
                ),
                min_support=self.support,
                shards=self.shards,
                shard_processes=self.shard_processes,
                snapshot_interval=self.snapshot_interval,
            )

        return factory(), factory

    def build_server(self) -> CharacterizationServer:
        service, factory = self._build_service()
        return CharacterizationServer(
            service,
            service_factory=factory,
            unix_path=self.unix_path,
            host=self.host,
            port=self.port,
            checkpoint_path=self.checkpoint_path,
            wal_dir=self.wal_dir,
            fsync=self.fsync,
            fsync_interval=self.fsync_interval,
            wal_truncate=self.wal_truncate,
            heartbeat_path=self.heartbeat_path,
            heartbeat_interval=self.heartbeat_interval,
            dead_letter_path=self.dead_letter_path,
            soft_limit=self.soft_limit,
            hard_limit=self.hard_limit,
            max_tenants=self.max_tenants,
            max_producers=self.max_producers,
            producer_ttl=self.producer_ttl,
            http_port=self.http_port,
            http_host=self.http_host,
        )


def run_server_worker(config: WorkerConfig) -> None:
    """Child-process entry point: recover, serve until SIGTERM, drain."""
    if config.trace_log is not None:
        # One shared NDJSON file across the whole fleet: O_APPEND writes
        # keep primary, restarts, and shard workers interleaving safely.
        install_tracelog(TraceLog(
            config.trace_log,
            sample_rate=config.trace_sample_rate,
            slow_threshold=config.trace_slow_threshold,
        ))
    config.build_server().serve_forever()


class RestartTracker:
    """Sliding-window crash-loop detector."""

    def __init__(self, max_restarts: int = 5, window: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_restarts < 1:
            raise ValueError(f"max_restarts must be >= 1, got {max_restarts}")
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.max_restarts = max_restarts
        self.window = window
        self._clock = clock
        self._marks: List[float] = []
        self.total = 0

    def recent(self) -> int:
        """Restarts inside the current window."""
        horizon = self._clock() - self.window
        self._marks = [mark for mark in self._marks if mark > horizon]
        return len(self._marks)

    def note(self) -> bool:
        """Record one restart; ``False`` means the budget is blown."""
        if self.recent() >= self.max_restarts:
            return False
        self._marks.append(self._clock())
        self.total += 1
        return True


class Supervisor:
    """Run the server worker in a child process; restart it when it dies.

    ``heartbeat_timeout`` (seconds; ``None`` disables the check) also
    restarts a worker whose heartbeat file has gone stale -- a worker
    wedged in a syscall looks alive to ``is_alive()`` but not to its
    clients.  ``target`` is injectable so tests can supervise a
    deliberately crashing worker.
    """

    def __init__(
        self,
        config: WorkerConfig,
        *,
        target: Callable[[WorkerConfig], None] = run_server_worker,
        backoff: Optional[BackoffPolicy] = None,
        max_restarts: int = 5,
        restart_window: float = 30.0,
        heartbeat_timeout: Optional[float] = None,
        poll_interval: float = 0.05,
        start_method: Optional[str] = None,
        sleep: Callable[[float], None] = time.sleep,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.target = target
        self.backoff = backoff if backoff is not None else \
            BackoffPolicy(base=0.05, cap=2.0, retries=max_restarts)
        self.tracker = RestartTracker(max_restarts=max_restarts,
                                      window=restart_window)
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_interval = poll_interval
        self._context = multiprocessing.get_context(start_method)
        self._sleep = sleep
        self._proc: Optional[multiprocessing.process.BaseProcess] = None
        self._spawned_at = 0.0
        self.restarts = 0
        self.last_exitcode: Optional[int] = None
        self.last_restart_reason: Optional[str] = None
        self._log = get_logger("supervisor")
        registry = registry if registry is not None else \
            get_default_registry()
        self.registry = registry
        self._restarts_metric = registry.counter(
            "repro_supervisor_restarts_total",
            "Worker restarts the supervisor performed",
        )
        self._worker_up = registry.gauge(
            "repro_supervisor_worker_up",
            "1 while the supervised worker process is alive",
        )
        self._heartbeat_age = registry.gauge(
            "repro_supervisor_heartbeat_age_seconds",
            "Age of the worker's last heartbeat (0 when no heartbeat file)",
        )
        if registry.enabled:
            registry.register_collector(self._collect)

    def _collect(self) -> None:
        proc = self._proc
        self._worker_up.set(
            1 if proc is not None and proc.is_alive() else 0)
        self._heartbeat_age.set(round(self._heartbeat_age_seconds(), 3))

    def _heartbeat_age_seconds(self) -> float:
        if self.config.heartbeat_path is None:
            return 0.0
        try:
            beat_at = os.stat(self.config.heartbeat_path).st_mtime
        except OSError:
            beat_at = self._spawned_at or time.time()
        return max(0.0, time.time() - max(beat_at, self._spawned_at))

    # -- lifecycle ----------------------------------------------------------

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    def start(self) -> None:
        if self._proc is not None and self._proc.is_alive():
            raise RuntimeError("worker already running")
        self._spawn()

    def _spawn(self) -> None:
        # Not daemonic: a daemonic worker could not spawn its own shard
        # processes (multiprocessing forbids daemon children), and a
        # supervised server with shard_processes=True is a supported
        # shape.  stop() still terminates the worker explicitly.
        self._proc = self._context.Process(
            target=self.target, args=(self.config,),
            name="repro-server-worker", daemon=False,
        )
        self._proc.start()
        self._spawned_at = time.time()
        self._log.info("supervisor.worker_spawned", worker_pid=self._proc.pid,
                       restarts=self.restarts)

    def stop(self, grace: float = 10.0) -> Optional[int]:
        """SIGTERM the worker (graceful drain + checkpoint), escalate to
        SIGKILL after ``grace`` seconds; returns its exit code."""
        proc = self._proc
        if proc is None:
            return self.last_exitcode
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=grace)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=grace)
        self.last_exitcode = proc.exitcode
        self._proc = None
        self._log.info("supervisor.worker_stopped",
                       exitcode=self.last_exitcode,
                       restarts=self.restarts)
        return self.last_exitcode

    # -- the watch loop -----------------------------------------------------

    def _heartbeat_stale(self) -> bool:
        if self.heartbeat_timeout is None or \
                self.config.heartbeat_path is None:
            return False
        try:
            beat_at = os.stat(self.config.heartbeat_path).st_mtime
        except OSError:
            # No heartbeat yet: measure from spawn, so a worker that
            # never manages its first beat still gets restarted.
            beat_at = self._spawned_at
        else:
            # An existing file may be the *previous* worker's last beat;
            # staleness must never predate the current worker's spawn, or
            # every restart whose (backoff + recovery) exceeds the
            # timeout gets killed before its first beat -- a crash loop
            # manufactured by the supervisor itself.
            beat_at = max(beat_at, self._spawned_at)
        return time.time() - beat_at > self.heartbeat_timeout

    def poll_once(self) -> str:
        """One watch step: ``"running"``, ``"restarted"``, or
        ``"stopped"`` (clean worker exit)."""
        proc = self._proc
        if proc is None:
            raise RuntimeError("supervisor not started")
        if not proc.is_alive():
            self.last_exitcode = proc.exitcode
            if proc.exitcode == 0:
                self._proc = None
                return "stopped"
            return self._restart(
                f"worker pid {proc.pid} exited with code {proc.exitcode}"
            )
        if self._heartbeat_stale():
            proc.kill()
            proc.join(timeout=10.0)
            self.last_exitcode = proc.exitcode
            return self._restart(
                f"worker pid {proc.pid} heartbeat stale "
                f"(> {self.heartbeat_timeout}s)"
            )
        return "running"

    def _restart(self, reason: str) -> str:
        self.last_restart_reason = reason
        if not self.tracker.note():
            self._log.error("supervisor.gave_up", reason=reason,
                            recent_restarts=self.tracker.recent(),
                            budget=self.tracker.max_restarts)
            raise SupervisorGaveUp(
                f"giving up: {self.tracker.recent()} restarts within "
                f"{self.tracker.window}s (budget {self.tracker.max_restarts});"
                f" last failure: {reason}"
            )
        self._log.warning("supervisor.worker_restarting", reason=reason,
                          exitcode=self.last_exitcode,
                          restarts=self.restarts + 1)
        self._sleep(self.backoff.delay(min(self.tracker.recent() - 1,
                                           self.backoff.retries)))
        self.restarts += 1
        self._restarts_metric.inc()
        self._spawn()
        return "restarted"

    def run(self) -> Optional[int]:
        """Supervise until the worker exits cleanly (returns its exit
        code) or the restart budget blows (:class:`SupervisorGaveUp`)."""
        if self._proc is None:
            self.start()
        while True:
            if self.poll_once() == "stopped":
                return self.last_exitcode
            self._sleep(self.poll_interval)

    def __enter__(self) -> "Supervisor":
        if self._proc is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class WarmStandby:
    """A read-only tail of a primary's journal, ready to take over.

    The standby never touches the primary's files: its journal handle is
    opened ``readonly`` and its checkpoint restores are plain reads.
    Call :meth:`warm_up` once, :meth:`poll` periodically (each call
    applies whatever the primary appended since), and :meth:`promote`
    when the primary is gone -- the promoted server adopts the standby's
    tenants, catches up the final gap, and binds.
    """

    def __init__(
        self,
        wal_dir: str,
        checkpoint_path: Optional[str] = None,
        service_factory: Optional[Callable[[], CharacterizationService]]
        = None,
        max_tenants: int = DEFAULT_MAX_TENANTS,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if service_factory is None:
            from ..resilience.service import ResilientCharacterizationService
            service_factory = ResilientCharacterizationService
        self.wal_dir = os.fspath(wal_dir)
        self.checkpoint_path = checkpoint_path
        self.router = TenantRouter(service_factory, max_tenants=max_tenants)
        self.wal = WriteAheadLog(self.wal_dir, readonly=True)
        self.recovery = WalRecovery(self.router, self.wal, checkpoint_path)
        self.warmed = False
        registry = registry if registry is not None else \
            get_default_registry()
        self._applied_gauge = registry.gauge(
            "repro_standby_applied_seq",
            "Highest journal sequence the standby has applied",
        )
        self._replayed_metric = registry.counter(
            "repro_standby_replayed_records_total",
            "Journal records the standby has applied while tailing",
        )

    def warm_up(self) -> RecoveryReport:
        """Initial restore + full replay; after this, :meth:`poll` only
        ever reads the tail."""
        report = self.recovery.recover()
        self.warmed = True
        return report

    def poll(self) -> int:
        """Apply records the primary appended since the last look;
        returns how many."""
        if not self.warmed:
            self.warm_up()
            applied = self.recovery.report.replayed_records
        else:
            applied = self.recovery.catch_up()
        if applied:
            self._replayed_metric.inc(applied)
        self._applied_gauge.set(self.recovery.applied_seq)
        return applied

    @property
    def applied_seq(self) -> int:
        return self.recovery.applied_seq

    def promote(self, **server_kwargs) -> CharacterizationServer:
        """Build the successor server around this standby's warm state.

        Accepts the usual :class:`CharacterizationServer` keyword
        arguments (``unix_path``, ``host``/``port``, limits...);
        ``wal_dir`` and ``checkpoint_path`` come from the standby.  The
        returned server is not yet started -- the final catch-up happens
        inside its :meth:`~CharacterizationServer.start`, after which the
        journal is owned (writable) by the promoted server.
        """
        if not self.warmed:
            self.warm_up()
        self.poll()
        server_kwargs.setdefault("checkpoint_path", self.checkpoint_path)
        return CharacterizationServer(
            wal_dir=self.wal_dir,
            standby_recovery=self.recovery,
            **server_kwargs,
        )

    def tail_until_promoted(
        self,
        promote_file: str,
        poll_interval: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
        **server_kwargs,
    ) -> CharacterizationServer:
        """Tail the journal until ``promote_file`` appears (the
        operator's -- or supervisor's -- "take over" signal), then
        promote."""
        if not self.warmed:
            self.warm_up()
        while not os.path.exists(promote_file):
            self.poll()
            sleep(poll_interval)
        return self.promote(**server_kwargs)
