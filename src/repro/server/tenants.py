"""Per-tenant session routing: one independent engine per tenant name.

A multi-tenant deployment (the MSR traces are exactly that: one trace per
server) must not let one tenant's working set evict another's synopsis
entries.  The router maps a tenant name carried on each frame to its own
:class:`~repro.service.CharacterizationService`, built lazily from a
caller-supplied factory.  The unnamed tenant (``""``) is the default
service every frame without a ``tenant`` key lands on.

The router is deliberately dumb -- no eviction, no persistence of its own
-- but it is *bounded*: past ``max_tenants`` a new name is refused rather
than silently growing one engine per typo'd client.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..service import CharacterizationService

DEFAULT_TENANT = ""
DEFAULT_MAX_TENANTS = 16

ServiceFactory = Callable[[], CharacterizationService]


class TenantLimitError(RuntimeError):
    """Raised when a new tenant would exceed the configured cap."""


class TenantRouter:
    """Lazily builds and hands out one service per tenant name."""

    def __init__(self, factory: ServiceFactory,
                 max_tenants: int = DEFAULT_MAX_TENANTS) -> None:
        if max_tenants < 1:
            raise ValueError(f"max_tenants must be >= 1, got {max_tenants}")
        self._factory = factory
        self.max_tenants = max_tenants
        self._services: Dict[str, CharacterizationService] = {}

    def get(self, tenant: str = DEFAULT_TENANT) -> CharacterizationService:
        """The tenant's service, creating it on first sight."""
        service = self._services.get(tenant)
        if service is not None:
            return service
        if len(self._services) >= self.max_tenants:
            raise TenantLimitError(
                f"tenant limit {self.max_tenants} reached; "
                f"cannot admit {tenant!r}"
            )
        service = self._factory()
        self._services[tenant] = service
        return service

    def adopt(self, tenant: str,
              service: CharacterizationService) -> None:
        """Install a pre-built service (the server seeds the default)."""
        self._services[tenant] = service

    def reset(self, tenant: str) -> CharacterizationService:
        """Replace the tenant's service with a fresh one from the
        factory (recovery uses this to drop half-applied state --
        including the monitor's open transaction window -- before
        restoring a checkpoint over it)."""
        if tenant not in self._services:
            return self.get(tenant)  # cap-checked creation
        service = self._factory()
        self._services[tenant] = service
        return service

    def peek(self, tenant: str = DEFAULT_TENANT):
        """The tenant's service if it exists, else ``None`` (no creation)."""
        return self._services.get(tenant)

    @property
    def tenants(self) -> List[str]:
        return sorted(self._services)

    def items(self) -> List[Tuple[str, CharacterizationService]]:
        return sorted(self._services.items())

    def __len__(self) -> int:
        return len(self._services)

    def close_all(self) -> None:
        """Flush every tenant's monitor (final partial transactions)."""
        for service in self._services.values():
            service.close()

    def release_all(self) -> None:
        """Release every tenant's engine resources (process-shard worker
        fleets).  Call after the final checkpoint: released services can
        no longer be queried or checkpointed."""
        for service in self._services.values():
            service.release()
