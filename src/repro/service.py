"""A continuous characterization service.

The pipeline in :mod:`repro.pipeline` is batch-shaped: replay a trace, get
a result.  A deployed system (Fig. 3) instead runs *forever*: events arrive
as the kernel emits them, consumers ask for the current picture whenever
they like, and the learned state must survive restarts.  This module wraps
monitor + typed analyzer into that service shape:

* :meth:`CharacterizationService.submit` accepts block I/O events
  (from blktrace, a replayer, or tests) and drives the whole stack;
* :meth:`snapshot` returns the current frequent correlations (optionally
  by R/W kind) without stopping ingestion;
* :meth:`checkpoint` / :meth:`restore` persist the synopsis in the
  paper's native entry layout (see :mod:`repro.core.serialize`);
* registered observers are notified every ``snapshot_interval``
  transactions -- the hook an automatic optimization module attaches to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import BinaryIO, Callable, Dict, List, Optional, Tuple

from .core.config import AnalyzerConfig
from .core.extent import ExtentPair
from .core.serialize import dump_analyzer, load_analyzer
from .core.typed import CorrelationKind, TypedOnlineAnalyzer
from .monitor.events import BlockIOEvent
from .monitor.monitor import (
    DEFAULT_MAX_TRANSACTION_SIZE,
    ClockPolicy,
    Monitor,
)
from .monitor.transaction import Transaction
from .monitor.window import DynamicLatencyWindow, WindowPolicy

SnapshotObserver = Callable[["ServiceSnapshot"], None]


@dataclass
class ServiceSnapshot:
    """The service's view of the workload at one instant."""

    transactions: int
    events: int
    frequent_pairs: List[Tuple[ExtentPair, int]]
    kind_summary: Dict[CorrelationKind, int]

    @property
    def correlations(self) -> int:
        return len(self.frequent_pairs)


class CharacterizationService:
    """Long-running ingest -> characterize -> notify loop."""

    def __init__(
        self,
        config: Optional[AnalyzerConfig] = None,
        window: Optional[WindowPolicy] = None,
        max_transaction_size: int = DEFAULT_MAX_TRANSACTION_SIZE,
        dedup: bool = True,
        min_support: int = 5,
        snapshot_interval: int = 1000,
        clock_policy: ClockPolicy = ClockPolicy.REORDER,
        max_clock_skew: Optional[float] = None,
    ) -> None:
        if snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        self.min_support = min_support
        self.snapshot_interval = snapshot_interval
        self.analyzer = TypedOnlineAnalyzer(config or AnalyzerConfig())
        self.monitor = Monitor(
            window=window if window is not None else DynamicLatencyWindow(),
            max_transaction_size=max_transaction_size,
            dedup=dedup,
            sinks=[self._on_transaction],
            clock_policy=clock_policy,
            max_clock_skew=max_clock_skew,
        )
        self._observers: List[SnapshotObserver] = []
        self._transactions = 0

    # -- ingestion --------------------------------------------------------------

    def submit(self, event: BlockIOEvent) -> None:
        """Feed one block-layer issue event."""
        self.monitor.on_event(event)

    def submit_many(self, events) -> None:
        for event in events:
            self.monitor.on_event(event)

    def flush(self) -> None:
        """Close any open transaction (e.g. before a checkpoint)."""
        self.monitor.flush()

    def _on_transaction(self, transaction: Transaction) -> None:
        self.analyzer.process_transaction(transaction)
        self._transactions += 1
        if self._transactions % self.snapshot_interval == 0:
            snapshot = self.snapshot()
            for observer in self._observers:
                observer(snapshot)

    # -- queries -------------------------------------------------------------------

    def snapshot(self, kind: Optional[CorrelationKind] = None
                 ) -> ServiceSnapshot:
        """Current frequent correlations (optionally one R/W kind only)."""
        if kind is None:
            frequent = self.analyzer.frequent_pairs(self.min_support)
        else:
            frequent = self.analyzer.frequent_pairs_of_kind(
                kind, self.min_support
            )
        return ServiceSnapshot(
            transactions=self._transactions,
            events=self.monitor.stats.events_seen,
            frequent_pairs=frequent,
            kind_summary=self.analyzer.kind_summary(),
        )

    def observe(self, observer: SnapshotObserver) -> None:
        """Register a periodic snapshot observer (the optimization hook)."""
        self._observers.append(observer)

    # -- persistence -----------------------------------------------------------------

    def checkpoint(self, stream: BinaryIO) -> int:
        """Persist the synopsis; returns bytes written.

        Open transactions are flushed first so nothing in flight is lost.
        Note the typed sidecar (R/W mixes) is rebuilt from future traffic
        after a restore; the tables themselves restore exactly.
        """
        self.flush()
        return dump_analyzer(self.analyzer, stream)

    def restore(self, stream: BinaryIO) -> None:
        """Replace the synopsis with a previously checkpointed one."""
        plain = load_analyzer(stream)
        restored = TypedOnlineAnalyzer(plain.config)
        restored.adopt(plain)
        self.analyzer = restored
